// ReportServer: the network ingestion edge of a collection deployment. It
// owns a Listener (TCP or Unix-domain) and an event-driven core: N loop
// threads (Options::acceptors) each drive a Poller over non-blocking
// sockets, running a small per-connection state machine (reading-prefix →
// reading-payload → dispatch) that feeds DATA bytes straight into
// api::ServerSession::Feed — the same zero-copy framing, per-shard strand
// scheduling, and backpressure as every other ingest path. One loop thread
// serves thousands of connections, so the edge scales to C10K+ reporters
// instead of one blocked thread per socket. A framing error, a mid-stream
// disconnect, or a slow-loris timeout poisons/abandons exactly that
// connection's shards; honest connections are untouched.
//
// Multiplexing: the protocol lets one connection carry many logical shards
// concurrently, each on a client-chosen *channel* (HELLO opens one,
// DATA/CLOSE_SHARD name one, SHARD_CLOSED echoes one). A HELLO may opt in
// to batched DATA_ACK watermarks so a windowing client can bound its
// in-flight bytes without one round trip per send.
//
// Identity: with Options::campaign_key set, every HELLO must be protocol
// v3 — reporter id plus an HMAC-SHA256 tag over (id, channel, epoch,
// header) — verified constant-time *before* the stream header is decoded;
// a refused HELLO never opens a shard or touches the session. The id keys
// the session's per-reporter privacy ledger, so a reporter reconnecting or
// sharding across connections is charged ε once per epoch. Tag
// verification is HELLO-only: the DATA hot path is untouched.
//
// Determinism: closed shards merge in ascending HELLO *ordinal* order, not
// connection-completion order (floating-point accumulation makes merge
// order observable). With Options::expected_shards = N this is a strict
// barrier over ordinals 0..N-1 — the session is bit-identical to the
// file-based `ldp_aggregate shard-0 ... shard-N-1` run and to the
// in-process Pipeline::Collect run, no matter when each connection arrives
// or finishes — the property the net e2e tests and CI pin down. In ad hoc
// mode (expected_shards = 0) the ordering covers shards open concurrently;
// a smaller ordinal that connects only after a larger one already closed
// merges late.
//
// Threading: loop threads never block on the merge barrier — a CLOSE_SHARD
// whose turn has not come is handed to a dedicated merge-scheduler thread
// (otherwise ordinal k's close could deadlock waiting for ordinal j served
// by the same loop). The scheduler claims turns in barrier order, performs
// the WAL close + session merge, and queues the SHARD_CLOSED reply back to
// the owning loop; replies to other channels on that connection keep
// flowing meanwhile. The ServerSession surface is thread-safe (PR 4), so
// loops feed disjoint shards without further coordination. One caveat
// versus the old thread-per-connection design: a shard held at Feed's
// backpressure bound stalls its whole loop (bounded by the ingest pool's
// drain rate), not just its own connection.

#ifndef LDP_NET_REPORT_SERVER_H_
#define LDP_NET_REPORT_SERVER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "api/server_session.h"
#include "net/poller.h"
#include "net/protocol.h"
#include "net/socket.h"
#include "obs/metrics.h"
#include "stream/report_stream.h"
#include "util/result.h"

namespace ldp::obs {
class EventJournal;
}  // namespace ldp::obs

namespace ldp::net {

/// Durability hook on the accepted-frame path: every callback fires
/// *before* the corresponding session call, so a crash after the callback
/// loses nothing the reporter was told about. relay::FrameWal implements
/// this; net/ sees only the interface, keeping the dependency pointed
/// relay -> net. OnShardOpen/OnShardData run on loop threads (one shard is
/// only ever touched by its owning loop); OnShardClose/OnShardAbandon may
/// run on the merge scheduler — implementations serialize per shard
/// themselves (distinct shards never share a callback).
class ShardDurabilityHook {
 public:
  virtual ~ShardDurabilityHook() = default;
  /// A fresh shard opened for `ordinal` in `epoch`; `header_bytes` is the
  /// validated stream header its byte stream starts with and `reporter_id`
  /// the authenticated identity it was charged to (empty when anonymous) —
  /// logged so a replay restores the exact per-reporter spend. Not called
  /// for resumed shards (their log already holds the header).
  virtual void OnShardOpen(size_t shard, uint64_t ordinal, uint32_t epoch,
                           const std::string& reporter_id,
                           const std::string& header_bytes) = 0;
  /// An accepted DATA payload, about to be fed to the session.
  virtual void OnShardData(size_t shard, const char* data, size_t size) = 0;
  /// Called inside the shard's merge turn, immediately before the session
  /// close — the close record's sequence is the exact merge order a replay
  /// must reproduce.
  virtual void OnShardClose(size_t shard) = 0;
  /// The shard was dropped (disconnect, timeout, poison, shutdown).
  virtual void OnShardAbandon(size_t shard) = 0;
};

/// A shard reconstructed by WAL replay that was still open at the crash:
/// HELLO for its ordinal re-attaches to it instead of opening a new shard,
/// and the reporter is told to skip `durable_bytes` post-header bytes.
struct ResumedShard {
  size_t shard = 0;
  uint64_t durable_bytes = 0;
};

struct ReportServerOptions {
  /// Event-loop threads (at least 1). Each drives its own Poller over a
  /// share of the connections; new connections are dealt round-robin.
  unsigned acceptors = 1;
  /// Readiness backend. kEpoll (the default) falls back to poll(2) on
  /// platforms without epoll; tests force kPoll to exercise the fallback.
  PollerBackend poller = PollerBackend::kEpoll;
  /// Reap a connection that takes longer than this to complete a protocol
  /// message, or sits idle between messages this long (0 = wait forever).
  /// The budget covers a whole prefix or payload — partial reads do not
  /// reset it — which is what bounds slow-loris reporters trickling bytes.
  /// A connection whose channels are all awaiting their SHARD_CLOSED
  /// verdict is exempt: that wait belongs to the merge scheduler and is
  /// bounded by merge_turn_timeout_ms, which may legitimately exceed this.
  /// Even at 0, a teardown's goodbye flush stays bounded by a fixed grace
  /// so Stop(drain) cannot hang on a peer that never reads its verdict.
  int idle_timeout_ms = 30000;
  /// When nonzero, the campaign's fleet size: every epoch expects shards
  /// with ordinals exactly 0..expected_shards-1, and ordinal k's merge
  /// waits until every smaller ordinal has merged or abandoned — a strict
  /// barrier, so the session is bit-identical to the ordinal-ordered file
  /// run even when a smaller ordinal connects long after a larger one
  /// closed. At 0 (ad hoc), merges are ordered only among shards open
  /// concurrently: a late-connecting smaller ordinal may merge after an
  /// earlier-closing larger one.
  uint64_t expected_shards = 0;
  /// Bound on how long a CLOSE_SHARD may wait for its merge turn before
  /// the shard is abandoned (0 = wait forever). Guards against a campaign
  /// whose predecessor ordinal never arrives — e.g. a dead reporter.
  int merge_turn_timeout_ms = 120000;
  /// Optional telemetry (obs/metrics.h): connection/HELLO/shard counters,
  /// DATA read and merge-barrier latency histograms. Typically the same
  /// registry the session reports through. Must outlive the server.
  obs::MetricsRegistry* metrics = nullptr;
  /// Optional campaign event journal: HELLO accept/refuse and merge-barrier
  /// enter/exit events (the session journals shard lifecycle itself).
  obs::EventJournal* journal = nullptr;
  /// Accept SNAPSHOT messages from downstream relay nodes (a root or
  /// mid-tier collector). Off by default: an edge collector should not let
  /// arbitrary peers inject whole aggregates.
  bool accept_snapshots = false;
  /// When non-empty, the campaign's shared HMAC key: every HELLO must be a
  /// protocol v3 HELLO whose tag verifies (constant-time) against this key
  /// before the stream header is even decoded — an unauthenticated or
  /// forged HELLO never reaches the session. When empty, only legacy v2
  /// HELLOs are accepted; a v3 HELLO to a keyless server is refused loudly
  /// rather than silently skipping verification.
  std::string campaign_key;
  /// Optional write-ahead durability hook (relay::FrameWal). Must outlive
  /// the server.
  ShardDurabilityHook* wal = nullptr;
  /// Shards a WAL replay left open, keyed by ordinal: a HELLO for one of
  /// these re-attaches instead of opening a new shard, and HELLO_OK carries
  /// its durable byte count. Entries are claimed by the first matching
  /// HELLO and the whole map is dropped on epoch advance (a new epoch has
  /// no pre-crash shards).
  std::unordered_map<uint64_t, ResumedShard> resume_shards;
  /// Ordinals a WAL replay already closed into the current epoch: they seed
  /// the expected-shards barrier as done, so the frontier starts past them
  /// and a re-HELLO for one is refused as a duplicate.
  std::set<uint64_t> completed_ordinals;
};

/// Monotonic counters over the server's lifetime.
struct ReportServerStats {
  uint64_t connections = 0;       ///< Accepted connections.
  uint64_t shards_merged = 0;     ///< Shards closed cleanly and folded in.
  uint64_t shards_discarded = 0;  ///< Shards closed poisoned (contributed 0).
  uint64_t shards_abandoned = 0;  ///< Shards dropped by disconnect/timeouts.
  uint64_t hello_rejected = 0;    ///< Connections refused at HELLO.
  uint64_t hello_unauthenticated = 0;
  ///< HELLOs refused by the auth gate (bad tag, wrong version for the
  ///< server's key state) — a subset of hello_rejected.
  uint64_t protocol_errors = 0;   ///< Connections killed by bad framing.
  uint64_t snapshots_accepted = 0;  ///< Relay SNAPSHOTs stored (fresh seq).
  uint64_t snapshots_stale = 0;     ///< Retries acked without replacing.
  uint64_t snapshots_refused = 0;   ///< Relay SNAPSHOTs rejected.
  uint64_t nodes_folded = 0;        ///< Relay nodes merged by Fold.
};

class ReportServer {
 public:
  /// Binds `endpoint` and starts accepting. `session` and the pipeline
  /// behind `expected` must outlive the server; `expected` is the stream
  /// header every reporter must HELLO with (Pipeline::header()).
  static Result<std::unique_ptr<ReportServer>> Start(
      api::ServerSession* session, const stream::StreamHeader& expected,
      const Endpoint& endpoint, ReportServerOptions options);

  /// Hard stop (drain = false).
  ~ReportServer();

  ReportServer(const ReportServer&) = delete;
  ReportServer& operator=(const ReportServer&) = delete;

  /// Stops accepting new connections and joins the loops. With `drain`,
  /// in-flight shards finish naturally — bounded by the idle timeout, and
  /// even with idle_timeout_ms == 0 a final reply a peer never reads is
  /// given up on after a fixed grace, so a drain always terminates.
  /// Without `drain`, connections are shut down immediately and their open
  /// shards abandoned. Idempotent; the first call wins.
  void Stop(bool drain);

  /// The bound endpoint with any ephemeral TCP port resolved — what
  /// reporters should connect to.
  const Endpoint& endpoint() const { return listener_.endpoint(); }

  ReportServerStats stats() const;

  /// Merges the retained relay snapshots (highest seq per node) into the
  /// session in ascending node-id order — the deterministic fold that makes
  /// a two-tier campaign reproduce the tree-shaped file run bit for bit.
  /// Call after Stop(drain): no connection is racing the session. A
  /// malformed snapshot mutates nothing (the session stages before
  /// committing); folding continues past it and the first error is
  /// returned.
  Status FoldRelaySnapshots();

 private:
  using SteadyTime = std::chrono::steady_clock::time_point;

  /// One logical shard multiplexed over a connection.
  struct ChannelState {
    size_t shard = 0;
    uint64_t ordinal = 0;
    /// CLOSE_SHARD received: the channel now belongs to the merge
    /// scheduler. A dying connection abandons only its non-closing
    /// channels — a close in flight completes (the reply just goes
    /// nowhere), exactly as a blocking close used to survive its peer.
    bool closing = false;
    /// Cumulative post-header bytes fed on this channel instance (the
    /// DATA_ACK watermark). Starts at 0 even for resumed shards: the
    /// client windows what *it* sent since the resume.
    uint64_t fed_bytes = 0;
  };

  enum class ReadPhase : uint8_t { kPrefix, kPayload };

  /// One connection. Read-path fields are touched only by the owning loop
  /// thread; `mutex` guards the fields shared with the merge scheduler and
  /// Stop (channels, outbuf, flags).
  struct Conn {
    Socket socket;
    size_t loop = 0;

    // --- owning-loop-thread only ---------------------------------------
    ReadPhase phase = ReadPhase::kPrefix;
    char prefix[kMessageHeaderBytes] = {};
    size_t prefix_got = 0;
    MessageHeader header;
    std::string payload;
    size_t payload_got = 0;
    uint64_t data_started_ns = 0;
    /// When the current message (or the wait for the next one) must
    /// complete; re-armed at prefix completion and message completion,
    /// never by partial reads. max() means unarmed (no bound). With
    /// idle_timeout_ms == 0 only goodbye flushes are armed (a bounded
    /// grace, so Stop(drain) cannot hang on a peer that never reads).
    SteadyTime deadline = SteadyTime::max();
    bool reads_closed = false;  ///< Poisoned: flush the outbuf, then die.
    bool wants_acks = false;    ///< Some HELLO set kHelloFlagDataAcks.
    uint64_t unacked_bytes = 0;
    /// Channels with progress since the last DATA_ACK (ordered for a
    /// deterministic wire layout).
    std::map<uint32_t, uint64_t> pending_acks;
    bool want_write = false;  ///< Poller currently watching writability.

    // --- shared with scheduler / Stop (guarded by mutex) ----------------
    std::mutex mutex;
    std::unordered_map<uint32_t, ChannelState> channels;
    std::string outbuf;
    size_t outbuf_sent = 0;
    bool close_after_flush = false;
    bool dead = false;  ///< Torn down; late scheduler replies are dropped.
  };

  /// One event-loop thread's state. `conns` is owned by the loop thread;
  /// `mutex` guards only the two inboxes other threads push into.
  struct Loop {
    Poller poller;
    int wake_read = -1;
    int wake_write = -1;
    std::thread thread;
    std::unordered_map<int, std::shared_ptr<Conn>> conns;
    std::mutex mutex;
    std::vector<std::shared_ptr<Conn>> adopt_inbox;  ///< Newly accepted.
    std::vector<std::shared_ptr<Conn>> flush_inbox;  ///< Scheduler replies.
    bool woken = false;  // coalesces wake-pipe writes
  };

  /// A CLOSE_SHARD waiting for its merge turn, keyed by ordinal in the
  /// scheduler's map.
  struct PendingClose {
    std::shared_ptr<Conn> conn;
    uint32_t channel = 0;
    size_t shard = 0;
    uint64_t ordinal = 0;
    uint64_t enqueued_ns = 0;
    SteadyTime deadline{};
    bool has_deadline = false;
  };

  ReportServer(api::ServerSession* session, stream::StreamHeader expected,
               ReportServerOptions options);

  // --- event loop ------------------------------------------------------
  void LoopMain(size_t index);
  void WakeLoop(size_t index);
  void AcceptReady(Loop& loop);
  void AdoptConn(Loop& loop, const std::shared_ptr<Conn>& conn);
  /// Drains readable bytes through the prefix/payload state machine until
  /// the socket would block, the dispatch budget runs out, or the
  /// connection dies.
  void HandleReadable(Loop& loop, const std::shared_ptr<Conn>& conn);
  /// Dispatches one complete message; returns false when the connection
  /// was poisoned or torn down.
  bool DispatchMessage(Loop& loop, const std::shared_ptr<Conn>& conn);
  bool HandleHello(Loop& loop, const std::shared_ptr<Conn>& conn);
  bool HandleSnapshot(Loop& loop, const std::shared_ptr<Conn>& conn);
  /// End-of-stream / recv-fault / reap handling (see the protocol-error
  /// accounting rules in the .cc).
  void HandleConnFailure(Loop& loop, const std::shared_ptr<Conn>& conn,
                         bool clean_eof, bool reaped);
  /// Queues ERROR{verdict}, abandons the connection's shards, counts a
  /// protocol error if none was open, and flags close-after-flush.
  void PoisonConn(Loop& loop, const std::shared_ptr<Conn>& conn,
                  const Status& verdict, bool count_always);
  /// Abandons every non-closing channel; returns how many channels (of any
  /// kind) were present before.
  size_t AbandonConnChannels(const std::shared_ptr<Conn>& conn);
  /// Unregisters and closes the connection. Channels must already be
  /// abandoned or scheduler-owned.
  void DestroyConn(Loop& loop, const std::shared_ptr<Conn>& conn);
  /// Sends as much of the outbuf as the socket takes; manages write
  /// interest and close-after-flush teardown.
  void FlushConn(Loop& loop, const std::shared_ptr<Conn>& conn);
  /// Stops reading, flushes what is queued, then tears the connection
  /// down (the polite goodbye after an ERROR or a drain).
  void CloseAfterFlush(Loop& loop, const std::shared_ptr<Conn>& conn);
  void QueueMessage(const std::shared_ptr<Conn>& conn, MessageType type,
                    const std::string& payload);
  void FlushPendingAcks(const std::shared_ptr<Conn>& conn);
  void ArmDeadline(const std::shared_ptr<Conn>& conn);

  // --- merge scheduler -------------------------------------------------
  void SchedulerMain();
  /// Completes one pending close: merge (got_turn) or abandon; stats,
  /// journal, and the SHARD_CLOSED reply routed to the owning loop.
  void CompleteClose(PendingClose close, bool got_turn, bool stopping);

  /// Validates and claims `ordinal` for a new shard (bounds and duplicate
  /// checks; see Options::expected_shards).
  Status RegisterOrdinal(uint64_t ordinal);
  /// Marks `ordinal` finished (merged or abandoned): removes it from the
  /// active set, advances the expected-shards frontier, wakes the
  /// scheduler.
  void FinishOrdinal(uint64_t ordinal);
  void CountProtocolError();
  void CountAbandoned();

  api::ServerSession* session_;
  const stream::StreamHeader expected_;
  const ReportServerOptions options_;
  obs::NetServerMetrics metrics_;  // all-null when options_.metrics is null

  Listener listener_;
  std::vector<std::unique_ptr<Loop>> loops_;
  std::thread scheduler_;
  size_t rr_next_ = 0;  // round-robin loop assignment (loop 0 thread only)

  mutable std::mutex mutex_;
  /// Scheduler wake: a close enqueued, an ordinal finished, or stopping.
  std::condition_variable merge_cv_;
  /// CLOSE_SHARDs waiting for their merge turn, keyed by ordinal (an
  /// ordinal is active until finished, so keys are unique).
  std::map<uint64_t, PendingClose> pending_closes_;
  /// Ordinals of open shards; in ad hoc mode the smallest holds the turn.
  std::set<uint64_t> active_ordinals_;
  /// Expected-shards mode only: ordinals finished (merged or abandoned)
  /// in the current epoch, and the barrier frontier — the smallest ordinal
  /// not yet finished, i.e. the one holding the merge turn. Both reset
  /// when the epoch advances.
  std::set<uint64_t> done_ordinals_;
  uint64_t merge_frontier_ = 0;
  /// Replay-resumable shards not yet claimed by a HELLO (see Options).
  std::unordered_map<uint64_t, ResumedShard> resume_shards_;
  /// The latest snapshot accepted from each relay node. An ordered map so
  /// FoldRelaySnapshots walks nodes in ascending id order.
  struct PendingSnapshot {
    uint64_t seq = 0;
    uint32_t epoch = 0;
    std::string bytes;
  };
  std::map<uint64_t, PendingSnapshot> relay_snapshots_;
  /// Live connections by fd, for Stop's shutdown sweep. Conns unregister
  /// under mutex_ before their fd closes, so a registered fd is never
  /// stale.
  std::unordered_map<int, std::shared_ptr<Conn>> conns_;
  ReportServerStats stats_;
  std::condition_variable stopped_cv_;  // signalled when a Stop completes
  bool stop_accepting_ = false;
  bool hard_stop_ = false;
  bool scheduler_exit_ = false;  // loops joined; drain the queue and leave
  bool stopped_ = false;         // Stop already ran (threads joined)
};

}  // namespace ldp::net

#endif  // LDP_NET_REPORT_SERVER_H_
