// ReportServer: the network ingestion edge of a collection deployment. It
// owns a Listener (TCP or Unix-domain) and N acceptor threads, and maps one
// connection to one api::ServerSession shard: a reporter HELLOs its stream
// header (validated against the pipeline's protocol before any report bytes
// are decoded), then its DATA bytes go straight into ServerSession::Feed —
// the same zero-copy framing, per-shard strand scheduling, and backpressure
// as every other ingest path. A framing error, a mid-stream disconnect, or a
// slow-loris timeout poisons/abandons exactly that connection's shard;
// honest connections are untouched.
//
// Determinism: closed shards merge in ascending HELLO *ordinal* order, not
// connection-completion order (floating-point accumulation makes merge
// order observable). With Options::expected_shards = N this is a strict
// barrier over ordinals 0..N-1 — the session is bit-identical to the
// file-based `ldp_aggregate shard-0 ... shard-N-1` run and to the
// in-process Pipeline::Collect run, no matter when each connection arrives
// or finishes — the property the net e2e tests and CI pin down. In ad hoc
// mode (expected_shards = 0) the ordering covers shards open concurrently;
// a smaller ordinal that connects only after a larger one already closed
// merges late.
//
// Threading: each acceptor thread loops { non-blocking accept (poll +
// wake pipe), handle the connection inline with blocking reads bounded by
// Options::idle_timeout_ms }, so the server serves up to `acceptors`
// connections concurrently and a stalled reporter can hold up only its own
// slot until the idle timeout reaps it. The ServerSession surface is
// thread-safe (PR 4), so acceptors feed disjoint shards without further
// coordination.

#ifndef LDP_NET_REPORT_SERVER_H_
#define LDP_NET_REPORT_SERVER_H_

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "api/server_session.h"
#include "net/protocol.h"
#include "net/socket.h"
#include "obs/metrics.h"
#include "stream/report_stream.h"
#include "util/result.h"

namespace ldp::obs {
class EventJournal;
}  // namespace ldp::obs

namespace ldp::net {

/// Durability hook on the accepted-frame path: every callback fires
/// *before* the corresponding session call, so a crash after the callback
/// loses nothing the reporter was told about. relay::FrameWal implements
/// this; net/ sees only the interface, keeping the dependency pointed
/// relay -> net. Callbacks run on acceptor threads — implementations
/// serialize per shard themselves (distinct shards never share a callback).
class ShardDurabilityHook {
 public:
  virtual ~ShardDurabilityHook() = default;
  /// A fresh shard opened for `ordinal` in `epoch`; `header_bytes` is the
  /// validated stream header its byte stream starts with. Not called for
  /// resumed shards (their log already holds the header).
  virtual void OnShardOpen(size_t shard, uint64_t ordinal, uint32_t epoch,
                           const std::string& header_bytes) = 0;
  /// An accepted DATA payload, about to be fed to the session.
  virtual void OnShardData(size_t shard, const char* data, size_t size) = 0;
  /// Called inside the shard's merge turn, immediately before the session
  /// close — the close record's sequence is the exact merge order a replay
  /// must reproduce.
  virtual void OnShardClose(size_t shard) = 0;
  /// The shard was dropped (disconnect, timeout, poison, shutdown).
  virtual void OnShardAbandon(size_t shard) = 0;
};

/// A shard reconstructed by WAL replay that was still open at the crash:
/// HELLO for its ordinal re-attaches to it instead of opening a new shard,
/// and the reporter is told to skip `durable_bytes` post-header bytes.
struct ResumedShard {
  size_t shard = 0;
  uint64_t durable_bytes = 0;
};

struct ReportServerOptions {
  /// Concurrent connections served (one acceptor thread each, at least 1).
  unsigned acceptors = 1;
  /// Reap a connection that goes silent for this long (0 = wait forever).
  /// This is what bounds slow-loris reporters trickling partial messages.
  int idle_timeout_ms = 30000;
  /// When nonzero, the campaign's fleet size: every epoch expects shards
  /// with ordinals exactly 0..expected_shards-1, and ordinal k's merge
  /// waits until every smaller ordinal has merged or abandoned — a strict
  /// barrier, so the session is bit-identical to the ordinal-ordered file
  /// run even when a smaller ordinal connects long after a larger one
  /// closed. At 0 (ad hoc), merges are ordered only among shards open
  /// concurrently: a late-connecting smaller ordinal may merge after an
  /// earlier-closing larger one.
  uint64_t expected_shards = 0;
  /// Bound on how long a CLOSE_SHARD may wait for its merge turn before
  /// the shard is abandoned (0 = wait forever). Guards against a campaign
  /// whose predecessor ordinal never arrives — e.g. a dead reporter — and
  /// against acceptor-slot exhaustion deadlocks.
  int merge_turn_timeout_ms = 120000;
  /// Optional telemetry (obs/metrics.h): connection/HELLO/shard counters,
  /// DATA read and merge-barrier latency histograms. Typically the same
  /// registry the session reports through. Must outlive the server.
  obs::MetricsRegistry* metrics = nullptr;
  /// Optional campaign event journal: HELLO accept/refuse and merge-barrier
  /// enter/exit events (the session journals shard lifecycle itself).
  obs::EventJournal* journal = nullptr;
  /// Accept SNAPSHOT messages from downstream relay nodes (a root or
  /// mid-tier collector). Off by default: an edge collector should not let
  /// arbitrary peers inject whole aggregates.
  bool accept_snapshots = false;
  /// Optional write-ahead durability hook (relay::FrameWal). Must outlive
  /// the server.
  ShardDurabilityHook* wal = nullptr;
  /// Shards a WAL replay left open, keyed by ordinal: a HELLO for one of
  /// these re-attaches instead of opening a new shard, and HELLO_OK carries
  /// its durable byte count. Entries are claimed by the first matching
  /// HELLO and the whole map is dropped on epoch advance (a new epoch has
  /// no pre-crash shards).
  std::unordered_map<uint64_t, ResumedShard> resume_shards;
  /// Ordinals a WAL replay already closed into the current epoch: they seed
  /// the expected-shards barrier as done, so the frontier starts past them
  /// and a re-HELLO for one is refused as a duplicate.
  std::set<uint64_t> completed_ordinals;
};

/// Monotonic counters over the server's lifetime.
struct ReportServerStats {
  uint64_t connections = 0;       ///< Accepted connections.
  uint64_t shards_merged = 0;     ///< Shards closed cleanly and folded in.
  uint64_t shards_discarded = 0;  ///< Shards closed poisoned (contributed 0).
  uint64_t shards_abandoned = 0;  ///< Shards dropped by disconnect/timeouts.
  uint64_t hello_rejected = 0;    ///< Connections refused at HELLO.
  uint64_t protocol_errors = 0;   ///< Connections killed by bad framing.
  uint64_t snapshots_accepted = 0;  ///< Relay SNAPSHOTs stored (any seq).
  uint64_t snapshots_refused = 0;   ///< Relay SNAPSHOTs rejected.
  uint64_t nodes_folded = 0;        ///< Relay nodes merged by Fold.
};

class ReportServer {
 public:
  /// Binds `endpoint` and starts accepting. `session` and the pipeline
  /// behind `expected` must outlive the server; `expected` is the stream
  /// header every reporter must HELLO with (Pipeline::header()).
  static Result<std::unique_ptr<ReportServer>> Start(
      api::ServerSession* session, const stream::StreamHeader& expected,
      const Endpoint& endpoint, ReportServerOptions options);

  /// Hard stop (drain = false).
  ~ReportServer();

  ReportServer(const ReportServer&) = delete;
  ReportServer& operator=(const ReportServer&) = delete;

  /// Stops accepting new connections and joins the acceptors. With
  /// `drain`, in-flight connections finish naturally (bounded by the idle
  /// timeout); without, they are shut down immediately and their open
  /// shards abandoned. Idempotent; the first call wins.
  void Stop(bool drain);

  /// The bound endpoint with any ephemeral TCP port resolved — what
  /// reporters should connect to.
  const Endpoint& endpoint() const { return listener_.endpoint(); }

  ReportServerStats stats() const;

  /// Merges the retained relay snapshots (highest seq per node) into the
  /// session in ascending node-id order — the deterministic fold that makes
  /// a two-tier campaign reproduce the tree-shaped file run bit for bit.
  /// Call after Stop(drain): no connection is racing the session. A
  /// malformed snapshot mutates nothing (the session stages before
  /// committing); folding continues past it and the first error is
  /// returned.
  Status FoldRelaySnapshots();

 private:
  ReportServer(api::ServerSession* session, stream::StreamHeader expected,
               ReportServerOptions options);

  void AcceptLoop();

  /// Registers the connection for hard-stop shutdown, runs it, cleans up.
  void HandleConnection(Socket socket);

  /// The per-connection conversation loop (may return from any state; the
  /// open shard, if any, is abandoned on every abnormal exit).
  void RunConnection(Socket* socket);

  /// Sends one framed message, best effort (a dead peer is the peer's
  /// problem; the session state is already consistent).
  void SendReply(Socket* socket, MessageType type, const std::string& payload);

  /// Validates and claims `ordinal` for a new shard (bounds and duplicate
  /// checks; see Options::expected_shards).
  Status RegisterOrdinal(uint64_t ordinal);

  /// Claims the merge turn for `ordinal`, closes (or abandons, on hard
  /// stop / turn timeout) the shard, releases the turn. Blocks until every
  /// smaller ordinal has merged or abandoned.
  Status WaitTurnAndClose(uint64_t ordinal, size_t shard);

  /// Marks `ordinal` finished (merged or abandoned): removes it from the
  /// active set, advances the expected-shards frontier, wakes waiters.
  void FinishOrdinal(uint64_t ordinal);

  api::ServerSession* session_;
  const stream::StreamHeader expected_;
  const ReportServerOptions options_;
  obs::NetServerMetrics metrics_;  // all-null when options_.metrics is null

  Listener listener_;
  std::vector<std::thread> acceptors_;

  mutable std::mutex mutex_;
  std::condition_variable merge_turn_;
  /// Ordinals of connections with an open shard; in ad hoc mode the
  /// smallest holds the merge turn.
  std::set<uint64_t> active_ordinals_;
  /// Expected-shards mode only: ordinals finished (merged or abandoned)
  /// in the current epoch, and the barrier frontier — the smallest ordinal
  /// not yet finished, i.e. the one holding the merge turn. Both reset
  /// when the epoch advances.
  std::set<uint64_t> done_ordinals_;
  uint64_t merge_frontier_ = 0;
  /// Replay-resumable shards not yet claimed by a HELLO (see Options).
  std::unordered_map<uint64_t, ResumedShard> resume_shards_;
  /// The latest snapshot accepted from each relay node. An ordered map so
  /// FoldRelaySnapshots walks nodes in ascending id order.
  struct PendingSnapshot {
    uint64_t seq = 0;
    uint32_t epoch = 0;
    std::string bytes;
  };
  std::map<uint64_t, PendingSnapshot> relay_snapshots_;
  /// In-flight connections: fd → "has an open shard". Stop shuts down
  /// every fd (hard stop) or just the idle ones (drain — a connection
  /// sitting between shards has no work the drain should wait for).
  /// Sockets are unregistered under mutex_ before they close, so a
  /// registered fd is never stale.
  std::unordered_map<int, bool> live_fds_;
  ReportServerStats stats_;
  std::condition_variable stopped_cv_;  // signalled when a Stop completes
  bool stop_accepting_ = false;
  bool hard_stop_ = false;
  bool stopped_ = false;  // Stop already ran (acceptors joined)
};

}  // namespace ldp::net

#endif  // LDP_NET_REPORT_SERVER_H_
