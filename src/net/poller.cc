#include "net/poller.h"

#include <cerrno>
#include <cstring>
#include <unistd.h>
#include <utility>

#ifdef __linux__
#include <sys/epoll.h>
#endif

namespace ldp::net {

namespace {

Status ErrnoStatus(const std::string& what) {
  return Status::IoError(what + ": " + std::strerror(errno));
}

short PollEvents(bool want_read, bool want_write) {
  short events = 0;
  if (want_read) events |= POLLIN;
  if (want_write) events |= POLLOUT;
  return events;
}

#ifdef __linux__
uint32_t EpollEvents(bool want_read, bool want_write) {
  uint32_t events = 0;
  if (want_read) events |= EPOLLIN;
  if (want_write) events |= EPOLLOUT;
  return events;
}
#endif

}  // namespace

Result<Poller> Poller::Create(PollerBackend backend) {
  Poller poller;
#ifdef __linux__
  if (backend == PollerBackend::kEpoll) {
    const int fd = ::epoll_create1(EPOLL_CLOEXEC);
    if (fd < 0) return ErrnoStatus("epoll_create1");
    poller.backend_ = PollerBackend::kEpoll;
    poller.epoll_fd_ = fd;
    return poller;
  }
#else
  (void)backend;
#endif
  poller.backend_ = PollerBackend::kPoll;
  return poller;
}

Poller::~Poller() {
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

Poller::Poller(Poller&& other) noexcept
    : backend_(other.backend_),
      epoll_fd_(other.epoll_fd_),
      interest_(std::move(other.interest_)),
      scratch_(std::move(other.scratch_)) {
  other.epoll_fd_ = -1;
  other.interest_.clear();
}

Poller& Poller::operator=(Poller&& other) noexcept {
  if (this != &other) {
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
    backend_ = other.backend_;
    epoll_fd_ = other.epoll_fd_;
    interest_ = std::move(other.interest_);
    scratch_ = std::move(other.scratch_);
    other.epoll_fd_ = -1;
    other.interest_.clear();
  }
  return *this;
}

Status Poller::Add(int fd, bool want_read, bool want_write) {
#ifdef __linux__
  if (backend_ == PollerBackend::kEpoll) {
    epoll_event event{};
    event.events = EpollEvents(want_read, want_write);
    event.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &event) != 0) {
      return ErrnoStatus("epoll_ctl(ADD)");
    }
    return Status::OK();
  }
#endif
  if (!interest_.emplace(fd, PollEvents(want_read, want_write)).second) {
    return Status::AlreadyExists("fd already watched");
  }
  return Status::OK();
}

Status Poller::Update(int fd, bool want_read, bool want_write) {
#ifdef __linux__
  if (backend_ == PollerBackend::kEpoll) {
    epoll_event event{};
    event.events = EpollEvents(want_read, want_write);
    event.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &event) != 0) {
      return ErrnoStatus("epoll_ctl(MOD)");
    }
    return Status::OK();
  }
#endif
  auto found = interest_.find(fd);
  if (found == interest_.end()) return Status::NotFound("fd not watched");
  found->second = PollEvents(want_read, want_write);
  return Status::OK();
}

Status Poller::Remove(int fd) {
#ifdef __linux__
  if (backend_ == PollerBackend::kEpoll) {
    epoll_event event{};
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, &event) != 0 &&
        errno != ENOENT && errno != EBADF) {
      return ErrnoStatus("epoll_ctl(DEL)");
    }
    return Status::OK();
  }
#endif
  interest_.erase(fd);
  return Status::OK();
}

Status Poller::Wait(int timeout_ms, std::vector<PollerEvent>* events) {
  events->clear();
#ifdef __linux__
  if (backend_ == PollerBackend::kEpoll) {
    epoll_event ready[256];
    int count;
    do {
      count = ::epoll_wait(epoll_fd_, ready, 256, timeout_ms);
    } while (count < 0 && errno == EINTR);
    if (count < 0) return ErrnoStatus("epoll_wait");
    events->reserve(static_cast<size_t>(count));
    for (int i = 0; i < count; ++i) {
      PollerEvent event;
      event.fd = ready[i].data.fd;
      event.readable = (ready[i].events & EPOLLIN) != 0;
      event.writable = (ready[i].events & EPOLLOUT) != 0;
      event.error = (ready[i].events & (EPOLLERR | EPOLLHUP)) != 0;
      events->push_back(event);
    }
    return Status::OK();
  }
#endif
  scratch_.clear();
  scratch_.reserve(interest_.size());
  for (const auto& [fd, wanted] : interest_) {
    pollfd entry{};
    entry.fd = fd;
    entry.events = wanted;
    scratch_.push_back(entry);
  }
  int count;
  do {
    count = ::poll(scratch_.data(), scratch_.size(), timeout_ms);
  } while (count < 0 && errno == EINTR);
  if (count < 0) return ErrnoStatus("poll");
  for (const pollfd& entry : scratch_) {
    if (entry.revents == 0) continue;
    PollerEvent event;
    event.fd = entry.fd;
    event.readable = (entry.revents & POLLIN) != 0;
    event.writable = (entry.revents & POLLOUT) != 0;
    event.error = (entry.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;
    events->push_back(event);
  }
  return Status::OK();
}

}  // namespace ldp::net
