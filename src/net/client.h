// CollectorClient: the reporter's side of the collector protocol
// (net/protocol.h). One client streams one shard: Connect performs the
// HELLO/schema negotiation, Send ships raw report-stream frame bytes in
// bounded DATA messages, Close declares end-of-stream and returns the
// server's merge verdict with exact ingest statistics. After a clean Close
// the same connection can Reopen another shard or request an epoch advance
// — a device reporting across a multi-day campaign keeps one connection.
//
// Blocking I/O with an optional idle timeout; thread-compatible (one
// client per thread, like ClientSession's Rng discipline).

#ifndef LDP_NET_CLIENT_H_
#define LDP_NET_CLIENT_H_

#include <cstdint>
#include <string>

#include "net/protocol.h"
#include "net/socket.h"
#include "stream/report_stream.h"
#include "stream/shard_ingester.h"
#include "util/result.h"

namespace ldp::net {

struct CollectorClientOptions {
  /// Bound on every socket send/recv (0 = wait forever).
  int idle_timeout_ms = 30000;
  /// Send buffer high-water mark: Send flushes a DATA message whenever the
  /// staged bytes reach this size (and Close flushes the remainder).
  size_t flush_bytes = 256 * 1024;
};

/// The server's verdict on one closed shard.
struct ShardCloseSummary {
  /// OK when the shard merged into the epoch; otherwise why it was
  /// discarded (framing poison, rejection budget, shutdown).
  Status status;
  /// Exact server-side ingest statistics for the shard.
  stream::ShardIngester::Stats stats;
};

class CollectorClient {
 public:
  /// Connects to `endpoint` and negotiates shard `ordinal` speaking
  /// `header`'s protocol. Fails with the server's refusal (schema hash /
  /// ε / kind mismatch) before any report is sent.
  static Result<CollectorClient> Connect(const Endpoint& endpoint,
                                         const stream::StreamHeader& header,
                                         uint64_t ordinal,
                                         CollectorClientOptions options = {});

  /// Stages raw frame bytes (stream::AppendFrame output) for the open
  /// shard, flushing full DATA messages as the buffer fills. On failure the
  /// returned status carries the server's ERROR verdict when one is
  /// pending (e.g. this client's stream poisoned its shard).
  Status Send(const char* data, size_t size);
  Status Send(const std::string& bytes) {
    return Send(bytes.data(), bytes.size());
  }

  /// Flushes, declares end-of-stream, and waits for the server's merge
  /// verdict. The shard is gone afterwards; Reopen starts the next one.
  Result<ShardCloseSummary> Close();

  /// Negotiates another shard on the same connection (after Close).
  Status Reopen(const stream::StreamHeader& header, uint64_t ordinal);

  /// Asks the server to close the current collection epoch and open the
  /// next (all server-side shards must be closed). Returns the session's
  /// current epoch on success.
  Result<uint32_t> AdvanceEpoch();

  /// Server-side shard id of the open shard (diagnostic).
  uint64_t shard() const { return shard_; }

  /// The epoch the open shard folds into.
  uint32_t epoch() const { return epoch_; }

  /// Post-header stream bytes already durable server-side for this shard
  /// (WAL resume handshake, net/protocol.h). A resuming reporter skips
  /// this many bytes of its frame stream; 0 for a fresh shard.
  uint64_t resume_offset() const { return resume_offset_; }

  bool shard_open() const { return shard_open_; }

 private:
  explicit CollectorClient(Socket socket, CollectorClientOptions options)
      : socket_(std::move(socket)), options_(options) {}

  /// Sends HELLO and consumes the HELLO_OK / ERROR reply.
  Status Negotiate(const stream::StreamHeader& header, uint64_t ordinal);

  /// Ships the staged buffer as one DATA message.
  Status Flush();

  /// Reads one reply message of `expected` type (ERROR is surfaced as the
  /// carried status from any state).
  Result<std::string> ReadReply(MessageType expected);

  Socket socket_;
  CollectorClientOptions options_;
  std::string staged_;
  uint64_t shard_ = 0;
  uint32_t epoch_ = 0;
  uint64_t resume_offset_ = 0;
  bool shard_open_ = false;
};

}  // namespace ldp::net

#endif  // LDP_NET_CLIENT_H_
