// CollectorClient: the reporter's side of the collector protocol
// (net/protocol.h). One connection now multiplexes many logical shards:
// OpenShard performs the HELLO/schema negotiation for one channel, Send
// ships raw report-stream frame bytes in bounded DATA messages, and
// CloseShard declares end-of-stream and returns the server's merge verdict
// with exact ingest statistics. Because the server merges in ordinal
// order, SHARD_CLOSED replies can arrive out of order relative to traffic
// on other channels — the client matches replies by channel and stashes
// early arrivals, so callers never see the reordering.
//
// The legacy single-shard surface (Connect negotiating one shard, then
// Send/Close/Reopen) is preserved as wrappers over one "primary" channel;
// existing reporters compile and behave unchanged.
//
// Flow control: with CollectorClientOptions::window_bytes set, the HELLO
// opts in to batched DATA_ACK watermarks and Send blocks once
// (sent - acked) bytes across all channels exceed the window — a reporter
// on a fast link cannot buffer the collector into the ground. The window
// is clamped to at least kDataAckFlushBytes + flush_bytes, because the
// server batches acks and a smaller window could wait for an ack the
// server is still accumulating.
//
// Blocking I/O with an optional idle timeout; thread-compatible (one
// client per thread, like ClientSession's Rng discipline).

#ifndef LDP_NET_CLIENT_H_
#define LDP_NET_CLIENT_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>

#include "net/protocol.h"
#include "net/socket.h"
#include "stream/report_stream.h"
#include "stream/shard_ingester.h"
#include "util/result.h"

namespace ldp::net {

struct CollectorClientOptions {
  /// Bound on every socket send/recv (0 = wait forever).
  int idle_timeout_ms = 30000;
  /// Send buffer high-water mark: Send flushes a DATA message whenever the
  /// staged bytes reach this size (and CloseShard flushes the remainder).
  /// Clamped to at least 1 at Connect.
  size_t flush_bytes = 256 * 1024;
  /// When nonzero, bound on unacknowledged in-flight bytes across all of
  /// the connection's channels (see the file comment). 0 disables acks.
  uint64_t window_bytes = 0;
  /// Reporter identity for authenticated (protocol v3) campaigns. When
  /// `campaign_key` is non-empty every HELLO carries `reporter_id` plus an
  /// HMAC-SHA256 tag binding (key, id, channel, epoch, stream header); a
  /// keyed collector refuses anything else. When empty the client speaks
  /// the legacy v2 HELLO and a keyless collector accepts it unchanged.
  std::string reporter_id;
  std::string campaign_key;
  /// The epoch this connection's first HELLO folds into. Authenticated
  /// tags are epoch-bound, so a reporter joining (or reconnecting) after
  /// the campaign advanced past epoch 0 must pass the current epoch here;
  /// later HELLOs on the same connection track HELLO_OK / EPOCH_ADVANCED
  /// replies automatically. Ignored for unauthenticated campaigns.
  uint32_t epoch = 0;
};

/// The server's verdict on one closed shard.
struct ShardCloseSummary {
  /// OK when the shard merged into the epoch; otherwise why it was
  /// discarded (framing poison, rejection budget, shutdown).
  Status status;
  /// Exact server-side ingest statistics for the shard.
  stream::ShardIngester::Stats stats;
};

class CollectorClient {
 public:
  /// Connects to `endpoint` and negotiates shard `ordinal` on the primary
  /// channel, speaking `header`'s protocol. Fails with the server's
  /// refusal (schema hash / ε / kind mismatch) before any report is sent.
  static Result<CollectorClient> Connect(const Endpoint& endpoint,
                                         const stream::StreamHeader& header,
                                         uint64_t ordinal,
                                         CollectorClientOptions options = {});

  // --- multi-shard surface -------------------------------------------------

  /// Negotiates one more shard over this connection and returns its
  /// channel id. Any number of shards may be open concurrently.
  Result<uint32_t> OpenShard(const stream::StreamHeader& header,
                             uint64_t ordinal);

  /// Stages raw frame bytes (stream::AppendFrame output) for `channel`'s
  /// shard, flushing full DATA messages as its buffer fills. On failure
  /// the returned status carries the server's ERROR verdict when one is
  /// pending (e.g. this client's stream poisoned its shard).
  Status Send(uint32_t channel, const char* data, size_t size);

  /// Flushes `channel` and declares end-of-stream, without waiting for the
  /// verdict — several closes can be pipelined, then awaited in any order.
  Status CloseShardBegin(uint32_t channel);

  /// Waits for `channel`'s merge verdict (CloseShardBegin first). The
  /// channel id is free for reuse afterwards.
  Result<ShardCloseSummary> AwaitShardClosed(uint32_t channel);

  /// CloseShardBegin + AwaitShardClosed.
  Result<ShardCloseSummary> CloseShard(uint32_t channel);

  /// Post-header bytes already durable server-side for `channel`'s shard
  /// (WAL resume handshake); 0 for a fresh shard.
  uint64_t resume_offset(uint32_t channel) const;

  /// Channels currently open (closing ones included until awaited).
  size_t open_shards() const { return channels_.size(); }

  // --- legacy single-shard surface (primary channel) -----------------------

  /// Stages frame bytes for the primary shard.
  Status Send(const char* data, size_t size) {
    return Send(primary_, data, size);
  }
  Status Send(const std::string& bytes) {
    return Send(bytes.data(), bytes.size());
  }

  /// Flushes, declares end-of-stream, and waits for the server's merge
  /// verdict. The shard is gone afterwards; Reopen starts the next one.
  Result<ShardCloseSummary> Close() { return CloseShard(primary_); }

  /// Negotiates another primary shard on the same connection (after
  /// Close).
  Status Reopen(const stream::StreamHeader& header, uint64_t ordinal);

  /// Asks the server to close the current collection epoch and open the
  /// next (all server-side shards must be closed). Returns the session's
  /// current epoch on success.
  Result<uint32_t> AdvanceEpoch();

  /// Server-side shard id of the primary shard (diagnostic).
  uint64_t shard() const { return shard_; }

  /// The epoch the most recently opened shard folds into.
  uint32_t epoch() const { return epoch_; }

  /// resume_offset of the primary shard.
  uint64_t resume_offset() const { return resume_offset_; }

  bool shard_open() const { return channels_.count(primary_) != 0; }

 private:
  /// One open (or closing) shard multiplexed over the connection.
  struct ShardChannel {
    uint64_t shard = 0;
    uint64_t resume_offset = 0;
    std::string staged;
    uint64_t sent_bytes = 0;   ///< Post-header bytes shipped in DATA.
    uint64_t acked_bytes = 0;  ///< Server's cumulative DATA_ACK watermark.
    bool closing = false;      ///< CLOSE_SHARD sent, verdict not yet read.
  };

  explicit CollectorClient(Socket socket, CollectorClientOptions options)
      : socket_(std::move(socket)), options_(options) {}

  /// Sends HELLO for (`channel`, `ordinal`) and consumes the HELLO_OK /
  /// ERROR reply, registering the channel on success.
  Status Negotiate(const stream::StreamHeader& header, uint64_t ordinal,
                   uint32_t channel);

  /// Ships `channel`'s staged buffer as one DATA message, blocking for
  /// acks first when the window is full.
  Status Flush(uint32_t channel, ShardChannel& state);

  /// Reads one message off the socket (prefix + payload).
  Result<std::pair<MessageType, std::string>> ReadMessage();

  /// Applies one DATA_ACK's cumulative watermarks to the channel windows.
  Status ProcessAck(const std::string& payload);

  /// Reads and processes exactly one message: DATA_ACKs update windows,
  /// early SHARD_CLOSEDs are stashed, ERROR becomes the returned status.
  Status PumpMessage();

  /// Pumps until a message of `expected` type arrives (for kShardClosed,
  /// one whose channel is `want_channel`); returns its payload.
  Result<std::string> AwaitReply(MessageType expected, uint32_t want_channel);

  uint64_t TotalInFlight() const;

  Socket socket_;
  CollectorClientOptions options_;
  /// 0 when acks are off; otherwise the clamped in-flight bound.
  uint64_t effective_window_ = 0;
  std::map<uint32_t, ShardChannel> channels_;
  /// SHARD_CLOSED payloads that arrived while awaiting something else.
  std::map<uint32_t, std::string> closed_payloads_;
  uint32_t next_channel_ = 0;
  uint32_t primary_ = 0;
  uint64_t shard_ = 0;
  uint32_t epoch_ = 0;
  uint64_t resume_offset_ = 0;
};

}  // namespace ldp::net

#endif  // LDP_NET_CLIENT_H_
