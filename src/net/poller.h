// Readiness multiplexing for the event-driven collector edge: one Poller
// watches many descriptors and reports which are readable/writable, so a
// single thread can drive thousands of connections instead of parking one
// blocking thread per socket.
//
// Two backends. kEpoll uses epoll(7) — O(1) per ready event, the C100K
// path — and only exists on Linux. kPoll is plain poll(2), portable
// everywhere and compiled unconditionally so the fallback stays tested on
// the primary platform rather than rotting behind an #ifdef. Both are
// level-triggered: an fd keeps reporting ready until its buffer is drained,
// which keeps the connection state machine free of edge-trigger starvation
// bugs at the cost of one extra syscall per idle wake.

#ifndef LDP_NET_POLLER_H_
#define LDP_NET_POLLER_H_

#include <poll.h>

#include <unordered_map>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace ldp::net {

enum class PollerBackend {
  /// epoll(7) where available (Linux); elsewhere Create falls back to kPoll.
  kEpoll,
  /// poll(2): portable, O(watched fds) per wait.
  kPoll,
};

/// One readiness report from Wait.
struct PollerEvent {
  int fd = -1;
  bool readable = false;
  bool writable = false;
  /// POLLERR/POLLHUP-class conditions: the fd needs attention even if the
  /// caller only asked for writability. Reads still drain buffered bytes.
  bool error = false;
};

/// A level-triggered readiness set (move-only RAII over the backend state).
class Poller {
 public:
  /// Builds a poller for `backend`; kEpoll silently degrades to kPoll on
  /// platforms without epoll (check backend() when it matters).
  static Result<Poller> Create(PollerBackend backend);

  Poller() = default;
  ~Poller();
  Poller(Poller&& other) noexcept;
  Poller& operator=(Poller&& other) noexcept;
  Poller(const Poller&) = delete;
  Poller& operator=(const Poller&) = delete;

  /// The backend actually in force after fallback.
  PollerBackend backend() const { return backend_; }

  /// Starts watching `fd` (must not already be watched).
  Status Add(int fd, bool want_read, bool want_write);

  /// Changes the interest set of a watched fd.
  Status Update(int fd, bool want_read, bool want_write);

  /// Stops watching `fd` (safe to call for an fd that was never added).
  Status Remove(int fd);

  /// Blocks until at least one watched fd is ready or `timeout_ms` elapses
  /// (-1 = wait forever, 0 = poll and return). Replaces `*events` with the
  /// ready set; an empty result means the timeout fired.
  Status Wait(int timeout_ms, std::vector<PollerEvent>* events);

 private:
  PollerBackend backend_ = PollerBackend::kPoll;
  int epoll_fd_ = -1;
  /// kPoll backend: fd -> requested poll events, flattened per Wait.
  std::unordered_map<int, short> interest_;
  std::vector<pollfd> scratch_;
};

}  // namespace ldp::net

#endif  // LDP_NET_POLLER_H_
