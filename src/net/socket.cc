#include "net/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <utility>

namespace ldp::net {

namespace {

Status ErrnoStatus(const std::string& what) {
  return Status::IoError(what + ": " + std::strerror(errno));
}

bool IsTimeout(int err) { return err == EAGAIN || err == EWOULDBLOCK; }

Status SetCloseOnExec(int fd) {
  const int flags = fcntl(fd, F_GETFD);
  if (flags < 0 || fcntl(fd, F_SETFD, flags | FD_CLOEXEC) < 0) {
    return ErrnoStatus("fcntl(FD_CLOEXEC)");
  }
  return Status::OK();
}

// Where MSG_NOSIGNAL exists (Linux) SendAll passes it per call; elsewhere
// (e.g. macOS) suppress SIGPIPE at the socket so a dead peer surfaces as
// EPIPE instead of killing the process — the "SIGPIPE-safe" contract.
void DisableSigpipe(int fd) {
#if !defined(MSG_NOSIGNAL) && defined(SO_NOSIGPIPE)
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_NOSIGPIPE, &one, sizeof(one));
#else
  (void)fd;
#endif
}

Status SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return ErrnoStatus("fcntl(O_NONBLOCK)");
  }
  return Status::OK();
}

Result<sockaddr_un> UnixAddress(const std::string& path) {
  sockaddr_un address{};
  address.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(address.sun_path)) {
    return Status::InvalidArgument("unix socket path empty or too long: '" +
                                   path + "'");
  }
  std::memcpy(address.sun_path, path.c_str(), path.size() + 1);
  return address;
}

}  // namespace

Result<Endpoint> Endpoint::Parse(const std::string& spec) {
  Endpoint endpoint;
  if (spec.rfind("unix:", 0) == 0) {
    endpoint.kind = Kind::kUnix;
    endpoint.path = spec.substr(5);
    if (endpoint.path.empty()) {
      return Status::InvalidArgument("unix endpoint needs a path: '" + spec +
                                     "'");
    }
    return endpoint;
  }
  if (spec.rfind("tcp:", 0) == 0) {
    endpoint.kind = Kind::kTcp;
    const std::string rest = spec.substr(4);
    std::string port_text;
    if (!rest.empty() && rest[0] == '[') {
      // Bracketed IPv6 literal: tcp:[::1]:PORT.
      const size_t bracket = rest.find(']');
      if (bracket == std::string::npos || bracket == 1 ||
          bracket + 1 >= rest.size() || rest[bracket + 1] != ':') {
        return Status::InvalidArgument(
            "bracketed tcp endpoint must be tcp:[HOST]:PORT: '" + spec + "'");
      }
      endpoint.host = rest.substr(1, bracket - 1);
      port_text = rest.substr(bracket + 2);
    } else {
      const size_t colon = rest.rfind(':');
      if (colon == std::string::npos || colon == 0) {
        return Status::InvalidArgument("tcp endpoint needs HOST:PORT: '" +
                                       spec + "'");
      }
      endpoint.host = rest.substr(0, colon);
      if (endpoint.host.find(':') != std::string::npos) {
        // "tcp:::1:80" could split as host "::1" port 80 or host ":" port
        // "1:80" — refuse the ambiguity instead of guessing.
        return Status::InvalidArgument(
            "IPv6 hosts must be bracketed, tcp:[" + endpoint.host +
            "]:PORT: '" + spec + "'");
      }
      port_text = rest.substr(colon + 1);
    }
    // Strict digit-only parse: strtoul would accept leading whitespace and
    // a '+' sign, so "tcp:host: 80" or "tcp:host:+80" would sneak through.
    if (port_text.empty() || port_text.size() > 5) {
      return Status::InvalidArgument("bad tcp port in '" + spec + "'");
    }
    unsigned long port = 0;
    for (const char c : port_text) {
      if (c < '0' || c > '9') {
        return Status::InvalidArgument("bad tcp port in '" + spec + "'");
      }
      port = port * 10 + static_cast<unsigned long>(c - '0');
    }
    if (port > 65535) {
      return Status::InvalidArgument("bad tcp port in '" + spec + "'");
    }
    endpoint.port = static_cast<uint16_t>(port);
    return endpoint;
  }
  return Status::InvalidArgument(
      "endpoint must be tcp:HOST:PORT or unix:PATH, got '" + spec + "'");
}

std::string Endpoint::ToString() const {
  if (kind == Kind::kUnix) return "unix:" + path;
  if (host.find(':') != std::string::npos) {
    return "tcp:[" + host + "]:" + std::to_string(port);
  }
  return "tcp:" + host + ":" + std::to_string(port);
}

Socket::~Socket() { Close(); }

Socket::Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status Socket::SetIdleTimeout(int milliseconds) {
  if (fd_ < 0) return Status::FailedPrecondition("socket is closed");
  timeval tv{};
  tv.tv_sec = milliseconds / 1000;
  tv.tv_usec = (milliseconds % 1000) * 1000;
  if (setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0 ||
      setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv)) != 0) {
    return ErrnoStatus("setsockopt(SO_RCVTIMEO/SO_SNDTIMEO)");
  }
  return Status::OK();
}

Status Socket::SendAll(const void* data, size_t size) {
  if (fd_ < 0) return Status::FailedPrecondition("socket is closed");
  const char* cursor = static_cast<const char*>(data);
  size_t left = size;
  while (left > 0) {
#ifdef MSG_NOSIGNAL
    const ssize_t sent = ::send(fd_, cursor, left, MSG_NOSIGNAL);
#else
    const ssize_t sent = ::send(fd_, cursor, left, 0);
#endif
    if (sent < 0) {
      if (errno == EINTR) continue;
      if (IsTimeout(errno)) return Status::IoError("send timed out");
      return ErrnoStatus("send");
    }
    cursor += sent;
    left -= static_cast<size_t>(sent);
  }
  return Status::OK();
}

Result<bool> Socket::RecvAll(void* data, size_t size, int deadline_ms) {
  if (fd_ < 0) return Status::FailedPrecondition("socket is closed");
  const auto started = std::chrono::steady_clock::now();
  char* cursor = static_cast<char*>(data);
  size_t got = 0;
  while (got < size) {
    if (deadline_ms > 0) {
      // Wait only for what remains of the whole-message budget, so a peer
      // trickling bytes cannot reset the clock recv by recv.
      const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - started);
      const int remaining = deadline_ms - static_cast<int>(elapsed.count());
      if (remaining <= 0) {
        return Status::DeadlineExceeded("recv deadline exceeded mid-message");
      }
      pollfd ready{};
      ready.fd = fd_;
      ready.events = POLLIN;
      const int polled = ::poll(&ready, 1, remaining);
      if (polled < 0) {
        if (errno == EINTR) continue;
        return ErrnoStatus("poll");
      }
      if (polled == 0) {
        return Status::DeadlineExceeded("recv deadline exceeded mid-message");
      }
    }
    const ssize_t received = ::recv(fd_, cursor + got, size - got, 0);
    if (received < 0) {
      if (errno == EINTR) continue;
      // SO_RCVTIMEO expiring is the same condition as the poll budget above:
      // the peer idled past the bound. One code, so callers never have to
      // substring-match status messages to tell a reap from an I/O fault.
      if (IsTimeout(errno)) return Status::DeadlineExceeded("recv timed out");
      return ErrnoStatus("recv");
    }
    if (received == 0) {
      if (got == 0) return false;  // clean close on a message boundary
      return Status::IoError("connection closed mid-message");
    }
    got += static_cast<size_t>(received);
  }
  return true;
}

Status Socket::SetNonBlocking() {
  if (fd_ < 0) return Status::FailedPrecondition("socket is closed");
  return net::SetNonBlocking(fd_);
}

Result<size_t> Socket::RecvSome(void* data, size_t size, bool* eof) {
  if (fd_ < 0) return Status::FailedPrecondition("socket is closed");
  *eof = false;
  while (true) {
    const ssize_t received = ::recv(fd_, data, size, 0);
    if (received < 0) {
      if (errno == EINTR) continue;
      if (IsTimeout(errno)) return size_t{0};  // would block
      return ErrnoStatus("recv");
    }
    if (received == 0) {
      *eof = true;
      return size_t{0};
    }
    return static_cast<size_t>(received);
  }
}

Result<size_t> Socket::SendSome(const void* data, size_t size) {
  if (fd_ < 0) return Status::FailedPrecondition("socket is closed");
  while (true) {
#ifdef MSG_NOSIGNAL
    const ssize_t sent = ::send(fd_, data, size, MSG_NOSIGNAL);
#else
    const ssize_t sent = ::send(fd_, data, size, 0);
#endif
    if (sent < 0) {
      if (errno == EINTR) continue;
      if (IsTimeout(errno)) return size_t{0};  // would block
      return ErrnoStatus("send");
    }
    return static_cast<size_t>(sent);
  }
}

Result<Socket> ConnectSocket(const Endpoint& endpoint) {
  // Port 0 means "pick one for me" at bind time; as a connect target it can
  // only be a parse of an endpoint that was never resolved. Refuse it here
  // rather than let connect(2) produce a baffling OS-specific error.
  if (endpoint.kind == Endpoint::Kind::kTcp && endpoint.port == 0) {
    return Status::InvalidArgument("cannot connect to tcp port 0 (" +
                                   endpoint.ToString() + ")");
  }
  if (endpoint.kind == Endpoint::Kind::kUnix) {
    sockaddr_un address{};
    LDP_ASSIGN_OR_RETURN(address, UnixAddress(endpoint.path));
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return ErrnoStatus("socket(AF_UNIX)");
    Socket socket(fd);
    LDP_RETURN_IF_ERROR(SetCloseOnExec(fd));
    DisableSigpipe(fd);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&address),
                  sizeof(address)) != 0) {
      return ErrnoStatus("connect to " + endpoint.ToString());
    }
    return socket;
  }

  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* found = nullptr;
  const std::string port_text = std::to_string(endpoint.port);
  const int resolved =
      ::getaddrinfo(endpoint.host.c_str(), port_text.c_str(), &hints, &found);
  if (resolved != 0) {
    return Status::IoError("cannot resolve '" + endpoint.host +
                           "': " + gai_strerror(resolved));
  }
  Status last = Status::IoError("no addresses for " + endpoint.ToString());
  for (const addrinfo* info = found; info != nullptr; info = info->ai_next) {
    const int fd =
        ::socket(info->ai_family, info->ai_socktype, info->ai_protocol);
    if (fd < 0) {
      last = ErrnoStatus("socket");
      continue;
    }
    Socket socket(fd);
    if (::connect(fd, info->ai_addr, info->ai_addrlen) != 0) {
      last = ErrnoStatus("connect to " + endpoint.ToString());
      continue;
    }
    const Status cloexec = SetCloseOnExec(fd);
    if (!cloexec.ok()) {
      last = cloexec;
      continue;
    }
    DisableSigpipe(fd);
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    ::freeaddrinfo(found);
    return socket;
  }
  ::freeaddrinfo(found);
  return last;
}

Listener::~Listener() { Close(); }

Listener::Listener(Listener&& other) noexcept
    : endpoint_(std::move(other.endpoint_)),
      fd_(other.fd_),
      wake_read_(other.wake_read_),
      wake_write_(other.wake_write_) {
  other.fd_ = other.wake_read_ = other.wake_write_ = -1;
}

Listener& Listener::operator=(Listener&& other) noexcept {
  if (this != &other) {
    Close();
    endpoint_ = std::move(other.endpoint_);
    fd_ = other.fd_;
    wake_read_ = other.wake_read_;
    wake_write_ = other.wake_write_;
    other.fd_ = other.wake_read_ = other.wake_write_ = -1;
  }
  return *this;
}

void Listener::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
    if (endpoint_.kind == Endpoint::Kind::kUnix) {
      ::unlink(endpoint_.path.c_str());
    }
  }
  if (wake_read_ >= 0) {
    ::close(wake_read_);
    wake_read_ = -1;
  }
  if (wake_write_ >= 0) {
    ::close(wake_write_);
    wake_write_ = -1;
  }
}

Result<Listener> Listener::Bind(const Endpoint& endpoint, int backlog) {
  Listener listener;
  listener.endpoint_ = endpoint;

  if (endpoint.kind == Endpoint::Kind::kUnix) {
    sockaddr_un address{};
    LDP_ASSIGN_OR_RETURN(address, UnixAddress(endpoint.path));
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return ErrnoStatus("socket(AF_UNIX)");
    listener.fd_ = fd;
    // The collector owns its socket file; a leftover from a crashed run
    // would otherwise make every restart fail with EADDRINUSE.
    ::unlink(endpoint.path.c_str());
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&address),
               sizeof(address)) != 0) {
      return ErrnoStatus("bind " + endpoint.ToString());
    }
  } else {
    addrinfo hints{};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    hints.ai_flags = AI_PASSIVE;
    addrinfo* found = nullptr;
    const std::string port_text = std::to_string(endpoint.port);
    const int resolved = ::getaddrinfo(
        endpoint.host.empty() ? nullptr : endpoint.host.c_str(),
        port_text.c_str(), &hints, &found);
    if (resolved != 0) {
      return Status::IoError("cannot resolve '" + endpoint.host +
                             "': " + gai_strerror(resolved));
    }
    Status last = Status::IoError("no addresses for " + endpoint.ToString());
    for (const addrinfo* info = found; info != nullptr; info = info->ai_next) {
      const int fd =
          ::socket(info->ai_family, info->ai_socktype, info->ai_protocol);
      if (fd < 0) {
        last = ErrnoStatus("socket");
        continue;
      }
      const int one = 1;
      ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
      if (::bind(fd, info->ai_addr, info->ai_addrlen) != 0) {
        last = ErrnoStatus("bind " + endpoint.ToString());
        ::close(fd);
        continue;
      }
      listener.fd_ = fd;
      break;
    }
    ::freeaddrinfo(found);
    if (listener.fd_ < 0) return last;
    // Read back the resolved ephemeral port so callers can advertise it.
    sockaddr_storage bound{};
    socklen_t bound_len = sizeof(bound);
    if (::getsockname(listener.fd_, reinterpret_cast<sockaddr*>(&bound),
                      &bound_len) == 0) {
      if (bound.ss_family == AF_INET) {
        listener.endpoint_.port =
            ntohs(reinterpret_cast<const sockaddr_in*>(&bound)->sin_port);
      } else if (bound.ss_family == AF_INET6) {
        listener.endpoint_.port =
            ntohs(reinterpret_cast<const sockaddr_in6*>(&bound)->sin6_port);
      }
    }
  }

  LDP_RETURN_IF_ERROR(SetCloseOnExec(listener.fd_));
  LDP_RETURN_IF_ERROR(SetNonBlocking(listener.fd_));
  if (::listen(listener.fd_, backlog) != 0) {
    return ErrnoStatus("listen on " + endpoint.ToString());
  }
  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) return ErrnoStatus("pipe");
  listener.wake_read_ = pipe_fds[0];
  listener.wake_write_ = pipe_fds[1];
  LDP_RETURN_IF_ERROR(SetCloseOnExec(listener.wake_read_));
  LDP_RETURN_IF_ERROR(SetCloseOnExec(listener.wake_write_));
  LDP_RETURN_IF_ERROR(SetNonBlocking(listener.wake_read_));
  LDP_RETURN_IF_ERROR(SetNonBlocking(listener.wake_write_));
  return listener;
}

Result<Socket> Listener::Accept() {
  while (true) {
    // Snapshot the fds: Close/Wake may race this loop, and poll on -1 fds
    // simply reports them invalid rather than crashing.
    pollfd fds[2];
    fds[0].fd = fd_;
    fds[0].events = POLLIN;
    fds[1].fd = wake_read_;
    fds[1].events = POLLIN;
    const int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("poll");
    }
    // A wake byte or a dead listener ends the wait; the wake is sticky (the
    // byte is never drained) so every current and future Accept returns.
    if (fds[1].revents != 0 || (fds[0].revents & (POLLERR | POLLNVAL)) != 0 ||
        fd_ < 0) {
      return Socket();
    }
    if ((fds[0].revents & (POLLIN | POLLHUP)) == 0) continue;
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd < 0) {
      // Another acceptor won the race, or the connection vanished.
      if (errno == EINTR || IsTimeout(errno) || errno == ECONNABORTED) {
        continue;
      }
      // accept(2) lists a family of momentary failures (fd exhaustion,
      // memory/network pressure, the peer's half of the handshake dying);
      // killing the accept loop over one of those would leave the server
      // alive but permanently deaf. Back off briefly and keep serving.
      if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS ||
          errno == ENOMEM || errno == EPROTO || errno == ENETDOWN ||
          errno == ENETUNREACH || errno == EHOSTDOWN ||
          errno == EHOSTUNREACH || errno == ETIMEDOUT) {
        ::poll(nullptr, 0, 50);
        continue;
      }
      return ErrnoStatus("accept");
    }
    Socket socket(fd);
    // A failure to set FD_CLOEXEC poisons only this one descriptor — drop
    // the connection and keep accepting, instead of surfacing an error that
    // callers would read as "the listener died".
    if (!SetCloseOnExec(fd).ok()) continue;
    DisableSigpipe(fd);
    if (endpoint_.kind == Endpoint::Kind::kTcp) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    }
    return socket;
  }
}

Result<Socket> Listener::TryAccept() {
  while (true) {
    if (fd_ < 0) return Status::FailedPrecondition("listener is closed");
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // Nothing pending right now — the readiness loop will call back.
      if (IsTimeout(errno) || errno == ECONNABORTED) return Socket();
      // Momentary pressure (fd exhaustion, memory, the peer's handshake
      // dying): report "nothing accepted" and let the loop retry later
      // instead of treating the listener as dead.
      if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS ||
          errno == ENOMEM || errno == EPROTO || errno == ENETDOWN ||
          errno == ENETUNREACH || errno == EHOSTDOWN ||
          errno == EHOSTUNREACH || errno == ETIMEDOUT) {
        return Socket();
      }
      return ErrnoStatus("accept");
    }
    Socket socket(fd);
    if (!SetCloseOnExec(fd).ok()) continue;  // drop this one fd, keep going
    DisableSigpipe(fd);
    if (endpoint_.kind == Endpoint::Kind::kTcp) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    }
    return socket;
  }
}

void Listener::Wake() {
  if (wake_write_ >= 0) {
    const char byte = 'w';
    // Best effort: a full pipe already guarantees the poll wakes.
    (void)::write(wake_write_, &byte, 1);
  }
}

}  // namespace ldp::net
