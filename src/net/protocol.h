// The collector's connection protocol: a tiny length-prefixed control
// channel multiplexed with raw report-stream bytes, many logical shards
// per connection.
//
// Every message on the wire is
//
//   u8 type, u32 payload_length (little-endian), payload
//
// and a conversation is:
//
//   client                              server
//   ------                              ------
//   HELLO {version, channel, flags,  -> validate header, open shard
//          ordinal, header}          <- HELLO_OK {channel, shard, epoch}
//                                       | ERROR
//   DATA {channel, raw frame bytes}  (any chunking; fed straight into
//                            ServerSession::Feed — the report-stream
//                            framing below is untouched)      [repeated]
//                                    <- DATA_ACK {channel -> bytes}*
//                                       (batched; only if the HELLO set
//                                        kHelloFlagDataAcks)
//   CLOSE_SHARD {channel}            -> drain, merge in ordinal order
//                                    <- SHARD_CLOSED {channel, status,
//                                                     stats}
//   ... another HELLO (a new channel/shard), or ADVANCE_EPOCH, or EOF.
//
// A `channel` is the client-chosen id multiplexing several concurrently
// open shards over one connection; ids are free for reuse once their
// SHARD_CLOSED arrives. Because merges wait for the ordinal barrier, a
// SHARD_CLOSED may arrive *after* replies to later requests on the same
// connection — clients must match replies by channel, not by order.
//
// The HELLO payload carries the exact report-stream header
// (stream/report_stream.h) the subsequent DATA bytes would have started
// with on disk, so the server rejects a mismatched client (schema hash, ε,
// kinds) before a single report is decoded, and the ingester still consumes
// a byte-identical stream. `ordinal` is the client's shard index in its
// campaign: the server merges closed shards in ascending ordinal order,
// which is what makes a networked run bit-identical to the file-based
// `ldp_aggregate shard-0 shard-1 ...` run no matter which connection
// finishes first.
//
// This header is transport-agnostic (pure encode/decode over strings) so
// the framing is unit-testable without sockets.

#ifndef LDP_NET_PROTOCOL_H_
#define LDP_NET_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "stream/shard_ingester.h"
#include "util/result.h"
#include "util/status.h"

namespace ldp::net {

/// Current protocol version. v3 added the authenticated HELLO: a reporter
/// id plus an HMAC-SHA256 tag binding the id to the campaign key, stream
/// header, channel, and epoch.
inline constexpr uint16_t kProtocolVersion = 3;

/// The pre-identity version. Keyless servers still accept it (and
/// unauthenticated clients still emit it) so a v2 fleet keeps working
/// unchanged; keyed servers refuse it.
inline constexpr uint16_t kLegacyProtocolVersion = 2;

/// Upper bound on a reporter id carried in a v3 HELLO. Ids are opaque
/// client-chosen bytes; the bound keeps a hostile HELLO from smuggling a
/// huge allocation through the id length field.
inline constexpr size_t kMaxReporterIdBytes = 128;

/// Size of the raw HMAC-SHA256 tag in a v3 HELLO.
inline constexpr size_t kHelloAuthTagBytes = 32;

/// HELLO flag bit: the client wants batched DATA_ACK messages (cumulative
/// per-channel byte watermarks) so it can bound its in-flight window.
inline constexpr uint32_t kHelloFlagDataAcks = 1u << 0;

/// Every DATA payload starts with the u32 channel id of the shard the
/// frame bytes belong to.
inline constexpr size_t kDataChannelPrefixBytes = 4;

/// The server batches DATA_ACK watermarks until this many unacked bytes
/// have accumulated across an opted-in connection's channels (a close or
/// poison flushes early). Clients sizing a send window must leave at least
/// this much headroom or the window can deadlock waiting for an ack the
/// server is still batching.
inline constexpr uint64_t kDataAckFlushBytes = 256u << 10;

/// u8 type + u32 payload length.
inline constexpr size_t kMessageHeaderBytes = 5;

/// Upper bound on one message payload. DATA chunking keeps payloads small;
/// anything above this is a framing attack (e.g. a hostile length prefix
/// trying to make the server buffer 4 GiB) and poisons the connection.
inline constexpr uint32_t kMaxMessagePayload = 4u << 20;

enum class MessageType : uint8_t {
  // client -> server
  kHello = 0x01,
  kData = 0x02,
  kCloseShard = 0x03,
  kAdvanceEpoch = 0x04,
  kSnapshot = 0x05,
  // server -> client
  kHelloOk = 0x10,
  kShardClosed = 0x11,
  kEpochAdvanced = 0x12,
  kError = 0x13,
  kSnapshotOk = 0x14,
  kDataAck = 0x15,
};

/// True for the message types defined above.
bool IsKnownMessageType(uint8_t type);

/// The fixed message prefix.
struct MessageHeader {
  MessageType type = MessageType::kError;
  uint32_t payload_length = 0;
};

/// Serialises one message (header + payload) onto `out`. Fails on payloads
/// above kMaxMessagePayload.
Status AppendMessage(MessageType type, const std::string& payload,
                     std::string* out);

/// Parses and validates a message prefix: known type, length within bound.
/// Requires exactly kMessageHeaderBytes.
Result<MessageHeader> DecodeMessageHeader(const char* data, size_t size);

// --- payloads --------------------------------------------------------------

/// HELLO: the client introduces one shard-to-be on a fresh channel.
///
/// Two wire layouts share the message type. An unauthenticated HELLO
/// (empty reporter_id and auth_tag) encodes the v2 layout, byte-identical
/// to the previous release. An authenticated HELLO encodes v3: the fixed
/// fields, then u16 id length, the id bytes, the raw 32-byte tag, then the
/// stream header. DecodeHello dispatches on the leading version and fills
/// `version` with what was actually on the wire.
struct HelloMessage {
  uint16_t version = kProtocolVersion;
  /// Client-chosen id multiplexing this shard over the connection; must not
  /// collide with a channel still open on the same connection. Single-shard
  /// clients use 0.
  uint32_t channel = 0;
  /// kHelloFlag* bits. Zero keeps the server reply-only (no DATA_ACKs).
  uint32_t flags = 0;
  /// The shard's merge position (see file comment). Clients streaming a
  /// single ad-hoc shard use 0.
  uint64_t ordinal = 0;
  /// v3 only: the authenticated reporter identity (1..kMaxReporterIdBytes
  /// opaque bytes) the server keys this shard's privacy ledger by.
  std::string reporter_id;
  /// v3 only: ComputeHelloTag(campaign key, ...) — raw kHelloAuthTagBytes.
  std::string auth_tag;
  /// The serialized stream::StreamHeader the shard's bytes start with.
  std::string header_bytes;
};

std::string EncodeHello(const HelloMessage& hello);
Result<HelloMessage> DecodeHello(const std::string& payload);

/// The v3 HELLO authentication tag: HMAC-SHA256 over a canonical encoding
/// of (reporter id, channel, epoch, stream header) under the campaign key.
/// Binding the channel and the server's current epoch means a captured tag
/// cannot be replayed onto another channel or into a later epoch; binding
/// the header means the tag vouches for the exact schema/ε the reporter
/// streams under.
std::string ComputeHelloTag(const std::string& campaign_key,
                            const std::string& reporter_id, uint32_t channel,
                            uint32_t epoch, const std::string& header_bytes);

/// HELLO_OK: the server accepted the shard.
struct HelloOkMessage {
  uint32_t channel = 0;  ///< Echo of the HELLO's channel id.
  uint64_t shard = 0;    ///< Server-side shard id (diagnostic).
  uint32_t epoch = 0;    ///< Epoch the shard will fold into.
  /// Resumable-shard handshake: post-header stream bytes of this ordinal
  /// already durable server-side (WAL replay after a crash). The reporter
  /// skips that many bytes instead of re-sending them; 0 for a fresh shard.
  uint64_t resume_offset = 0;
};

std::string EncodeHelloOk(const HelloOkMessage& ok);
Result<HelloOkMessage> DecodeHelloOk(const std::string& payload);

/// CLOSE_SHARD: the client is done streaming one channel's shard.
struct CloseShardMessage {
  uint32_t channel = 0;
};

std::string EncodeCloseShard(const CloseShardMessage& close);
Result<CloseShardMessage> DecodeCloseShard(const std::string& payload);

/// DATA_ACK: batched cumulative receipt watermarks, one entry per channel
/// with new progress since the last ack. `bytes` counts post-header stream
/// bytes the server has fed for that channel, so a client windowing its
/// sends can release (bytes - previously acked) from its in-flight budget.
struct DataAckMessage {
  struct Entry {
    uint32_t channel = 0;
    uint64_t bytes = 0;
  };
  std::vector<Entry> entries;
};

std::string EncodeDataAck(const DataAckMessage& ack);
Result<DataAckMessage> DecodeDataAck(const std::string& payload);

/// SNAPSHOT: a relay node ships its whole session snapshot upstream. The
/// snapshot is cumulative (every epoch, all reports so far), so a node may
/// re-send at any cadence: the upstream keeps only the highest `seq` per
/// node and folds the survivors in ascending node-id order at drain time —
/// retries and restarts are idempotent by construction.
struct SnapshotMessage {
  uint16_t version = kProtocolVersion;
  uint64_t node = 0;   ///< The sender's node id (its merge position).
  uint64_t seq = 0;    ///< Monotone per node; highest wins upstream.
  uint32_t epoch = 0;  ///< Sender's current epoch at snapshot time.
  /// api::ServerSession::Snapshot() bytes ('LDPE'), length-prefixed on the
  /// wire so trailing garbage is detected.
  std::string snapshot_bytes;
};

std::string EncodeSnapshot(const SnapshotMessage& snapshot);
Result<SnapshotMessage> DecodeSnapshot(const std::string& payload);

/// SNAPSHOT_OK: the upstream durably holds (node, seq).
struct SnapshotOkMessage {
  uint64_t node = 0;
  uint64_t seq = 0;
};

std::string EncodeSnapshotOk(const SnapshotOkMessage& ok);
Result<SnapshotOkMessage> DecodeSnapshotOk(const std::string& payload);

/// SHARD_CLOSED: final verdict and exact ingest statistics for one shard.
struct ShardClosedMessage {
  uint32_t channel = 0;  ///< The channel the CLOSE_SHARD named.
  /// StatusCode of the close (kOk, or why the shard was discarded).
  uint8_t code = 0;
  stream::ShardIngester::Stats stats;
  std::string message;  ///< Error detail when code != 0.
};

std::string EncodeShardClosed(const ShardClosedMessage& closed);
Result<ShardClosedMessage> DecodeShardClosed(const std::string& payload);

/// EPOCH_ADVANCED: outcome of an ADVANCE_EPOCH request.
struct EpochAdvancedMessage {
  uint8_t code = 0;       ///< StatusCode of the AdvanceEpoch call.
  uint32_t epoch = 0;     ///< The session's current epoch after the call.
  std::string message;    ///< Error detail when code != 0.
};

std::string EncodeEpochAdvanced(const EpochAdvancedMessage& advanced);
Result<EpochAdvancedMessage> DecodeEpochAdvanced(const std::string& payload);

/// ERROR: the server refuses the connection or poisons the shard.
struct ErrorMessage {
  uint8_t code = 0;  ///< StatusCode (never kOk).
  std::string message;
};

std::string EncodeError(const Status& status);
Result<ErrorMessage> DecodeErrorMessage(const std::string& payload);

/// Rebuilds a Status from a wire code + message (unknown codes collapse to
/// kInternal rather than trusting the peer).
Status StatusFromWire(uint8_t code, const std::string& message);

}  // namespace ldp::net

#endif  // LDP_NET_PROTOCOL_H_
