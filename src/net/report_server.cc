#include "net/report_server.h"

#include <sys/socket.h>

#include <utility>

#include "obs/journal.h"

namespace ldp::net {

namespace {

// The conversation state of one connection's shard, if any.
struct OpenShard {
  bool open = false;
  size_t shard = 0;
  uint64_t ordinal = 0;
};

// Refuses a relay snapshot whose preamble disagrees with this campaign's
// protocol — the same gate HELLO applies to stream headers, before any
// epoch state is decoded. Structural validation happens at fold time,
// where the session stages the whole snapshot before committing.
Status CheckSnapshotCompatible(const stream::StreamHeader& expected,
                               const std::string& bytes) {
  Result<api::SessionSnapshotConfig> config =
      api::DecodeSessionSnapshotConfig(bytes);
  if (!config.ok()) return config.status();
  if (config.value().kind != expected.kind) {
    return Status::FailedPrecondition("relay snapshot stream kind mismatch");
  }
  if (config.value().mechanism != expected.mechanism) {
    return Status::FailedPrecondition("relay snapshot mechanism mismatch");
  }
  if (config.value().oracle != expected.oracle) {
    return Status::FailedPrecondition("relay snapshot oracle mismatch");
  }
  if (config.value().schema_hash != expected.schema_hash) {
    return Status::FailedPrecondition("relay snapshot schema hash mismatch");
  }
  if (config.value().epsilon != expected.epsilon) {
    return Status::FailedPrecondition("relay snapshot epsilon mismatch");
  }
  return Status::OK();
}

}  // namespace

ReportServer::ReportServer(api::ServerSession* session,
                           stream::StreamHeader expected,
                           ReportServerOptions options)
    : session_(session),
      expected_(expected),
      options_(options),
      metrics_(obs::NetServerMetrics::ForRegistry(options.metrics)) {}

Result<std::unique_ptr<ReportServer>> ReportServer::Start(
    api::ServerSession* session, const stream::StreamHeader& expected,
    const Endpoint& endpoint, ReportServerOptions options) {
  if (session == nullptr) {
    return Status::InvalidArgument("report server needs a session");
  }
  options.acceptors = options.acceptors == 0 ? 1 : options.acceptors;
  // Can't use make_unique: the constructor is private.
  std::unique_ptr<ReportServer> server(
      new ReportServer(session, expected, options));
  Result<Listener> listener = Listener::Bind(endpoint);
  if (!listener.ok()) return listener.status();
  server->listener_ = std::move(listener).value();
  // Seed the barrier and resume state from a WAL replay before any acceptor
  // exists (no lock needed yet): ordinals the replay already merged start
  // done, so the frontier opens past them and a re-HELLO is refused.
  server->resume_shards_ = options.resume_shards;
  for (uint64_t ordinal : options.completed_ordinals) {
    server->done_ordinals_.insert(ordinal);
  }
  if (options.expected_shards > 0) {
    while (server->merge_frontier_ < options.expected_shards &&
           server->done_ordinals_.count(server->merge_frontier_) != 0) {
      ++server->merge_frontier_;
    }
  }
  server->acceptors_.reserve(options.acceptors);
  for (unsigned i = 0; i < options.acceptors; ++i) {
    server->acceptors_.emplace_back([raw = server.get()] {
      raw->AcceptLoop();
    });
  }
  if (options.journal != nullptr) {
    options.journal->Record(obs::EventKind::kServerStart);
  }
  return server;
}

ReportServer::~ReportServer() { Stop(/*drain=*/false); }

void ReportServer::Stop(bool drain) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (stop_accepting_) {
      // Another thread is already stopping (or has stopped): joining the
      // same std::threads twice is UB, so wait for that stop to finish.
      stopped_cv_.wait(lock, [&] { return stopped_; });
      return;
    }
    stop_accepting_ = true;
    if (!drain) {
      hard_stop_ = true;
      // Kick every blocked read/write and every merge-turn waiter; the
      // handlers abandon their shards and unwind.
      for (const auto& [fd, busy] : live_fds_) ::shutdown(fd, SHUT_RDWR);
      merge_turn_.notify_all();
    } else {
      // A drain waits only for shards in flight: connections idling
      // between shards are woken so they notice the stop immediately
      // instead of sitting out the idle timeout.
      for (const auto& [fd, busy] : live_fds_) {
        if (!busy) ::shutdown(fd, SHUT_RDWR);
      }
    }
  }
  listener_.Wake();
  for (std::thread& acceptor : acceptors_) {
    if (acceptor.joinable()) acceptor.join();
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopped_ = true;
    stopped_cv_.notify_all();
  }
  if (options_.journal != nullptr) {
    options_.journal->Record(obs::EventKind::kServerStop);
  }
}

ReportServerStats ReportServer::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

Status ReportServer::FoldRelaySnapshots() {
  std::map<uint64_t, PendingSnapshot> pending;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    pending.swap(relay_snapshots_);
  }
  Status first_error = Status::OK();
  for (const auto& [node, snap] : pending) {  // std::map: ascending node id
    const Status merged = session_->Merge(snap.bytes);
    if (merged.ok()) {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.nodes_folded;
    } else if (first_error.ok()) {
      first_error = merged;
    }
    if (options_.journal != nullptr) {
      options_.journal->Record(obs::EventKind::kRelayFold, node,
                               merged.ok() ? 0 : 1);
    }
  }
  return first_error;
}

void ReportServer::AcceptLoop() {
  while (true) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stop_accepting_) return;
    }
    Result<Socket> accepted = listener_.Accept();
    if (!accepted.ok()) return;  // listener died; nothing left to serve
    if (!accepted.value().valid()) continue;  // woken — re-check stop flag
    Socket socket = std::move(accepted).value();
    if (options_.idle_timeout_ms > 0) {
      if (!socket.SetIdleTimeout(options_.idle_timeout_ms).ok()) continue;
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (hard_stop_) return;
      ++stats_.connections;
      live_fds_.emplace(socket.fd(), false);
    }
    if (metrics_.enabled()) metrics_.connections->Increment();
    HandleConnection(std::move(socket));
  }
}

void ReportServer::SendReply(Socket* socket, MessageType type,
                             const std::string& payload) {
  std::string wire;
  if (AppendMessage(type, payload, &wire).ok()) {
    (void)socket->SendAll(wire);
  }
}

Status ReportServer::RegisterOrdinal(uint64_t ordinal) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (options_.expected_shards > 0) {
    if (ordinal >= options_.expected_shards) {
      return Status::OutOfRange(
          "shard ordinal exceeds the campaign's expected shard count");
    }
    if (done_ordinals_.count(ordinal) != 0) {
      return Status::AlreadyExists(
          "shard ordinal already completed this epoch");
    }
  }
  if (!active_ordinals_.insert(ordinal).second) {
    return Status::AlreadyExists("shard ordinal is already streaming");
  }
  return Status::OK();
}

Status ReportServer::WaitTurnAndClose(uint64_t ordinal, size_t shard) {
  if (options_.journal != nullptr) {
    options_.journal->Record(obs::EventKind::kMergeEnter, ordinal);
  }
  const uint64_t wait_started_ns =
      metrics_.enabled() ? obs::SteadyNowNs() : 0;
  std::unique_lock<std::mutex> lock(mutex_);
  auto my_turn = [&] {
    if (hard_stop_) return true;
    // Expected-shards mode: a strict barrier — ordinal k merges only once
    // every smaller ordinal finished, whether or not it has connected yet.
    // Ad hoc mode: ordered among the ordinals currently streaming.
    if (options_.expected_shards > 0) return merge_frontier_ == ordinal;
    return !active_ordinals_.empty() && *active_ordinals_.begin() == ordinal;
  };
  bool got_turn = true;
  if (options_.merge_turn_timeout_ms > 0) {
    got_turn = merge_turn_.wait_for(
        lock, std::chrono::milliseconds(options_.merge_turn_timeout_ms),
        my_turn);
  } else {
    merge_turn_.wait(lock, my_turn);
  }
  const bool stopping = hard_stop_;
  if (wait_started_ns != 0) {
    // The barrier wait alone — how long this ordinal stalled on its
    // predecessors — not the close/merge work that follows.
    metrics_.merge_barrier_wait_us->Observe(
        (obs::SteadyNowNs() - wait_started_ns) / 1000);
  }
  if (stopping || !got_turn) {
    lock.unlock();
    if (options_.wal != nullptr) options_.wal->OnShardAbandon(shard);
    (void)session_->AbandonShard(shard);
    FinishOrdinal(ordinal);
    if (options_.journal != nullptr) {
      options_.journal->Record(obs::EventKind::kMergeExit, ordinal, 1);
    }
    return stopping
               ? Status::FailedPrecondition("collector is shutting down")
               : Status::FailedPrecondition(
                     "timed out waiting for the merge turn (a smaller "
                     "ordinal never finished)");
  }
  // Holding the merge turn but not the server mutex: CloseShard may block
  // draining the shard's strand, and other connections must keep feeding
  // meanwhile.
  lock.unlock();
  // The close record carries the merge order: written while holding the
  // merge turn, so a replay closes shards in exactly this sequence.
  if (options_.wal != nullptr) options_.wal->OnShardClose(shard);
  const Status closed = session_->CloseShard(shard);
  FinishOrdinal(ordinal);
  if (options_.journal != nullptr) {
    options_.journal->Record(obs::EventKind::kMergeExit, ordinal,
                             closed.ok() ? 0 : 1);
  }
  return closed;
}

void ReportServer::FinishOrdinal(uint64_t ordinal) {
  std::lock_guard<std::mutex> lock(mutex_);
  active_ordinals_.erase(ordinal);
  if (options_.expected_shards > 0) {
    // An abandoned ordinal counts as finished too: the barrier must not
    // wedge the campaign on a reporter that died (its shard is simply
    // missing, exactly as a missing file would be).
    done_ordinals_.insert(ordinal);
    while (merge_frontier_ < options_.expected_shards &&
           done_ordinals_.count(merge_frontier_) != 0) {
      ++merge_frontier_;
    }
  }
  merge_turn_.notify_all();
}

void ReportServer::HandleConnection(Socket socket) {
  RunConnection(&socket);
  std::lock_guard<std::mutex> lock(mutex_);
  live_fds_.erase(socket.fd());
  // The socket closes when HandleConnection returns, after the
  // unregistration above — Stop(false) can never shut down a recycled fd.
}

void ReportServer::RunConnection(Socket* socket_ptr) {
  Socket& socket = *socket_ptr;
  OpenShard state;

  // Flips the connection's "has an open shard" flag, which is what a
  // drain-stop consults to decide whether to wait for this connection.
  auto set_busy = [&](bool busy) {
    std::lock_guard<std::mutex> lock(mutex_);
    live_fds_[socket.fd()] = busy;
  };

  // An aborted upload contributes nothing, even if it stopped on a frame
  // boundary: drop the shard and release its merge turn.
  auto abandon_open_shard = [&] {
    if (!state.open) return;
    if (options_.wal != nullptr) options_.wal->OnShardAbandon(state.shard);
    (void)session_->AbandonShard(state.shard);
    FinishOrdinal(state.ordinal);
    state.open = false;
    set_busy(false);
    if (metrics_.enabled()) metrics_.shards_abandoned->Increment();
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.shards_abandoned;
  };

  // Counts a recv failure that was the idle/deadline reaper firing — the
  // slow-loris defense actually engaging, a signal worth watching on a
  // deployed edge.
  auto note_reaped = [&](const Status& status) {
    if (!metrics_.enabled()) return;
    if (status.message().find("timed out") != std::string::npos ||
        status.message().find("deadline exceeded") != std::string::npos) {
      metrics_.slow_loris_reaped->Increment();
    }
  };

  auto count_protocol_error = [&] {
    if (metrics_.enabled()) metrics_.protocol_errors->Increment();
  };

  std::string payload;
  char prefix[kMessageHeaderBytes];
  Status verdict = Status::OK();
  // Each message (prefix and payload alike) must complete within the idle
  // timeout as a whole: a per-recv timeout alone resets on every dripped
  // byte, which is exactly the slow-loris game.
  const int deadline_ms = options_.idle_timeout_ms;
  while (true) {
    Result<bool> got = socket.RecvAll(prefix, sizeof(prefix), deadline_ms);
    if (!got.ok() || !got.value()) {
      // EOF on a message boundary with no open shard is the clean goodbye;
      // anything else (mid-stream EOF, timeout, reset) abandons the shard.
      const bool had_shard = state.open;
      abandon_open_shard();
      if (!got.ok()) note_reaped(got.status());
      if (!had_shard && !got.ok()) {
        std::lock_guard<std::mutex> lock(mutex_);
        // A drain-stop wakes idle connections by shutting their sockets
        // down; that read failure is bookkeeping, not a protocol error.
        if (!stop_accepting_) {
          ++stats_.protocol_errors;
          count_protocol_error();
        }
      }
      break;
    }
    Result<MessageHeader> header =
        DecodeMessageHeader(prefix, sizeof(prefix));
    if (!header.ok()) {
      // Unknown type or a hostile length prefix: the message boundaries
      // can no longer be trusted — kill the connection.
      SendReply(&socket, MessageType::kError, EncodeError(header.status()));
      abandon_open_shard();
      count_protocol_error();
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.protocol_errors;
      break;
    }
    // The DATA service-time clock starts before the payload recv: the
    // histogram covers wire read + session Feed, the interval ROADMAP
    // item 1's accept-latency work wants to shrink.
    const uint64_t data_started_ns =
        metrics_.enabled() && header.value().type == MessageType::kData
            ? obs::SteadyNowNs()
            : 0;
    payload.resize(header.value().payload_length);
    if (header.value().payload_length > 0) {
      Result<bool> body =
          socket.RecvAll(payload.data(), payload.size(), deadline_ms);
      if (!body.ok() || !body.value()) {
        abandon_open_shard();
        if (!body.ok()) note_reaped(body.status());
        count_protocol_error();
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.protocol_errors;
        break;
      }
    }

    switch (header.value().type) {
      case MessageType::kHello: {
        if (state.open) {
          verdict = Status::FailedPrecondition(
              "HELLO while this connection's shard is open");
          break;
        }
        Result<HelloMessage> hello = DecodeHello(payload);
        if (!hello.ok()) {
          verdict = hello.status();
          break;
        }
        Result<stream::StreamHeader> peer =
            stream::DecodeStreamHeader(hello.value().header_bytes);
        Status refusal =
            peer.ok() ? stream::CheckHeadersCompatible(expected_, peer.value())
                      : peer.status();
        if (refusal.ok()) refusal = RegisterOrdinal(hello.value().ordinal);
        if (!refusal.ok()) {
          {
            std::lock_guard<std::mutex> lock(mutex_);
            ++stats_.hello_rejected;
          }
          if (metrics_.enabled()) metrics_.hello_refused->Increment();
          if (options_.journal != nullptr) {
            options_.journal->Record(obs::EventKind::kHelloRefuse,
                                     hello.value().ordinal);
          }
          // Reply outside the server mutex: SendAll can block for the
          // whole idle timeout on a stalled peer.
          SendReply(&socket, MessageType::kError, EncodeError(refusal));
          return;
        }
        if (metrics_.enabled()) metrics_.hello_accepted->Increment();
        if (options_.journal != nullptr) {
          options_.journal->Record(obs::EventKind::kHelloAccept,
                                   hello.value().ordinal);
        }
        // A WAL replay may have left this ordinal's shard open at the
        // crash: re-attach to it instead of opening anew, and tell the
        // reporter how many post-header bytes are already durable.
        ResumedShard resumed;
        bool is_resume = false;
        {
          std::lock_guard<std::mutex> lock(mutex_);
          auto it = resume_shards_.find(hello.value().ordinal);
          if (it != resume_shards_.end()) {
            resumed = it->second;
            is_resume = true;
            resume_shards_.erase(it);
          }
        }
        if (is_resume) {
          state.shard = resumed.shard;
          state.ordinal = hello.value().ordinal;
          state.open = true;
          set_busy(true);
          // The replayed shard already holds the header (and the durable
          // frame bytes); nothing to feed, nothing new for the WAL.
          HelloOkMessage ok;
          ok.shard = state.shard;
          ok.epoch = session_->current_epoch();
          ok.resume_offset = resumed.durable_bytes;
          SendReply(&socket, MessageType::kHelloOk, EncodeHelloOk(ok));
          break;
        }
        state.shard = session_->OpenShard();
        state.ordinal = hello.value().ordinal;
        state.open = true;
        set_busy(true);
        if (options_.wal != nullptr) {
          options_.wal->OnShardOpen(state.shard, state.ordinal,
                                    session_->current_epoch(),
                                    hello.value().header_bytes);
        }
        // The shard's byte stream is header + frames, exactly as on disk;
        // the validated HELLO header bytes are that header.
        const Status fed =
            session_->Feed(state.shard, hello.value().header_bytes);
        if (!fed.ok()) {
          verdict = fed;
          break;
        }
        HelloOkMessage ok;
        ok.shard = state.shard;
        ok.epoch = session_->current_epoch();
        SendReply(&socket, MessageType::kHelloOk, EncodeHelloOk(ok));
        break;
      }
      case MessageType::kData: {
        if (!state.open) {
          verdict = Status::FailedPrecondition("DATA before HELLO");
          break;
        }
        // Durability before visibility: the frame bytes hit the WAL before
        // the session, so nothing the reporter gets acked can be lost.
        if (options_.wal != nullptr && !payload.empty()) {
          options_.wal->OnShardData(state.shard, payload.data(),
                                    payload.size());
        }
        verdict = session_->Feed(state.shard, payload.data(), payload.size());
        if (data_started_ns != 0) {
          metrics_.data_messages->Increment();
          metrics_.data_read_us->Observe(
              (obs::SteadyNowNs() - data_started_ns) / 1000);
        }
        break;
      }
      case MessageType::kCloseShard: {
        if (!state.open) {
          verdict = Status::FailedPrecondition("CLOSE_SHARD before HELLO");
          break;
        }
        const Status closed = WaitTurnAndClose(state.ordinal, state.shard);
        ShardClosedMessage reply;
        reply.code = static_cast<uint8_t>(closed.code());
        reply.message = closed.message();
        Result<stream::ShardIngester::Stats> stats =
            session_->ShardStats(state.shard);
        if (stats.ok()) reply.stats = stats.value();
        state.open = false;
        set_busy(false);
        {
          std::lock_guard<std::mutex> lock(mutex_);
          if (closed.ok()) {
            ++stats_.shards_merged;
          } else {
            ++stats_.shards_discarded;
          }
        }
        if (metrics_.enabled()) {
          (closed.ok() ? metrics_.shards_merged : metrics_.shards_discarded)
              ->Increment();
        }
        SendReply(&socket, MessageType::kShardClosed,
                  EncodeShardClosed(reply));
        break;
      }
      case MessageType::kAdvanceEpoch: {
        // The session refuses while any shard (this connection's included)
        // is open, so no extra gating is needed here.
        const Status advanced = session_->AdvanceEpoch();
        if (advanced.ok()) {
          // A new epoch restarts the campaign: ordinals 0..N-1 stream
          // again, so the expected-shards barrier resets — and a new epoch
          // has no pre-crash shards, so unclaimed resume entries expire.
          std::lock_guard<std::mutex> lock(mutex_);
          done_ordinals_.clear();
          merge_frontier_ = 0;
          resume_shards_.clear();
        }
        EpochAdvancedMessage reply;
        reply.code = static_cast<uint8_t>(advanced.code());
        reply.epoch = session_->current_epoch();
        reply.message = advanced.message();
        SendReply(&socket, MessageType::kEpochAdvanced,
                  EncodeEpochAdvanced(reply));
        break;
      }
      case MessageType::kSnapshot: {
        if (state.open) {
          verdict = Status::FailedPrecondition(
              "SNAPSHOT while this connection's shard is open");
          break;
        }
        Result<SnapshotMessage> snap = DecodeSnapshot(payload);
        Status refusal = Status::OK();
        if (!snap.ok()) {
          refusal = snap.status();
        } else if (!options_.accept_snapshots) {
          refusal = Status::FailedPrecondition(
              "this collector does not accept relay snapshots");
        } else {
          refusal =
              CheckSnapshotCompatible(expected_, snap.value().snapshot_bytes);
        }
        if (!refusal.ok()) {
          {
            std::lock_guard<std::mutex> lock(mutex_);
            ++stats_.snapshots_refused;
          }
          if (metrics_.enabled()) metrics_.snapshots_refused->Increment();
          if (options_.journal != nullptr) {
            options_.journal->Record(obs::EventKind::kSnapshotRefuse,
                                     snap.ok() ? snap.value().node : 0);
          }
          SendReply(&socket, MessageType::kError, EncodeError(refusal));
          return;
        }
        const uint64_t node = snap.value().node;
        const uint64_t seq = snap.value().seq;
        {
          std::lock_guard<std::mutex> lock(mutex_);
          PendingSnapshot& entry = relay_snapshots_[node];
          // Highest seq wins; an equal or older retry is acknowledged
          // without replacing — the snapshot is cumulative, so the ack is
          // safe either way and retries stay idempotent.
          if (entry.bytes.empty() || seq >= entry.seq) {
            entry.seq = seq;
            entry.epoch = snap.value().epoch;
            entry.bytes = std::move(snap.value().snapshot_bytes);
          }
          ++stats_.snapshots_accepted;
        }
        if (metrics_.enabled()) metrics_.snapshots_accepted->Increment();
        if (options_.journal != nullptr) {
          options_.journal->Record(obs::EventKind::kSnapshotAccept, node, seq);
        }
        SnapshotOkMessage ok;
        ok.node = node;
        ok.seq = seq;
        SendReply(&socket, MessageType::kSnapshotOk, EncodeSnapshotOk(ok));
        break;
      }
      default:
        // Server-only types arriving from a client.
        verdict = Status::InvalidArgument("unexpected message type");
        break;
    }

    if (!verdict.ok()) {
      SendReply(&socket, MessageType::kError, EncodeError(verdict));
      const bool had_shard = state.open;
      abandon_open_shard();
      if (!had_shard) {
        count_protocol_error();
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.protocol_errors;
      }
      break;
    }
    {
      // Between shards is a drain point: once the server is stopping, a
      // connection waiting for its next HELLO has nothing left to say.
      std::lock_guard<std::mutex> lock(mutex_);
      if (stop_accepting_ && !state.open) break;
    }
  }
}

}  // namespace ldp::net
