#include "net/report_server.h"

#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "obs/journal.h"
#include "util/hmac.h"

namespace ldp::net {

namespace {

// How many complete messages one readable event may dispatch before the
// loop moves on to other connections. Level-triggered polling re-fires for
// whatever is left, so this is fairness, not correctness.
constexpr int kDispatchBudget = 64;

// Once this much of the outbuf's front has been sent, the dead prefix is
// compacted away instead of waiting for a full drain.
constexpr size_t kOutbufCompactBytes = 64u << 10;

// Bound on a close-after-flush goodbye when idle_timeout_ms == 0: the
// farewell (ERROR or final SHARD_CLOSED) must drain within this long or
// the connection is torn down anyway — otherwise a peer that never reads
// would pin the loop alive and Stop(drain) could hang forever.
constexpr int kCloseFlushGraceMs = 30000;

Status ErrnoStatus(const std::string& what) {
  return Status::IoError(what + ": " + std::strerror(errno));
}

Status MakePipeNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
    return ErrnoStatus("fcntl(O_NONBLOCK)");
  }
  const int fd_flags = ::fcntl(fd, F_GETFD, 0);
  if (fd_flags < 0 || ::fcntl(fd, F_SETFD, fd_flags | FD_CLOEXEC) != 0) {
    return ErrnoStatus("fcntl(FD_CLOEXEC)");
  }
  return Status::OK();
}

uint32_t DecodeDataChannel(const std::string& payload) {
  const auto* p = reinterpret_cast<const unsigned char*>(payload.data());
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

// Refuses a relay snapshot whose preamble disagrees with this campaign's
// protocol — the same gate HELLO applies to stream headers, before any
// epoch state is decoded. Structural validation happens at fold time,
// where the session stages the whole snapshot before committing.
Status CheckSnapshotCompatible(const stream::StreamHeader& expected,
                               const std::string& bytes) {
  Result<api::SessionSnapshotConfig> config =
      api::DecodeSessionSnapshotConfig(bytes);
  if (!config.ok()) return config.status();
  if (config.value().kind != expected.kind) {
    return Status::FailedPrecondition("relay snapshot stream kind mismatch");
  }
  if (config.value().mechanism != expected.mechanism) {
    return Status::FailedPrecondition("relay snapshot mechanism mismatch");
  }
  if (config.value().oracle != expected.oracle) {
    return Status::FailedPrecondition("relay snapshot oracle mismatch");
  }
  if (config.value().schema_hash != expected.schema_hash) {
    return Status::FailedPrecondition("relay snapshot schema hash mismatch");
  }
  if (config.value().epsilon != expected.epsilon) {
    return Status::FailedPrecondition("relay snapshot epsilon mismatch");
  }
  return Status::OK();
}

}  // namespace

ReportServer::ReportServer(api::ServerSession* session,
                           stream::StreamHeader expected,
                           ReportServerOptions options)
    : session_(session),
      expected_(expected),
      options_(options),
      metrics_(obs::NetServerMetrics::ForRegistry(options.metrics)) {}

Result<std::unique_ptr<ReportServer>> ReportServer::Start(
    api::ServerSession* session, const stream::StreamHeader& expected,
    const Endpoint& endpoint, ReportServerOptions options) {
  if (session == nullptr) {
    return Status::InvalidArgument("report server needs a session");
  }
  options.acceptors = options.acceptors == 0 ? 1 : options.acceptors;
  // Can't use make_unique: the constructor is private.
  std::unique_ptr<ReportServer> server(
      new ReportServer(session, expected, options));
  Result<Listener> listener = Listener::Bind(endpoint);
  if (!listener.ok()) return listener.status();
  server->listener_ = std::move(listener).value();
  // Seed the barrier and resume state from a WAL replay before any loop
  // exists (no lock needed yet): ordinals the replay already merged start
  // done, so the frontier opens past them and a re-HELLO is refused.
  server->resume_shards_ = options.resume_shards;
  for (uint64_t ordinal : options.completed_ordinals) {
    server->done_ordinals_.insert(ordinal);
  }
  if (options.expected_shards > 0) {
    while (server->merge_frontier_ < options.expected_shards &&
           server->done_ordinals_.count(server->merge_frontier_) != 0) {
      ++server->merge_frontier_;
    }
  }
  server->loops_.reserve(options.acceptors);
  for (unsigned i = 0; i < options.acceptors; ++i) {
    server->loops_.push_back(std::make_unique<Loop>());
    Loop& loop = *server->loops_.back();
    Result<Poller> poller = Poller::Create(options.poller);
    if (!poller.ok()) return poller.status();
    loop.poller = std::move(poller).value();
    int fds[2];
    if (::pipe(fds) != 0) return ErrnoStatus("pipe");
    loop.wake_read = fds[0];
    loop.wake_write = fds[1];
    Status ready = MakePipeNonBlocking(loop.wake_read);
    if (ready.ok()) ready = MakePipeNonBlocking(loop.wake_write);
    if (ready.ok()) ready = loop.poller.Add(loop.wake_read, true, false);
    if (!ready.ok()) return ready;  // ~ReportServer closes the pipe fds
  }
  for (unsigned i = 0; i < options.acceptors; ++i) {
    server->loops_[i]->thread =
        std::thread([raw = server.get(), i] { raw->LoopMain(i); });
  }
  server->scheduler_ = std::thread([raw = server.get()] {
    raw->SchedulerMain();
  });
  if (options.journal != nullptr) {
    options.journal->Record(obs::EventKind::kServerStart);
  }
  return server;
}

ReportServer::~ReportServer() {
  Stop(/*drain=*/false);
  for (auto& loop : loops_) {
    if (loop->wake_read >= 0) ::close(loop->wake_read);
    if (loop->wake_write >= 0) ::close(loop->wake_write);
  }
}

void ReportServer::Stop(bool drain) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (stop_accepting_) {
      // Another thread is already stopping (or has stopped): joining the
      // same std::threads twice is UB, so wait for that stop to finish.
      stopped_cv_.wait(lock, [&] { return stopped_; });
      return;
    }
    stop_accepting_ = true;
    if (!drain) {
      hard_stop_ = true;
      // Kick every connection out of the kernel: reads return EOF, sends
      // fail, and the loops tear everything down and abandon open shards.
      for (const auto& [fd, conn] : conns_) ::shutdown(fd, SHUT_RDWR);
      merge_cv_.notify_all();
    } else {
      // A drain waits only for shards in flight: connections idling
      // between shards are woken so they notice the stop immediately
      // instead of sitting out the idle timeout.
      for (const auto& [fd, conn] : conns_) {
        bool busy;
        {
          std::lock_guard<std::mutex> conn_lock(conn->mutex);
          busy = !conn->channels.empty();
        }
        if (!busy) ::shutdown(fd, SHUT_RDWR);
      }
    }
  }
  for (size_t i = 0; i < loops_.size(); ++i) WakeLoop(i);
  for (auto& loop : loops_) {
    if (loop->thread.joinable()) loop->thread.join();
  }
  // The loops are gone, so no new close can be enqueued: tell the
  // scheduler to abandon whatever is left and exit.
  {
    std::lock_guard<std::mutex> lock(mutex_);
    scheduler_exit_ = true;
    merge_cv_.notify_all();
  }
  if (scheduler_.joinable()) scheduler_.join();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopped_ = true;
    stopped_cv_.notify_all();
  }
  if (options_.journal != nullptr) {
    options_.journal->Record(obs::EventKind::kServerStop);
  }
}

ReportServerStats ReportServer::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

Status ReportServer::FoldRelaySnapshots() {
  std::map<uint64_t, PendingSnapshot> pending;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    pending.swap(relay_snapshots_);
  }
  Status first_error = Status::OK();
  for (const auto& [node, snap] : pending) {  // std::map: ascending node id
    const Status merged = session_->Merge(snap.bytes);
    if (merged.ok()) {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.nodes_folded;
    } else if (first_error.ok()) {
      first_error = merged;
    }
    if (options_.journal != nullptr) {
      options_.journal->Record(obs::EventKind::kRelayFold, node,
                               merged.ok() ? 0 : 1);
    }
  }
  return first_error;
}

// --- event loop ------------------------------------------------------------

void ReportServer::WakeLoop(size_t index) {
  Loop& loop = *loops_[index];
  {
    std::lock_guard<std::mutex> lock(loop.mutex);
    if (loop.woken) return;
    loop.woken = true;
  }
  const char byte = 1;
  // A full pipe means a wake is already pending; nothing to do.
  (void)!::write(loop.wake_write, &byte, 1);
}

void ReportServer::LoopMain(size_t index) {
  Loop& loop = *loops_[index];
  // Loop 0 doubles as the acceptor: the listener fd sits in its poll set
  // next to the connections it serves.
  bool listener_watched = false;
  if (index == 0 && loop.poller.Add(listener_.fd(), true, false).ok()) {
    listener_watched = true;
  }
  std::vector<PollerEvent> events;
  std::vector<std::shared_ptr<Conn>> adopts;
  std::vector<std::shared_ptr<Conn>> flushes;
  while (true) {
    {
      std::lock_guard<std::mutex> lock(loop.mutex);
      adopts.swap(loop.adopt_inbox);
      flushes.swap(loop.flush_inbox);
      loop.woken = false;
    }
    for (const auto& conn : adopts) AdoptConn(loop, conn);
    adopts.clear();
    for (const auto& conn : flushes) {
      // A scheduler reply just landed (merge verdict or drain goodbye):
      // re-arm so a deadline that expired during the barrier wait cannot
      // reap the connection before the reply flushes, and so a drain
      // goodbye gets its bounded grace even with the idle timer off.
      ArmDeadline(conn);
      FlushConn(loop, conn);
    }
    flushes.clear();

    bool stopping;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stopping = stop_accepting_;
    }
    if (stopping && listener_watched) {
      (void)loop.poller.Remove(listener_.fd());
      listener_watched = false;
    }
    if (stopping && loop.conns.empty()) {
      std::lock_guard<std::mutex> lock(loop.mutex);
      if (loop.adopt_inbox.empty() && loop.flush_inbox.empty()) return;
      continue;  // late arrivals: adopt them so they can be torn down
    }

    // Sleep until the nearest connection deadline (the slow-loris budget
    // or a goodbye-flush grace), a readiness event, or a wake.
    int timeout_ms = -1;
    if (!loop.conns.empty()) {
      SteadyTime nearest = SteadyTime::max();
      for (const auto& [fd, conn] : loop.conns) {
        nearest = std::min(nearest, conn->deadline);
      }
      if (nearest != SteadyTime::max()) {
        const auto now = std::chrono::steady_clock::now();
        if (nearest <= now) {
          timeout_ms = 0;
        } else {
          const auto until =
              std::chrono::duration_cast<std::chrono::milliseconds>(nearest -
                                                                    now)
                  .count();
          timeout_ms = static_cast<int>(std::min<long long>(until + 1, 60000));
        }
      }
    }

    events.clear();
    if (!loop.poller.Wait(timeout_ms, &events).ok()) {
      // A broken poller would spin; this path should be unreachable.
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    for (const PollerEvent& event : events) {
      if (event.fd == loop.wake_read) {
        char drain[256];
        while (::read(loop.wake_read, drain, sizeof(drain)) > 0) {
        }
        continue;
      }
      if (listener_watched && event.fd == listener_.fd()) {
        AcceptReady(loop);
        continue;
      }
      auto found = loop.conns.find(event.fd);
      if (found == loop.conns.end()) continue;  // torn down this batch
      std::shared_ptr<Conn> conn = found->second;
      if (conn->dead) continue;
      if (conn->reads_closed) {
        // Poisoned: only the error flush is left. An error event means the
        // peer is gone and even that is moot.
        if (event.error) {
          DestroyConn(loop, conn);
        } else if (event.writable) {
          FlushConn(loop, conn);
        }
        continue;
      }
      if (event.readable || event.error) HandleReadable(loop, conn);
      if (event.writable && !conn->dead) FlushConn(loop, conn);
    }

    if (!loop.conns.empty()) {
      const SteadyTime now = std::chrono::steady_clock::now();
      std::vector<std::shared_ptr<Conn>> expired;
      for (const auto& [fd, conn] : loop.conns) {
        if (conn->deadline <= now) expired.push_back(conn);
      }
      for (const auto& conn : expired) {
        if (conn->reads_closed) {
          // The poisoned reply could not be flushed within the budget.
          DestroyConn(loop, conn);
          continue;
        }
        bool goodbye_stuck;
        bool barrier_wait;
        {
          std::lock_guard<std::mutex> conn_lock(conn->mutex);
          goodbye_stuck = conn->close_after_flush;
          barrier_wait = !conn->channels.empty();
          for (const auto& [channel, state] : conn->channels) {
            if (!state.closing) {
              barrier_wait = false;
              break;
            }
          }
        }
        if (goodbye_stuck) {
          // A drain goodbye the peer never read: give up on delivery.
          DestroyConn(loop, conn);
          continue;
        }
        if (barrier_wait) {
          // Every channel is awaiting its SHARD_CLOSED verdict: the wait
          // belongs to the merge scheduler (bounded by
          // merge_turn_timeout_ms, often longer than the idle budget) and
          // the client has stopped sending on purpose — not a slow loris.
          // Re-arm rather than reap, or an out-of-order campaign with
          // skew beyond idle_timeout_ms would lose its merge verdicts.
          ArmDeadline(conn);
          continue;
        }
        HandleConnFailure(loop, conn, /*clean_eof=*/false, /*reaped=*/true);
      }
    }
  }
}

void ReportServer::AcceptReady(Loop& loop) {
  while (true) {
    Result<Socket> accepted = listener_.TryAccept();
    // A broken listener stops accepting; existing connections keep going.
    if (!accepted.ok()) return;
    // Invalid covers both "drained" and "one connection lost to a
    // transient fault" — either way, level-triggered polling re-fires if
    // more are pending.
    if (!accepted.value().valid()) return;
    Socket socket = std::move(accepted).value();
    if (!socket.SetNonBlocking().ok()) continue;
    auto conn = std::make_shared<Conn>();
    conn->socket = std::move(socket);
    const size_t target = rr_next_++ % loops_.size();
    conn->loop = target;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stop_accepting_) return;  // racing Stop: drop the connection
      ++stats_.connections;
      conns_.emplace(conn->socket.fd(), conn);
    }
    if (metrics_.enabled()) metrics_.connections->Increment();
    if (target == 0) {
      AdoptConn(loop, conn);
    } else {
      Loop& other = *loops_[target];
      {
        std::lock_guard<std::mutex> lock(other.mutex);
        other.adopt_inbox.push_back(conn);
      }
      WakeLoop(target);
    }
  }
}

void ReportServer::AdoptConn(Loop& loop, const std::shared_ptr<Conn>& conn) {
  const int fd = conn->socket.fd();
  if (!loop.poller.Add(fd, true, false).ok()) {
    std::lock_guard<std::mutex> lock(mutex_);
    conns_.erase(fd);
    return;  // the socket closes with the last Conn reference
  }
  loop.conns.emplace(fd, conn);
  ArmDeadline(conn);
}

void ReportServer::ArmDeadline(const std::shared_ptr<Conn>& conn) {
  if (options_.idle_timeout_ms > 0) {
    conn->deadline = std::chrono::steady_clock::now() +
                     std::chrono::milliseconds(options_.idle_timeout_ms);
    return;
  }
  // No idle timeout: the only bounded wait is a teardown's goodbye flush.
  // Without it, Stop(drain) could hang on a peer that never reads its
  // final reply.
  bool closing = conn->reads_closed;
  if (!closing) {
    std::lock_guard<std::mutex> conn_lock(conn->mutex);
    closing = conn->close_after_flush;
  }
  if (closing && conn->deadline == SteadyTime::max()) {
    conn->deadline = std::chrono::steady_clock::now() +
                     std::chrono::milliseconds(kCloseFlushGraceMs);
  }
}

void ReportServer::HandleReadable(Loop& loop,
                                  const std::shared_ptr<Conn>& conn) {
  int budget = kDispatchBudget;
  while (!conn->dead && !conn->reads_closed) {
    if (conn->phase == ReadPhase::kPrefix) {
      bool eof = false;
      Result<size_t> got =
          conn->socket.RecvSome(conn->prefix + conn->prefix_got,
                                kMessageHeaderBytes - conn->prefix_got, &eof);
      if (!got.ok()) {
        HandleConnFailure(loop, conn, /*clean_eof=*/false, /*reaped=*/false);
        return;
      }
      if (eof) {
        // EOF on a message boundary is the clean goodbye; EOF inside a
        // prefix means the framing was cut mid-message.
        HandleConnFailure(loop, conn, /*clean_eof=*/conn->prefix_got == 0,
                          /*reaped=*/false);
        return;
      }
      if (got.value() == 0) return;  // socket drained
      conn->prefix_got += got.value();
      if (conn->prefix_got < kMessageHeaderBytes) continue;
      Result<MessageHeader> header =
          DecodeMessageHeader(conn->prefix, kMessageHeaderBytes);
      if (!header.ok()) {
        // Unknown type or a hostile length prefix: the message boundaries
        // can no longer be trusted — kill the connection.
        PoisonConn(loop, conn, header.status(), /*count_always=*/true);
        return;
      }
      conn->header = header.value();
      conn->prefix_got = 0;
      conn->phase = ReadPhase::kPayload;
      conn->payload.resize(conn->header.payload_length);
      conn->payload_got = 0;
      // The payload gets its own whole-message budget, exactly like the
      // prefix: partial reads never reset it (the slow-loris defense).
      ArmDeadline(conn);
      // The DATA service-time clock starts with the payload read: the
      // histogram covers wire read + session Feed.
      conn->data_started_ns =
          metrics_.enabled() && conn->header.type == MessageType::kData
              ? obs::SteadyNowNs()
              : 0;
    }
    while (conn->payload_got < conn->payload.size()) {
      bool eof = false;
      Result<size_t> got =
          conn->socket.RecvSome(conn->payload.data() + conn->payload_got,
                                conn->payload.size() - conn->payload_got,
                                &eof);
      if (!got.ok() || eof) {
        HandleConnFailure(loop, conn, /*clean_eof=*/false, /*reaped=*/false);
        return;
      }
      if (got.value() == 0) return;  // socket drained mid-payload
      conn->payload_got += got.value();
    }
    if (!DispatchMessage(loop, conn)) return;
    conn->phase = ReadPhase::kPrefix;
    conn->prefix_got = 0;
    ArmDeadline(conn);
    // Between shards is a drain point: once the server is stopping, a
    // connection with nothing open has nothing left to say.
    bool no_channels;
    {
      std::lock_guard<std::mutex> conn_lock(conn->mutex);
      no_channels = conn->channels.empty();
    }
    if (no_channels) {
      bool stopping;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping = stop_accepting_;
      }
      if (stopping) {
        CloseAfterFlush(loop, conn);
        return;
      }
    }
    if (--budget <= 0) return;  // fairness: let other connections run
  }
}

bool ReportServer::DispatchMessage(Loop& loop,
                                   const std::shared_ptr<Conn>& conn) {
  switch (conn->header.type) {
    case MessageType::kHello:
      return HandleHello(loop, conn);
    case MessageType::kData: {
      if (conn->payload.size() < kDataChannelPrefixBytes) {
        PoisonConn(loop, conn,
                   Status::InvalidArgument(
                       "DATA payload is missing its channel prefix"),
                   /*count_always=*/false);
        return false;
      }
      const uint32_t channel = DecodeDataChannel(conn->payload);
      size_t shard = 0;
      bool open = false;
      {
        std::lock_guard<std::mutex> conn_lock(conn->mutex);
        auto found = conn->channels.find(channel);
        if (found != conn->channels.end() && !found->second.closing) {
          shard = found->second.shard;
          open = true;
        }
      }
      if (!open) {
        PoisonConn(loop, conn,
                   Status::FailedPrecondition("DATA before HELLO"),
                   /*count_always=*/false);
        return false;
      }
      const char* data = conn->payload.data() + kDataChannelPrefixBytes;
      const size_t size = conn->payload.size() - kDataChannelPrefixBytes;
      // Durability before visibility: the frame bytes hit the WAL before
      // the session, so nothing the reporter gets acked can be lost.
      if (options_.wal != nullptr && size > 0) {
        options_.wal->OnShardData(shard, data, size);
      }
      // Feed without conn->mutex: it may block on ingest backpressure, and
      // the scheduler must stay able to queue replies meanwhile. Only the
      // owning loop erases a non-closing channel, so `shard` stays valid.
      const Status fed = session_->Feed(shard, data, size);
      if (conn->data_started_ns != 0) {
        metrics_.data_messages->Increment();
        metrics_.data_read_us->Observe(
            (obs::SteadyNowNs() - conn->data_started_ns) / 1000);
      }
      if (!fed.ok()) {
        PoisonConn(loop, conn, fed, /*count_always=*/false);
        return false;
      }
      uint64_t watermark = 0;
      {
        std::lock_guard<std::mutex> conn_lock(conn->mutex);
        auto found = conn->channels.find(channel);
        if (found != conn->channels.end()) {
          found->second.fed_bytes += size;
          watermark = found->second.fed_bytes;
        }
      }
      if (conn->wants_acks) {
        conn->pending_acks[channel] = watermark;
        conn->unacked_bytes += size;
        if (conn->unacked_bytes >= kDataAckFlushBytes) {
          FlushPendingAcks(conn);
          FlushConn(loop, conn);
        }
      }
      return !conn->dead;
    }
    case MessageType::kCloseShard: {
      Result<CloseShardMessage> close = DecodeCloseShard(conn->payload);
      if (!close.ok()) {
        PoisonConn(loop, conn, close.status(), /*count_always=*/false);
        return false;
      }
      ChannelState state;
      bool open = false;
      {
        std::lock_guard<std::mutex> conn_lock(conn->mutex);
        auto found = conn->channels.find(close.value().channel);
        if (found != conn->channels.end() && !found->second.closing) {
          found->second.closing = true;
          state = found->second;
          open = true;
        }
      }
      if (!open) {
        PoisonConn(loop, conn,
                   Status::FailedPrecondition("CLOSE_SHARD before HELLO"),
                   /*count_always=*/false);
        return false;
      }
      // Queue the channel's final watermark ahead of the eventual
      // SHARD_CLOSED reply so a windowing client's in-flight budget fully
      // drains. Queue only — no socket I/O yet.
      FlushPendingAcks(conn);
      if (options_.journal != nullptr) {
        options_.journal->Record(obs::EventKind::kMergeEnter, state.ordinal);
      }
      PendingClose pending;
      pending.conn = conn;
      pending.channel = close.value().channel;
      pending.shard = state.shard;
      pending.ordinal = state.ordinal;
      pending.enqueued_ns = metrics_.enabled() ? obs::SteadyNowNs() : 0;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        if (options_.merge_turn_timeout_ms > 0) {
          pending.has_deadline = true;
          pending.deadline =
              std::chrono::steady_clock::now() +
              std::chrono::milliseconds(options_.merge_turn_timeout_ms);
        }
        pending_closes_.emplace(state.ordinal, std::move(pending));
      }
      merge_cv_.notify_all();
      // Flush only after the close is scheduler-owned: a send failure here
      // destroys the connection, and AbandonConnChannels skips closing
      // channels — an un-enqueued close would leave the ordinal active
      // forever and wedge the expected-shards barrier. With the close
      // enqueued, a dead connection merely drops the reply; FinishOrdinal
      // still runs in CompleteClose.
      FlushConn(loop, conn);
      return !conn->dead;
    }
    case MessageType::kAdvanceEpoch: {
      // The session refuses while any shard (this connection's included)
      // is open, so no extra gating is needed here.
      const Status advanced = session_->AdvanceEpoch();
      if (advanced.ok()) {
        // A new epoch restarts the campaign: ordinals 0..N-1 stream
        // again, so the expected-shards barrier resets — and a new epoch
        // has no pre-crash shards, so unclaimed resume entries expire.
        std::lock_guard<std::mutex> lock(mutex_);
        done_ordinals_.clear();
        merge_frontier_ = 0;
        resume_shards_.clear();
      }
      EpochAdvancedMessage reply;
      reply.code = static_cast<uint8_t>(advanced.code());
      reply.epoch = session_->current_epoch();
      reply.message = advanced.message();
      QueueMessage(conn, MessageType::kEpochAdvanced,
                   EncodeEpochAdvanced(reply));
      FlushConn(loop, conn);
      return !conn->dead;
    }
    case MessageType::kSnapshot:
      return HandleSnapshot(loop, conn);
    default:
      // Server-only types arriving from a client.
      PoisonConn(loop, conn,
                 Status::InvalidArgument("unexpected message type"),
                 /*count_always=*/false);
      return false;
  }
}

bool ReportServer::HandleHello(Loop& loop,
                               const std::shared_ptr<Conn>& conn) {
  Result<HelloMessage> hello = DecodeHello(conn->payload);
  if (!hello.ok()) {
    PoisonConn(loop, conn, hello.status(), /*count_always=*/false);
    return false;
  }
  const uint32_t channel = hello.value().channel;
  bool duplicate;
  {
    std::lock_guard<std::mutex> conn_lock(conn->mutex);
    duplicate = conn->channels.count(channel) != 0;
  }
  if (duplicate) {
    PoisonConn(loop, conn,
               Status::FailedPrecondition(
                   "HELLO reuses a channel that is still open"),
               /*count_always=*/false);
    return false;
  }
  // The authentication gate runs before the stream header is decoded: a
  // forged or unauthenticated HELLO is refused on the cheap fixed fields
  // alone and never reaches the session.
  Status auth = Status::OK();
  if (options_.campaign_key.empty()) {
    if (hello.value().version != kLegacyProtocolVersion) {
      auth = Status::FailedPrecondition(
          "this collector has no campaign key and refuses authenticated "
          "HELLOs rather than skipping verification");
    }
  } else if (hello.value().version != kProtocolVersion) {
    auth = Status::FailedPrecondition(
        "this campaign requires an authenticated protocol v3 HELLO");
  } else {
    const std::string expected_tag = ComputeHelloTag(
        options_.campaign_key, hello.value().reporter_id,
        hello.value().channel, session_->current_epoch(),
        hello.value().header_bytes);
    if (!util::ConstantTimeEqual(expected_tag, hello.value().auth_tag)) {
      auth = Status::FailedPrecondition(
          "HELLO authentication tag does not verify for this campaign, "
          "channel, and epoch");
    }
  }
  if (!auth.ok()) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.hello_rejected;
      ++stats_.hello_unauthenticated;
    }
    if (metrics_.enabled()) {
      metrics_.hello_refused->Increment();
      metrics_.hello_unauthenticated->Increment();
    }
    if (options_.journal != nullptr) {
      options_.journal->Record(obs::EventKind::kAuthRefuse,
                               hello.value().ordinal);
    }
    FlushPendingAcks(conn);
    QueueMessage(conn, MessageType::kError, EncodeError(auth));
    AbandonConnChannels(conn);
    CloseAfterFlush(loop, conn);
    return false;
  }
  Result<stream::StreamHeader> peer =
      stream::DecodeStreamHeader(hello.value().header_bytes);
  Status refusal = peer.ok()
                       ? stream::CheckHeadersCompatible(expected_, peer.value())
                       : peer.status();
  if (refusal.ok()) refusal = RegisterOrdinal(hello.value().ordinal);
  if (!refusal.ok()) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.hello_rejected;
    }
    if (metrics_.enabled()) metrics_.hello_refused->Increment();
    if (options_.journal != nullptr) {
      options_.journal->Record(obs::EventKind::kHelloRefuse,
                               hello.value().ordinal);
    }
    // A refused HELLO closes the whole connection (as in v1, where a
    // connection carried exactly one shard), so other channels abandon.
    FlushPendingAcks(conn);
    QueueMessage(conn, MessageType::kError, EncodeError(refusal));
    AbandonConnChannels(conn);
    CloseAfterFlush(loop, conn);
    return false;
  }
  // A WAL replay may have left this ordinal's shard open at the crash:
  // re-attach to it instead of opening anew, and tell the reporter how
  // many post-header bytes are already durable.
  ResumedShard resumed;
  bool is_resume = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto found = resume_shards_.find(hello.value().ordinal);
    if (found != resume_shards_.end()) {
      resumed = found->second;
      is_resume = true;
      resume_shards_.erase(found);
    }
  }
  ChannelState state;
  state.ordinal = hello.value().ordinal;
  if (is_resume) {
    state.shard = resumed.shard;
  } else {
    // Opening charges the reporter's privacy ledger for this epoch
    // (idempotently — a reconnect is already paid for). A reporter whose
    // lifetime budget cannot afford the epoch is refused here, shardless.
    Result<size_t> opened = session_->OpenShard(hello.value().reporter_id);
    if (!opened.ok()) {
      // Release the ordinal the way an abandoned shard would: the campaign
      // proceeds with this reporter's shard simply missing.
      FinishOrdinal(state.ordinal);
      {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.hello_rejected;
      }
      if (metrics_.enabled()) metrics_.hello_refused->Increment();
      if (options_.journal != nullptr) {
        options_.journal->Record(obs::EventKind::kHelloRefuse,
                                 hello.value().ordinal);
      }
      FlushPendingAcks(conn);
      QueueMessage(conn, MessageType::kError, EncodeError(opened.status()));
      AbandonConnChannels(conn);
      CloseAfterFlush(loop, conn);
      return false;
    }
    state.shard = opened.value();
  }
  if (metrics_.enabled()) metrics_.hello_accepted->Increment();
  if (options_.journal != nullptr) {
    options_.journal->Record(obs::EventKind::kHelloAccept,
                             hello.value().ordinal);
  }
  if ((hello.value().flags & kHelloFlagDataAcks) != 0) {
    conn->wants_acks = true;
  }
  {
    std::lock_guard<std::mutex> conn_lock(conn->mutex);
    conn->channels.emplace(channel, state);
  }
  if (!is_resume) {
    if (options_.wal != nullptr) {
      options_.wal->OnShardOpen(state.shard, state.ordinal,
                                session_->current_epoch(),
                                hello.value().reporter_id,
                                hello.value().header_bytes);
    }
    // The shard's byte stream is header + frames, exactly as on disk; the
    // validated HELLO header bytes are that header. (A replayed shard
    // already holds its header — nothing to feed, nothing new for the WAL.)
    const Status fed =
        session_->Feed(state.shard, hello.value().header_bytes);
    if (!fed.ok()) {
      PoisonConn(loop, conn, fed, /*count_always=*/false);
      return false;
    }
  }
  HelloOkMessage ok;
  ok.channel = channel;
  ok.shard = state.shard;
  ok.epoch = session_->current_epoch();
  ok.resume_offset = is_resume ? resumed.durable_bytes : 0;
  QueueMessage(conn, MessageType::kHelloOk, EncodeHelloOk(ok));
  FlushConn(loop, conn);
  return !conn->dead;
}

bool ReportServer::HandleSnapshot(Loop& loop,
                                  const std::shared_ptr<Conn>& conn) {
  bool has_channels;
  {
    std::lock_guard<std::mutex> conn_lock(conn->mutex);
    has_channels = !conn->channels.empty();
  }
  if (has_channels) {
    PoisonConn(loop, conn,
               Status::FailedPrecondition(
                   "SNAPSHOT while this connection's shard is open"),
               /*count_always=*/false);
    return false;
  }
  Result<SnapshotMessage> snap = DecodeSnapshot(conn->payload);
  Status refusal = Status::OK();
  if (!snap.ok()) {
    refusal = snap.status();
  } else if (!options_.accept_snapshots) {
    refusal = Status::FailedPrecondition(
        "this collector does not accept relay snapshots");
  } else {
    refusal = CheckSnapshotCompatible(expected_, snap.value().snapshot_bytes);
  }
  if (!refusal.ok()) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.snapshots_refused;
    }
    if (metrics_.enabled()) metrics_.snapshots_refused->Increment();
    if (options_.journal != nullptr) {
      options_.journal->Record(obs::EventKind::kSnapshotRefuse,
                               snap.ok() ? snap.value().node : 0);
    }
    QueueMessage(conn, MessageType::kError, EncodeError(refusal));
    CloseAfterFlush(loop, conn);
    return false;
  }
  const uint64_t node = snap.value().node;
  const uint64_t seq = snap.value().seq;
  bool fresh;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    PendingSnapshot& entry = relay_snapshots_[node];
    // Strictly-higher seq wins. A retry of the current seq (or an older
    // one) is acknowledged — the snapshot is cumulative, so the ack is
    // safe — but counts as stale, not accepted: it replaced nothing.
    fresh = entry.bytes.empty() || seq > entry.seq;
    if (fresh) {
      entry.seq = seq;
      entry.epoch = snap.value().epoch;
      entry.bytes = std::move(snap.value().snapshot_bytes);
      ++stats_.snapshots_accepted;
    } else {
      ++stats_.snapshots_stale;
    }
  }
  if (metrics_.enabled()) {
    (fresh ? metrics_.snapshots_accepted : metrics_.snapshots_stale)
        ->Increment();
  }
  if (fresh && options_.journal != nullptr) {
    options_.journal->Record(obs::EventKind::kSnapshotAccept, node, seq);
  }
  SnapshotOkMessage ok;
  ok.node = node;
  ok.seq = seq;
  QueueMessage(conn, MessageType::kSnapshotOk, EncodeSnapshotOk(ok));
  FlushConn(loop, conn);
  return !conn->dead;
}

void ReportServer::HandleConnFailure(Loop& loop,
                                     const std::shared_ptr<Conn>& conn,
                                     bool clean_eof, bool reaped) {
  // The slow-loris defense actually engaging — a signal worth watching on
  // a deployed edge.
  if (reaped && metrics_.enabled()) metrics_.slow_loris_reaped->Increment();
  const size_t had_channels = AbandonConnChannels(conn);
  bool count = false;
  if (conn->phase == ReadPhase::kPayload) {
    // Mid-payload loss: the message boundary is gone for good.
    count = true;
  } else if (!clean_eof) {
    // A drain-stop wakes idle connections by shutting their sockets down;
    // that read failure is bookkeeping, not a protocol error. A failure
    // with shards open is the peer's loss (abandonment), not bad framing.
    bool stopping;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stopping = stop_accepting_;
    }
    count = had_channels == 0 && !stopping;
  }
  if (count) CountProtocolError();
  DestroyConn(loop, conn);
}

void ReportServer::PoisonConn(Loop& loop, const std::shared_ptr<Conn>& conn,
                              const Status& verdict, bool count_always) {
  FlushPendingAcks(conn);
  QueueMessage(conn, MessageType::kError, EncodeError(verdict));
  const size_t had_channels = AbandonConnChannels(conn);
  if (count_always || had_channels == 0) CountProtocolError();
  CloseAfterFlush(loop, conn);
}

size_t ReportServer::AbandonConnChannels(const std::shared_ptr<Conn>& conn) {
  std::vector<ChannelState> doomed;
  size_t total;
  {
    std::lock_guard<std::mutex> conn_lock(conn->mutex);
    total = conn->channels.size();
    for (auto it = conn->channels.begin(); it != conn->channels.end();) {
      // A close in flight belongs to the merge scheduler and completes
      // there; only channels still streaming are abandoned.
      if (it->second.closing) {
        ++it;
        continue;
      }
      doomed.push_back(it->second);
      it = conn->channels.erase(it);
    }
  }
  // An aborted upload contributes nothing, even if it stopped on a frame
  // boundary: drop the shard and release its merge turn.
  for (const ChannelState& state : doomed) {
    if (options_.wal != nullptr) options_.wal->OnShardAbandon(state.shard);
    (void)session_->AbandonShard(state.shard);
    FinishOrdinal(state.ordinal);
    CountAbandoned();
  }
  return total;
}

void ReportServer::DestroyConn(Loop& loop,
                               const std::shared_ptr<Conn>& conn) {
  {
    std::lock_guard<std::mutex> conn_lock(conn->mutex);
    if (conn->dead) return;
    conn->dead = true;
  }
  const int fd = conn->socket.fd();
  (void)loop.poller.Remove(fd);
  loop.conns.erase(fd);
  {
    // Unregister before the fd closes — Stop can never shut down a
    // recycled descriptor.
    std::lock_guard<std::mutex> lock(mutex_);
    conns_.erase(fd);
  }
  conn->socket.Close();
}

void ReportServer::FlushConn(Loop& loop, const std::shared_ptr<Conn>& conn) {
  bool destroy = false;
  {
    std::lock_guard<std::mutex> conn_lock(conn->mutex);
    if (conn->dead) return;
    while (conn->outbuf_sent < conn->outbuf.size()) {
      Result<size_t> sent =
          conn->socket.SendSome(conn->outbuf.data() + conn->outbuf_sent,
                                conn->outbuf.size() - conn->outbuf_sent);
      if (!sent.ok()) {  // peer is gone; nothing further to say
        destroy = true;
        break;
      }
      if (sent.value() == 0) break;  // kernel buffer full
      conn->outbuf_sent += sent.value();
    }
    if (!destroy) {
      if (conn->outbuf_sent == conn->outbuf.size()) {
        conn->outbuf.clear();
        conn->outbuf_sent = 0;
      } else if (conn->outbuf_sent > kOutbufCompactBytes) {
        conn->outbuf.erase(0, conn->outbuf_sent);
        conn->outbuf_sent = 0;
      }
      const bool pending = conn->outbuf_sent < conn->outbuf.size();
      if (pending != conn->want_write) {
        conn->want_write = pending;
        (void)loop.poller.Update(conn->socket.fd(), !conn->reads_closed,
                                 pending);
      }
      if (!pending && conn->close_after_flush) destroy = true;
    }
  }
  if (destroy) {
    // Defensive: a send-error teardown may still hold streaming channels
    // (e.g. a HELLO_OK that could not be delivered).
    AbandonConnChannels(conn);
    DestroyConn(loop, conn);
  }
}

void ReportServer::CloseAfterFlush(Loop& loop,
                                   const std::shared_ptr<Conn>& conn) {
  conn->reads_closed = true;
  {
    std::lock_guard<std::mutex> conn_lock(conn->mutex);
    if (conn->dead) return;
    conn->close_after_flush = true;
    // Drop read interest: with level triggering, unread client bytes would
    // otherwise spin the loop until the flush finishes.
    (void)loop.poller.Update(conn->socket.fd(), false, conn->want_write);
  }
  // Bound the goodbye even when the idle timer is off (see kCloseFlushGraceMs).
  ArmDeadline(conn);
  FlushConn(loop, conn);
}

void ReportServer::QueueMessage(const std::shared_ptr<Conn>& conn,
                                MessageType type,
                                const std::string& payload) {
  std::string wire;
  if (!AppendMessage(type, payload, &wire).ok()) return;
  std::lock_guard<std::mutex> conn_lock(conn->mutex);
  if (conn->dead) return;
  conn->outbuf.append(wire);
}

void ReportServer::FlushPendingAcks(const std::shared_ptr<Conn>& conn) {
  if (!conn->wants_acks || conn->pending_acks.empty()) return;
  DataAckMessage ack;
  ack.entries.reserve(conn->pending_acks.size());
  for (const auto& [channel, bytes] : conn->pending_acks) {
    ack.entries.push_back({channel, bytes});
  }
  conn->pending_acks.clear();
  conn->unacked_bytes = 0;
  QueueMessage(conn, MessageType::kDataAck, EncodeDataAck(ack));
}

// --- merge scheduler -------------------------------------------------------

void ReportServer::SchedulerMain() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    // A close is ready when its ordinal holds the merge turn — or the
    // server is tearing down, in which case everything "readies" as an
    // abandonment.
    uint64_t ready_ordinal = 0;
    bool have_ready = false;
    if (!pending_closes_.empty()) {
      if (hard_stop_ || scheduler_exit_) {
        ready_ordinal = pending_closes_.begin()->first;
        have_ready = true;
      } else if (options_.expected_shards > 0) {
        // Strict barrier: only the frontier ordinal may merge.
        auto found = pending_closes_.find(merge_frontier_);
        if (found != pending_closes_.end()) {
          ready_ordinal = found->first;
          have_ready = true;
        }
      } else if (!active_ordinals_.empty()) {
        // Ad hoc: the smallest ordinal still open holds the turn.
        auto found = pending_closes_.find(*active_ordinals_.begin());
        if (found != pending_closes_.end()) {
          ready_ordinal = found->first;
          have_ready = true;
        }
      }
    }
    if (have_ready) {
      PendingClose close = std::move(pending_closes_[ready_ordinal]);
      pending_closes_.erase(ready_ordinal);
      const bool stopping = hard_stop_ || scheduler_exit_;
      lock.unlock();
      CompleteClose(std::move(close), /*got_turn=*/!stopping, stopping);
      lock.lock();
      continue;
    }
    // Guard against a campaign whose predecessor ordinal never arrives:
    // a close that outwaits merge_turn_timeout_ms is abandoned.
    const SteadyTime now = std::chrono::steady_clock::now();
    bool expired_one = false;
    for (auto it = pending_closes_.begin(); it != pending_closes_.end();
         ++it) {
      if (!it->second.has_deadline || it->second.deadline > now) continue;
      PendingClose close = std::move(it->second);
      pending_closes_.erase(it);
      lock.unlock();
      CompleteClose(std::move(close), /*got_turn=*/false, /*stopping=*/false);
      lock.lock();
      expired_one = true;
      break;  // iterators are stale; rescan
    }
    if (expired_one) continue;
    if (scheduler_exit_ && pending_closes_.empty()) return;
    SteadyTime nearest = SteadyTime::max();
    for (const auto& [ordinal, close] : pending_closes_) {
      if (close.has_deadline) nearest = std::min(nearest, close.deadline);
    }
    if (nearest == SteadyTime::max()) {
      merge_cv_.wait(lock);
    } else {
      merge_cv_.wait_until(lock, nearest);
    }
  }
}

void ReportServer::CompleteClose(PendingClose close, bool got_turn,
                                 bool stopping) {
  if (metrics_.enabled() && close.enqueued_ns != 0) {
    // The barrier wait alone — how long this ordinal stalled on its
    // predecessors — not the close/merge work that follows.
    metrics_.merge_barrier_wait_us->Observe(
        (obs::SteadyNowNs() - close.enqueued_ns) / 1000);
  }
  Status closed = Status::OK();
  if (got_turn) {
    // The close record carries the merge order: written while holding the
    // merge turn, so a replay closes shards in exactly this sequence.
    if (options_.wal != nullptr) options_.wal->OnShardClose(close.shard);
    closed = session_->CloseShard(close.shard);
  } else {
    if (options_.wal != nullptr) options_.wal->OnShardAbandon(close.shard);
    (void)session_->AbandonShard(close.shard);
    closed = stopping
                 ? Status::FailedPrecondition("collector is shutting down")
                 : Status::FailedPrecondition(
                       "timed out waiting for the merge turn (a smaller "
                       "ordinal never finished)");
  }
  FinishOrdinal(close.ordinal);
  if (options_.journal != nullptr) {
    options_.journal->Record(obs::EventKind::kMergeExit, close.ordinal,
                             closed.ok() ? 0 : 1);
  }
  ShardClosedMessage reply;
  reply.channel = close.channel;
  reply.code = static_cast<uint8_t>(closed.code());
  reply.message = closed.message();
  Result<stream::ShardIngester::Stats> shard_stats =
      session_->ShardStats(close.shard);
  if (shard_stats.ok()) reply.stats = shard_stats.value();
  bool draining;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed.ok()) {
      ++stats_.shards_merged;
    } else {
      ++stats_.shards_discarded;
    }
    draining = stop_accepting_;
  }
  if (metrics_.enabled()) {
    (closed.ok() ? metrics_.shards_merged : metrics_.shards_discarded)
        ->Increment();
  }
  std::string wire;
  if (!AppendMessage(MessageType::kShardClosed, EncodeShardClosed(reply),
                     &wire)
           .ok()) {
    wire.clear();
  }
  bool deliver = false;
  {
    std::lock_guard<std::mutex> conn_lock(close.conn->mutex);
    close.conn->channels.erase(close.channel);
    if (!close.conn->dead && !wire.empty()) {
      close.conn->outbuf.append(wire);
      // During a drain, a connection whose last shard just closed has
      // nothing left to say once the reply flushes.
      if (draining && close.conn->channels.empty()) {
        close.conn->close_after_flush = true;
      }
      deliver = true;
    }
  }
  if (deliver) {
    // Only the owning loop touches the socket: hand it the flush.
    Loop& loop = *loops_[close.conn->loop];
    {
      std::lock_guard<std::mutex> loop_lock(loop.mutex);
      loop.flush_inbox.push_back(close.conn);
    }
    WakeLoop(close.conn->loop);
  }
}

// --- shared ordinal bookkeeping --------------------------------------------

Status ReportServer::RegisterOrdinal(uint64_t ordinal) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (options_.expected_shards > 0) {
    if (ordinal >= options_.expected_shards) {
      return Status::OutOfRange(
          "shard ordinal exceeds the campaign's expected shard count");
    }
    if (done_ordinals_.count(ordinal) != 0) {
      return Status::AlreadyExists(
          "shard ordinal already completed this epoch");
    }
  }
  if (!active_ordinals_.insert(ordinal).second) {
    return Status::AlreadyExists("shard ordinal is already streaming");
  }
  return Status::OK();
}

void ReportServer::FinishOrdinal(uint64_t ordinal) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    active_ordinals_.erase(ordinal);
    if (options_.expected_shards > 0) {
      // An abandoned ordinal counts as finished too: the barrier must not
      // wedge the campaign on a reporter that died (its shard is simply
      // missing, exactly as a missing file would be).
      done_ordinals_.insert(ordinal);
      while (merge_frontier_ < options_.expected_shards &&
             done_ordinals_.count(merge_frontier_) != 0) {
        ++merge_frontier_;
      }
    }
  }
  merge_cv_.notify_all();
}

void ReportServer::CountProtocolError() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.protocol_errors;
  }
  if (metrics_.enabled()) metrics_.protocol_errors->Increment();
}

void ReportServer::CountAbandoned() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.shards_abandoned;
  }
  if (metrics_.enabled()) metrics_.shards_abandoned->Increment();
}

}  // namespace ldp::net
