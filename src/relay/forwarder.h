// RelayForwarder: the downstream half of a two-tier collection campaign.
//
// An edge collector (ldp_serve --relay-to) runs one forwarder next to its
// ReportServer. On a fixed cadence — and once more, synchronously, at
// drain — the forwarder serializes the node's whole ServerSession
// (cumulative: every epoch, all reports so far) and ships it upstream as
// one SNAPSHOT message (net/protocol.h), tagged with the node id and a
// monotone sequence number. The upstream keeps only the highest sequence
// per node and folds the survivors in ascending node-id order at its own
// drain (ReportServer::FoldRelaySnapshots), so:
//
//   - retries after a lost ack, duplicate deliveries, and upstream
//     restarts are all idempotent — the latest cumulative snapshot
//     subsumes every earlier one;
//   - the fold order is a function of node ids alone, which is what makes
//     a two-tier campaign reproduce the tree-shaped file-based run
//     (`ldp_aggregate edge0.ldpe edge1.ldpe`) bit for bit.
//
// A dead upstream costs nothing but retries: the forwarder reconnects
// with exponential backoff and the next cycle ships a snapshot that
// covers everything the failed one did.

#ifndef LDP_RELAY_FORWARDER_H_
#define LDP_RELAY_FORWARDER_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "api/server_session.h"
#include "net/socket.h"
#include "obs/metrics.h"
#include "util/result.h"
#include "util/status.h"

namespace ldp::obs {
class EventJournal;
}  // namespace ldp::obs

namespace ldp::relay {

struct RelayForwarderOptions {
  /// This node's merge position at the upstream (must be unique per edge;
  /// the upstream folds nodes in ascending id order).
  uint64_t node_id = 0;
  /// Periodic forwarding cadence. A cycle whose session is unchanged since
  /// the last acked snapshot sends nothing.
  int interval_ms = 1000;
  /// First reconnect/retry delay; doubles per failure up to the max.
  int retry_backoff_ms = 200;
  int max_backoff_ms = 5000;
  /// Per-attempt bound on upstream socket I/O (0 = wait forever).
  int idle_timeout_ms = 30000;
  /// Attempts per background cycle before giving up until the next cycle
  /// (the snapshot is cumulative, so a skipped cycle loses nothing).
  int attempts_per_cycle = 5;
  /// Bound on the synchronous final Flush — how long a draining edge keeps
  /// retrying a dead upstream before giving up.
  int flush_timeout_ms = 60000;
  obs::MetricsRegistry* metrics = nullptr;
  obs::EventJournal* journal = nullptr;
};

struct RelayForwarderStats {
  uint64_t snapshots_forwarded = 0;  ///< SNAPSHOTs acked upstream.
  uint64_t forward_failures = 0;     ///< Failed attempts (pre-ack).
  uint64_t reconnects = 0;           ///< Upstream connections established.
  uint64_t bytes_forwarded = 0;      ///< Acked snapshot payload bytes.
};

class RelayForwarder {
 public:
  /// Starts the background forwarding thread. `session` must outlive the
  /// forwarder and be the same session the node's ReportServer feeds.
  static Result<std::unique_ptr<RelayForwarder>> Start(
      api::ServerSession* session, const net::Endpoint& upstream,
      RelayForwarderOptions options);

  /// Stop(false).
  ~RelayForwarder();

  RelayForwarder(const RelayForwarder&) = delete;
  RelayForwarder& operator=(const RelayForwarder&) = delete;

  /// Ships the current snapshot now, synchronously, retrying (with
  /// backoff, reconnecting as needed) until acked or flush_timeout_ms
  /// elapses. Call after the local server drained: the final cumulative
  /// snapshot the upstream folds.
  Status Flush();

  /// Stops the background thread; with `final_flush`, runs one Flush()
  /// first so the upstream holds everything this node collected.
  /// Idempotent. Returns the flush verdict (OK when final_flush is off).
  Status Stop(bool final_flush);

  RelayForwarderStats stats() const;

 private:
  RelayForwarder(api::ServerSession* session, net::Endpoint upstream,
                 RelayForwarderOptions options);

  void Run();

  /// One forwarding attempt over the current connection (connecting if
  /// needed). On failure the connection is dropped so the next attempt
  /// redials.
  Status SendOnce(const std::string& snapshot_bytes, uint64_t seq);

  /// Snapshot-and-send with up to `attempts` tries. Skips (returning OK)
  /// when the session is unchanged since the last ack, unless `force`.
  Status ForwardCycle(bool force, int attempts, int deadline_ms);

  api::ServerSession* session_;
  const net::Endpoint upstream_;
  const RelayForwarderOptions options_;
  obs::RelayMetrics metrics_;  // all-null when options_.metrics is null

  /// Serializes whole forwarding cycles: the background thread and a
  /// caller's Flush never interleave on the connection.
  std::mutex cycle_mutex_;
  net::Socket socket_;       // guarded by cycle_mutex_
  std::string last_acked_;   // last snapshot bytes the upstream acked
  uint64_t next_seq_ = 1;

  mutable std::mutex mutex_;
  std::condition_variable wake_;
  std::thread thread_;
  RelayForwarderStats stats_;
  bool stop_ = false;
  bool stopped_ = false;
};

}  // namespace ldp::relay

#endif  // LDP_RELAY_FORWARDER_H_
