#include "relay/forwarder.h"

#include <chrono>
#include <utility>

#include "net/protocol.h"
#include "obs/journal.h"

namespace ldp::relay {

namespace {

// Bounds one backoff step: first -> doubling -> max.
int NextBackoff(int current_ms, const RelayForwarderOptions& options) {
  if (current_ms <= 0) return options.retry_backoff_ms;
  const int doubled = current_ms * 2;
  return doubled > options.max_backoff_ms ? options.max_backoff_ms : doubled;
}

}  // namespace

RelayForwarder::RelayForwarder(api::ServerSession* session,
                               net::Endpoint upstream,
                               RelayForwarderOptions options)
    : session_(session),
      upstream_(std::move(upstream)),
      options_(options),
      metrics_(obs::RelayMetrics::ForRegistry(options.metrics)) {}

Result<std::unique_ptr<RelayForwarder>> RelayForwarder::Start(
    api::ServerSession* session, const net::Endpoint& upstream,
    RelayForwarderOptions options) {
  if (session == nullptr) {
    return Status::InvalidArgument("relay forwarder needs a session");
  }
  if (options.interval_ms <= 0) {
    return Status::InvalidArgument("relay interval must be positive");
  }
  // Can't use make_unique: the constructor is private.
  std::unique_ptr<RelayForwarder> forwarder(
      new RelayForwarder(session, upstream, options));
  forwarder->thread_ = std::thread([raw = forwarder.get()] { raw->Run(); });
  return forwarder;
}

RelayForwarder::~RelayForwarder() { (void)Stop(/*final_flush=*/false); }

void RelayForwarder::Run() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stop_) {
    wake_.wait_for(lock, std::chrono::milliseconds(options_.interval_ms),
                   [&] { return stop_; });
    if (stop_) return;
    lock.unlock();
    // A background cycle gives up after a few attempts: the snapshot is
    // cumulative, so whatever this cycle missed the next one covers.
    (void)ForwardCycle(/*force=*/false, options_.attempts_per_cycle,
                       /*deadline_ms=*/0);
    lock.lock();
  }
}

Status RelayForwarder::SendOnce(const std::string& snapshot_bytes,
                                uint64_t seq) {
  if (!socket_.valid()) {
    Result<net::Socket> connected = net::ConnectSocket(upstream_);
    if (!connected.ok()) return connected.status();
    socket_ = std::move(connected).value();
    if (options_.idle_timeout_ms > 0) {
      LDP_RETURN_IF_ERROR(socket_.SetIdleTimeout(options_.idle_timeout_ms));
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.reconnects;
    }
    if (metrics_.enabled()) metrics_.reconnects->Increment();
  }
  net::SnapshotMessage message;
  message.node = options_.node_id;
  message.seq = seq;
  message.epoch = session_->current_epoch();
  message.snapshot_bytes = snapshot_bytes;
  std::string wire;
  LDP_RETURN_IF_ERROR(net::AppendMessage(net::MessageType::kSnapshot,
                                         net::EncodeSnapshot(message),
                                         &wire));
  LDP_RETURN_IF_ERROR(socket_.SendAll(wire));
  char prefix[net::kMessageHeaderBytes];
  Result<bool> got = socket_.RecvAll(prefix, sizeof(prefix),
                                     options_.idle_timeout_ms);
  if (!got.ok()) return got.status();
  if (!got.value()) return Status::IoError("upstream closed mid-handshake");
  Result<net::MessageHeader> header =
      net::DecodeMessageHeader(prefix, sizeof(prefix));
  if (!header.ok()) return header.status();
  std::string payload(header.value().payload_length, '\0');
  if (!payload.empty()) {
    Result<bool> body = socket_.RecvAll(payload.data(), payload.size(),
                                        options_.idle_timeout_ms);
    if (!body.ok()) return body.status();
    if (!body.value()) return Status::IoError("upstream closed mid-reply");
  }
  if (header.value().type == net::MessageType::kError) {
    Result<net::ErrorMessage> error = net::DecodeErrorMessage(payload);
    if (!error.ok()) return error.status();
    return net::StatusFromWire(error.value().code, error.value().message);
  }
  if (header.value().type != net::MessageType::kSnapshotOk) {
    return Status::Internal("upstream sent an unexpected reply type");
  }
  Result<net::SnapshotOkMessage> ok = net::DecodeSnapshotOk(payload);
  if (!ok.ok()) return ok.status();
  if (ok.value().node != options_.node_id || ok.value().seq != seq) {
    return Status::Internal("upstream acked the wrong snapshot");
  }
  return Status::OK();
}

Status RelayForwarder::ForwardCycle(bool force, int attempts,
                                    int deadline_ms) {
  std::lock_guard<std::mutex> cycle(cycle_mutex_);
  const std::string snapshot = session_->Snapshot();
  if (!force && snapshot == last_acked_) return Status::OK();
  const uint64_t seq = next_seq_++;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(deadline_ms > 0 ? deadline_ms : 0);
  int backoff_ms = 0;
  Status last = Status::OK();
  for (int attempt = 0; deadline_ms > 0 || attempt < attempts; ++attempt) {
    if (deadline_ms > 0 && std::chrono::steady_clock::now() >= deadline) {
      break;
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stop_ && !force) return Status::FailedPrecondition("stopping");
    }
    const uint64_t started_ns = metrics_.enabled() ? obs::SteadyNowNs() : 0;
    last = SendOnce(snapshot, seq);
    if (last.ok()) {
      last_acked_ = snapshot;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.snapshots_forwarded;
        stats_.bytes_forwarded += snapshot.size();
      }
      if (metrics_.enabled()) {
        metrics_.snapshots_forwarded->Increment();
        metrics_.bytes_forwarded->Add(snapshot.size());
        metrics_.forward_us->Observe((obs::SteadyNowNs() - started_ns) /
                                     1000);
      }
      if (options_.journal != nullptr) {
        options_.journal->Record(obs::EventKind::kSnapshotForward,
                                 options_.node_id, seq);
      }
      return Status::OK();
    }
    // Drop the connection: a failed exchange leaves it in an unknown
    // framing state, and redialing is cheap next to a snapshot ship.
    socket_.Close();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.forward_failures;
    }
    if (metrics_.enabled()) metrics_.forward_failures->Increment();
    backoff_ms = NextBackoff(backoff_ms, options_);
    std::unique_lock<std::mutex> lock(mutex_);
    wake_.wait_for(lock, std::chrono::milliseconds(backoff_ms),
                   [&] { return stop_ && !force; });
    if (stop_ && !force) return Status::FailedPrecondition("stopping");
  }
  return last.ok() ? Status::IoError("relay flush deadline elapsed") : last;
}

Status RelayForwarder::Flush() {
  return ForwardCycle(/*force=*/true, /*attempts=*/0,
                      options_.flush_timeout_ms);
}

Status RelayForwarder::Stop(bool final_flush) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopped_) return Status::OK();
    stop_ = true;
    stopped_ = true;
  }
  wake_.notify_all();
  if (thread_.joinable()) thread_.join();
  Status flushed = Status::OK();
  if (final_flush) flushed = Flush();
  socket_.Close();
  return flushed;
}

RelayForwarderStats RelayForwarder::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace ldp::relay
