// FrameWal: per-shard write-ahead durability for a networked collector.
//
// The collector's crash-safety problem is narrow: reporter randomness must
// never be re-drawn (re-randomization is a privacy leak, PAPER.md), so a
// crashed collector cannot ask devices to "just run the campaign again" —
// it must reconstruct exactly the state it had acknowledged. The inputs it
// acknowledged are bytes: the validated HELLO header and the accepted DATA
// payloads of each shard, plus the order shards merged in. So the WAL
// journals exactly those, upstream of ServerSession::Feed, one log file per
// shard attempt:
//
//   wal-e<epoch>-o<ordinal>-g<generation>.ldpw
//     u32 magic 'LDPW', u16 version, u32 epoch, u64 ordinal        (header)
//     then records:  u8 type, u32 len, u32 crc32(type||len||payload),
//                    payload
//       type 1  shard open: u16 reporter-id length, the reporter id, then
//               the stream-header bytes (the HELLO header). Version-1 logs
//               carried the bare header bytes; they replay as the
//               anonymous reporter.
//       type 2  accepted DATA payload (one record per DATA message)
//       type 3  close, payload = u64 close_seq (global merge order)
//       type 4  abandon (the shard contributed nothing)
//
// The reporter id rides in the log because replay must restore the
// per-reporter privacy ledger exactly: re-opening a shard charges the same
// (reporter, epoch) cell the live run charged, and the idempotent charge
// makes replay-after-replay exact rather than double-spending.
//
// `generation` disambiguates ordinal reuse (ad hoc mode may stream the
// same ordinal several times per epoch); `close_seq` is a single counter
// across the whole log so replay can reproduce the exact merge order the
// barrier chose, which is what keeps the replayed session bit-identical.
//
// Replay (FrameWal::Open on a non-empty directory) distinguishes two kinds
// of damage:
//   - a torn tail — an incomplete record at EOF, the normal crash artifact
//     of an interrupted write — is truncated away; the shard resumes from
//     its last complete record;
//   - a *complete* record whose CRC fails (or whose length is absurd) means
//     the file's framing can no longer be trusted: that shard alone is
//     poisoned (skipped, counted), every other shard replays normally.
//
// Shards the crash left open become resume entries: the restarted server
// re-attaches a reporter's HELLO to the replayed shard and tells it how
// many post-header bytes are already durable (net/protocol.h HELLO_OK).
//
// Durability scope: each record is one ::write, so a process crash
// (SIGKILL) loses at most the torn tail. Machine-crash durability needs
// Options::fsync, at a large per-record cost.

#ifndef LDP_RELAY_FRAME_WAL_H_
#define LDP_RELAY_FRAME_WAL_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "api/server_session.h"
#include "net/report_server.h"
#include "obs/metrics.h"
#include "stream/report_stream.h"
#include "util/result.h"
#include "util/status.h"

namespace ldp::obs {
class EventJournal;
}  // namespace ldp::obs

namespace ldp::relay {

/// CRC-32 (IEEE 802.3, reflected). Crc32("123456789") == 0xCBF43926.
uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0);

/// 'LDPW' little-endian.
inline constexpr uint32_t kWalMagic = 0x5750444cu;
/// Version 2 prefixes the kHeader record with the reporter id; version-1
/// logs are still replayed (as the anonymous reporter).
inline constexpr uint16_t kWalVersion = 2;
inline constexpr uint16_t kWalLegacyVersion = 1;

/// u8 type + u32 len + u32 crc.
inline constexpr size_t kWalRecordHeaderBytes = 9;
/// u32 magic + u16 version + u32 epoch + u64 ordinal.
inline constexpr size_t kWalFileHeaderBytes = 18;

enum class WalRecordType : uint8_t {
  kHeader = 1,
  kData = 2,
  kClose = 3,
  kAbandon = 4,
};

/// What a replay reconstructed — the restarted server's starting state.
struct WalReplaySummary {
  uint64_t shards_replayed = 0;  ///< Closed pre-crash, fed + closed again.
  uint64_t shards_resumed = 0;   ///< Open at the crash, left open to resume.
  uint64_t shards_corrupt = 0;   ///< Poisoned by a CRC/framing failure.
  uint64_t records = 0;          ///< Valid records read.
  uint64_t frames_replayed = 0;  ///< DATA records fed back to the session.
  uint64_t bytes_replayed = 0;   ///< DATA payload bytes fed back.
  uint64_t truncated_tails = 0;  ///< Torn tails cut off.
  /// Ordinal -> replayed open shard, for ReportServerOptions::resume_shards.
  std::unordered_map<uint64_t, net::ResumedShard> resume_shards;
  /// Ordinals already merged into the final epoch, for
  /// ReportServerOptions::completed_ordinals.
  std::set<uint64_t> completed_ordinals;
};

/// Replays every WAL file under `dir` into `session` (which must be fresh:
/// epoch 0, no shards, same pipeline configuration as the crashed run) and
/// truncates torn tails in place. `expected`, when non-null, poisons any
/// shard whose logged header is incompatible. Read-only apart from the
/// truncation; FrameWal::Open builds on this and then adopts the open
/// files. A missing directory replays as empty.
Status ReplayWalDir(const std::string& dir, api::ServerSession* session,
                    const stream::StreamHeader* expected,
                    obs::EventJournal* journal, WalReplaySummary* summary);

/// What PeekWalDir learns without replaying: the protocol header of the
/// first replayable shard and how many epochs the log spans.
struct WalDirPeek {
  std::string header_bytes;  ///< stream::StreamHeader wire form.
  uint32_t epochs = 1;       ///< max logged epoch + 1.
};

/// Sniffs a WAL directory's protocol — how ldp_aggregate sizes and
/// configures a session for it before replaying.
Result<WalDirPeek> PeekWalDir(const std::string& dir);

class FrameWal : public net::ShardDurabilityHook {
 public:
  struct Options {
    /// fsync every record: survives machine crashes, not just process
    /// crashes. Off by default (a per-record fsync is ruinous on the hot
    /// path and SIGKILL-durability doesn't need it).
    bool fsync = false;
    /// Validate replayed shard headers against this protocol (mismatches
    /// poison that shard). Must outlive the WAL when set.
    const stream::StreamHeader* expected = nullptr;
    obs::MetricsRegistry* metrics = nullptr;
    obs::EventJournal* journal = nullptr;
  };

  /// Creates `dir` if needed, replays whatever it holds into `session`
  /// (see ReplayWalDir), adopts the still-open shard files for continued
  /// appends, and returns the hook to wire into ReportServerOptions::wal.
  /// `summary` (optional) reports what the replay reconstructed — its
  /// resume_shards/completed_ordinals feed the server options.
  static Result<std::unique_ptr<FrameWal>> Open(const std::string& dir,
                                                api::ServerSession* session,
                                                Options options,
                                                WalReplaySummary* summary);

  ~FrameWal() override;

  FrameWal(const FrameWal&) = delete;
  FrameWal& operator=(const FrameWal&) = delete;

  // net::ShardDurabilityHook — called by ReportServer before the
  // corresponding session call.
  void OnShardOpen(size_t shard, uint64_t ordinal, uint32_t epoch,
                   const std::string& reporter_id,
                   const std::string& header_bytes) override;
  void OnShardData(size_t shard, const char* data, size_t size) override;
  void OnShardClose(size_t shard) override;
  void OnShardAbandon(size_t shard) override;

  const std::string& dir() const { return dir_; }

 private:
  FrameWal(std::string dir, Options options);

  /// Appends one CRC-framed record to `fd` as a single write.
  void AppendRecord(int fd, WalRecordType type, const void* payload,
                    size_t size);

  const std::string dir_;
  const Options options_;
  obs::WalMetrics metrics_;  // all-null when options_.metrics is null

  std::mutex mutex_;
  /// Open log files keyed by session shard id.
  std::unordered_map<size_t, int> fds_;
  /// Next generation per (epoch, ordinal) — continues past replayed files.
  std::map<std::pair<uint32_t, uint64_t>, uint32_t> next_generation_;
  /// Global close counter; replay closes in this order. Seeded past the
  /// largest replayed close_seq.
  uint64_t next_close_seq_ = 0;
};

}  // namespace ldp::relay

#endif  // LDP_RELAY_FRAME_WAL_H_
