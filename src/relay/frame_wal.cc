#include "relay/frame_wal.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <tuple>
#include <utility>

#include "obs/journal.h"
#include "util/check.h"

namespace ldp::relay {

namespace {

// Explicit little-endian (de)serialization — the on-disk format must not
// depend on host byte order.
void PutLe16(std::string* out, uint16_t v) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
}

void PutLe32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutLe64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

uint16_t LoadLe16(const char* p) {
  const unsigned char* u = reinterpret_cast<const unsigned char*>(p);
  return static_cast<uint16_t>(u[0] | (u[1] << 8));
}

uint32_t LoadLe32(const char* p) {
  const unsigned char* u = reinterpret_cast<const unsigned char*>(p);
  return static_cast<uint32_t>(u[0]) | (static_cast<uint32_t>(u[1]) << 8) |
         (static_cast<uint32_t>(u[2]) << 16) |
         (static_cast<uint32_t>(u[3]) << 24);
}

uint64_t LoadLe64(const char* p) {
  return static_cast<uint64_t>(LoadLe32(p)) |
         (static_cast<uint64_t>(LoadLe32(p + 4)) << 32);
}

// A record's length field larger than this means the framing is garbage,
// not merely torn: DATA payloads are bounded at 4 MiB by the wire protocol
// and every other record type is tiny.
constexpr uint32_t kMaxWalRecordPayload = 8u << 20;

std::string WalFileName(uint32_t epoch, uint64_t ordinal,
                        uint32_t generation) {
  char name[96];
  std::snprintf(name, sizeof(name),
                "wal-e%05u-o%05" PRIu64 "-g%05u.ldpw", epoch, ordinal,
                generation);
  return name;
}

// One shard attempt as reconstructed from its log file.
struct Instance {
  uint32_t epoch = 0;
  uint64_t ordinal = 0;
  uint32_t generation = 0;
  std::string path;
  std::string reporter_id;  // empty = anonymous (and all version-1 logs)
  std::string header_bytes;
  std::vector<std::string> chunks;  // DATA payloads, in append order
  uint64_t data_bytes = 0;
  bool closed = false;
  uint64_t close_seq = 0;
  bool abandoned = false;
  bool corrupt = false;
  // Set by ReplayInstances when this instance became a resumed shard; the
  // adopting FrameWal appends to exactly this file under that shard id.
  bool resumed = false;
  size_t session_shard = 0;

  // Feed-order key; close order uses close_seq instead.
  std::tuple<uint32_t, uint64_t, uint32_t> key() const {
    return {epoch, ordinal, generation};
  }
};

// Parses one WAL file into an Instance. A torn tail (incomplete record at
// EOF — the normal crash artifact) stops the parse and, with `truncate`,
// is cut off in place so the file can be appended to again; a *complete*
// record that fails its CRC, an absurd length, or a malformed fixed field
// marks the instance corrupt — its framing can't be trusted.
Status ReadInstance(const std::string& path, bool truncate,
                    Instance* instance, uint64_t* truncated_tails,
                    uint64_t* records, WalReplaySummary* summary) {
  std::string bytes;
  {
    FILE* file = std::fopen(path.c_str(), "rb");
    if (file == nullptr) {
      return Status::IoError("cannot open WAL file " + path);
    }
    char buffer[1 << 16];
    size_t got = 0;
    while ((got = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
      bytes.append(buffer, got);
    }
    std::fclose(file);
  }
  if (bytes.size() < kWalFileHeaderBytes) {
    // The file header itself was torn: an attempt that never got its first
    // record. Nothing to replay.
    ++*truncated_tails;
    instance->abandoned = true;
    return Status::OK();
  }
  if (LoadLe32(bytes.data()) != kWalMagic) {
    instance->corrupt = true;
    return Status::OK();
  }
  const uint16_t version = LoadLe16(bytes.data() + 4);
  if (version != kWalVersion && version != kWalLegacyVersion) {
    instance->corrupt = true;
    return Status::OK();
  }
  const uint32_t epoch = LoadLe32(bytes.data() + 6);
  const uint64_t ordinal = LoadLe64(bytes.data() + 10);
  if (epoch != instance->epoch || ordinal != instance->ordinal) {
    // The name (our only source of `generation`) disagrees with the file.
    instance->corrupt = true;
    return Status::OK();
  }

  size_t cursor = kWalFileHeaderBytes;
  while (cursor < bytes.size()) {
    if (bytes.size() - cursor < kWalRecordHeaderBytes) break;  // torn tail
    const uint8_t type = static_cast<uint8_t>(bytes[cursor]);
    const uint32_t length = LoadLe32(bytes.data() + cursor + 1);
    const uint32_t stored_crc = LoadLe32(bytes.data() + cursor + 5);
    if (length > kMaxWalRecordPayload) {
      instance->corrupt = true;
      return Status::OK();
    }
    if (bytes.size() - cursor - kWalRecordHeaderBytes < length) {
      break;  // torn tail: the payload never finished landing
    }
    const char* payload = bytes.data() + cursor + kWalRecordHeaderBytes;
    uint32_t crc = Crc32(bytes.data() + cursor, 5);  // type || len
    crc = Crc32(payload, length, crc);
    if (crc != stored_crc) {
      instance->corrupt = true;
      return Status::OK();
    }
    switch (static_cast<WalRecordType>(type)) {
      case WalRecordType::kHeader:
        if (!instance->header_bytes.empty()) {
          instance->corrupt = true;
          return Status::OK();
        }
        if (version == kWalLegacyVersion) {
          // v1: the payload is the bare stream header (anonymous reporter).
          instance->header_bytes.assign(payload, length);
        } else {
          // v2: u16 reporter-id length, the id, then the stream header.
          if (length < 2) {
            instance->corrupt = true;
            return Status::OK();
          }
          const uint16_t id_length = LoadLe16(payload);
          if (static_cast<size_t>(2) + id_length > length) {
            instance->corrupt = true;
            return Status::OK();
          }
          instance->reporter_id.assign(payload + 2, id_length);
          instance->header_bytes.assign(payload + 2 + id_length,
                                        length - 2 - id_length);
        }
        break;
      case WalRecordType::kData:
        instance->chunks.emplace_back(payload, length);
        instance->data_bytes += length;
        break;
      case WalRecordType::kClose:
        if (length != 8) {
          instance->corrupt = true;
          return Status::OK();
        }
        instance->closed = true;
        instance->close_seq = LoadLe64(payload);
        break;
      case WalRecordType::kAbandon:
        instance->abandoned = true;
        break;
      default:
        instance->corrupt = true;
        return Status::OK();
    }
    ++*records;
    if (summary != nullptr) ++summary->records;
    cursor += kWalRecordHeaderBytes + length;
    if (instance->closed || instance->abandoned) break;  // terminal records
  }
  if (cursor < bytes.size()) {
    ++*truncated_tails;
    if (truncate && ::truncate(path.c_str(), static_cast<off_t>(cursor)) !=
                        0) {
      return Status::IoError("cannot truncate torn WAL tail in " + path);
    }
  }
  return Status::OK();
}

// Loads every wal-*.ldpw under `dir`, sorted by (epoch, ordinal,
// generation). A missing directory scans as empty.
Status ScanWalDir(const std::string& dir, bool truncate,
                  std::vector<Instance>* instances,
                  WalReplaySummary* summary) {
  DIR* handle = ::opendir(dir.c_str());
  if (handle == nullptr) {
    if (errno == ENOENT) return Status::OK();
    return Status::IoError("cannot open WAL directory " + dir);
  }
  std::vector<Instance> found;
  while (struct dirent* entry = ::readdir(handle)) {
    unsigned epoch = 0;
    unsigned long long ordinal = 0;
    unsigned generation = 0;
    char suffix[8] = {0};
    if (std::sscanf(entry->d_name, "wal-e%u-o%llu-g%u.ldp%4s", &epoch,
                    &ordinal, &generation, suffix) != 4 ||
        std::strcmp(suffix, "w") != 0) {
      continue;  // not ours
    }
    Instance instance;
    instance.epoch = static_cast<uint32_t>(epoch);
    instance.ordinal = static_cast<uint64_t>(ordinal);
    instance.generation = static_cast<uint32_t>(generation);
    instance.path = dir + "/" + entry->d_name;
    found.push_back(std::move(instance));
  }
  ::closedir(handle);
  std::sort(found.begin(), found.end(),
            [](const Instance& a, const Instance& b) {
              return a.key() < b.key();
            });
  for (Instance& instance : found) {
    uint64_t tails = 0;
    uint64_t records = 0;
    LDP_RETURN_IF_ERROR(ReadInstance(instance.path, truncate, &instance,
                                     &tails, &records, summary));
    if (summary != nullptr) summary->truncated_tails += tails;
    instances->push_back(std::move(instance));
  }
  return Status::OK();
}

// Feeds the scanned instances back into a fresh session, reproducing the
// pre-crash merge order exactly. See the header comment for the rules;
// `max_close_seq` (optional) reports the largest replayed close sequence
// so continued appends keep the counter monotone.
//
// One deliberate gap: epoch advances are implied by shard files, so an
// ADVANCE_EPOCH the crash interrupted before any shard opened in the new
// epoch is not yet durable — the restarted campaign re-requests it.
Status ReplayInstances(std::vector<Instance>* instances,
                       api::ServerSession* session,
                       const stream::StreamHeader* expected,
                       obs::EventJournal* journal, WalReplaySummary* summary,
                       uint64_t* max_close_seq) {
  uint32_t final_epoch = 0;
  for (const Instance& instance : *instances) {
    final_epoch = std::max(final_epoch, instance.epoch);
  }
  // Highest non-corrupt generation per (epoch, ordinal): an unclosed,
  // unmarked instance that a newer generation superseded was implicitly
  // abandoned (the server reused the ordinal, so the old attempt died).
  std::map<std::pair<uint32_t, uint64_t>, uint32_t> highest_generation;
  for (const Instance& instance : *instances) {
    if (instance.corrupt) continue;
    auto& slot = highest_generation[{instance.epoch, instance.ordinal}];
    slot = std::max(slot, instance.generation);
  }

  struct Fed {
    const Instance* instance;
    size_t shard;
  };
  size_t index = 0;
  while (index < instances->size()) {
    const uint32_t epoch = (*instances)[index].epoch;
    while (session->current_epoch() < epoch) {
      LDP_RETURN_IF_ERROR(session->AdvanceEpoch());
    }
    std::vector<Fed> closed;
    for (; index < instances->size() && (*instances)[index].epoch == epoch;
         ++index) {
      Instance& instance = (*instances)[index];
      if (instance.corrupt) {
        ++summary->shards_corrupt;
        if (journal != nullptr) {
          journal->Record(obs::EventKind::kWalCorrupt, instance.ordinal,
                          instance.epoch);
        }
        continue;
      }
      if (instance.abandoned || instance.header_bytes.empty()) continue;
      const bool is_resume =
          !instance.closed && epoch == final_epoch &&
          instance.generation ==
              highest_generation[{instance.epoch, instance.ordinal}];
      if (!instance.closed && !is_resume) continue;  // implicitly abandoned
      if (expected != nullptr) {
        Result<stream::StreamHeader> peer =
            stream::DecodeStreamHeader(instance.header_bytes);
        const Status compatible =
            peer.ok() ? stream::CheckHeadersCompatible(*expected, peer.value())
                      : peer.status();
        if (!compatible.ok()) {
          ++summary->shards_corrupt;
          if (journal != nullptr) {
            journal->Record(obs::EventKind::kWalCorrupt, instance.ordinal,
                            instance.epoch);
          }
          continue;
        }
      }
      // Re-opening restores the reporter's idempotent per-epoch charge; a
      // refusal here means the log asks for spend the budget cannot cover
      // (tampering, or a mismatched session) — poison that shard alone.
      Result<size_t> opened = session->OpenShard(instance.reporter_id);
      if (!opened.ok()) {
        ++summary->shards_corrupt;
        if (journal != nullptr) {
          journal->Record(obs::EventKind::kWalCorrupt, instance.ordinal,
                          instance.epoch);
        }
        continue;
      }
      const size_t shard = opened.value();
      Status fed = session->Feed(shard, instance.header_bytes);
      for (const std::string& chunk : instance.chunks) {
        if (!fed.ok()) break;
        fed = session->Feed(shard, chunk.data(), chunk.size());
        ++summary->frames_replayed;
        summary->bytes_replayed += chunk.size();
      }
      if (!fed.ok() && !instance.closed) {
        // The crash interrupted a stream that was already poisoning its
        // shard; the live path would have abandoned it.
        (void)session->AbandonShard(shard);
        ++summary->shards_corrupt;
        if (journal != nullptr) {
          journal->Record(obs::EventKind::kWalCorrupt, instance.ordinal,
                          instance.epoch);
        }
        continue;
      }
      if (instance.closed) {
        closed.push_back({&instance, shard});
      } else {
        summary->resume_shards[instance.ordinal] =
            net::ResumedShard{shard, instance.data_bytes};
        instance.resumed = true;
        instance.session_shard = shard;
        ++summary->shards_resumed;
      }
    }
    // Close in the exact order the merge barrier chose pre-crash — the
    // step that keeps the replayed session bit-identical.
    std::sort(closed.begin(), closed.end(), [](const Fed& a, const Fed& b) {
      return a.instance->close_seq < b.instance->close_seq;
    });
    for (const Fed& fed : closed) {
      // A shard the original run closed as discarded replays as discarded:
      // same bytes, same verdict. The status is not an error here.
      (void)session->CloseShard(fed.shard);
      ++summary->shards_replayed;
      if (max_close_seq != nullptr) {
        *max_close_seq = std::max(*max_close_seq, fed.instance->close_seq);
      }
      if (epoch == final_epoch) {
        summary->completed_ordinals.insert(fed.instance->ordinal);
      }
      if (journal != nullptr) {
        journal->Record(obs::EventKind::kWalReplay, fed.instance->ordinal,
                        epoch);
      }
    }
  }
  return Status::OK();
}

}  // namespace

uint32_t Crc32(const void* data, size_t size, uint32_t seed) {
  // IEEE 802.3 reflected polynomial, byte-at-a-time table.
  static const uint32_t* table = [] {
    static uint32_t entries[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) ? 0xEDB88320u : 0u);
      }
      entries[i] = crc;
    }
    return entries;
  }();
  uint32_t crc = ~seed;
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < size; ++i) {
    crc = (crc >> 8) ^ table[(crc ^ bytes[i]) & 0xffu];
  }
  return ~crc;
}

Status ReplayWalDir(const std::string& dir, api::ServerSession* session,
                    const stream::StreamHeader* expected,
                    obs::EventJournal* journal, WalReplaySummary* summary) {
  WalReplaySummary local;
  if (summary == nullptr) summary = &local;
  std::vector<Instance> instances;
  LDP_RETURN_IF_ERROR(ScanWalDir(dir, /*truncate=*/true, &instances,
                                 summary));
  return ReplayInstances(&instances, session, expected, journal, summary,
                         nullptr);
}

Result<WalDirPeek> PeekWalDir(const std::string& dir) {
  std::vector<Instance> instances;
  WalReplaySummary summary;
  LDP_RETURN_IF_ERROR(ScanWalDir(dir, /*truncate=*/false, &instances,
                                 &summary));
  WalDirPeek peek;
  for (const Instance& instance : instances) {
    if (instance.corrupt || instance.header_bytes.empty()) continue;
    if (peek.header_bytes.empty()) peek.header_bytes = instance.header_bytes;
    peek.epochs = std::max(peek.epochs, instance.epoch + 1);
  }
  if (peek.header_bytes.empty()) {
    return Status::NotFound("no replayable WAL shard in " + dir);
  }
  return peek;
}

FrameWal::FrameWal(std::string dir, Options options)
    : dir_(std::move(dir)),
      options_(options),
      metrics_(obs::WalMetrics::ForRegistry(options.metrics)) {}

FrameWal::~FrameWal() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [shard, fd] : fds_) ::close(fd);
  fds_.clear();
}

Result<std::unique_ptr<FrameWal>> FrameWal::Open(const std::string& dir,
                                                 api::ServerSession* session,
                                                 Options options,
                                                 WalReplaySummary* summary) {
  if (session == nullptr) {
    return Status::InvalidArgument("frame WAL needs a session");
  }
  if (::mkdir(dir.c_str(), 0775) != 0 && errno != EEXIST) {
    return Status::IoError("cannot create WAL directory " + dir);
  }
  WalReplaySummary local;
  if (summary == nullptr) summary = &local;
  std::vector<Instance> instances;
  LDP_RETURN_IF_ERROR(ScanWalDir(dir, /*truncate=*/true, &instances,
                                 summary));
  uint64_t max_close_seq = 0;
  LDP_RETURN_IF_ERROR(ReplayInstances(&instances, session, options.expected,
                                      options.journal, summary,
                                      &max_close_seq));
  std::unique_ptr<FrameWal> wal(new FrameWal(dir, options));
  wal->next_close_seq_ = summary->shards_replayed > 0 ? max_close_seq + 1 : 0;
  for (const Instance& instance : instances) {
    auto& slot = wal->next_generation_[{instance.epoch, instance.ordinal}];
    slot = std::max(slot, instance.generation + 1);
  }
  // Adopt the files behind resumed shards: their next DATA records append
  // where the pre-crash log left off (the torn tail is already truncated).
  for (const Instance& instance : instances) {
    if (!instance.resumed) continue;
    const int fd =
        ::open(instance.path.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC);
    if (fd < 0) {
      return Status::IoError("cannot reopen WAL file " + instance.path);
    }
    wal->fds_[instance.session_shard] = fd;
  }
  if (wal->metrics_.enabled()) {
    wal->metrics_.replayed_frames->Add(summary->frames_replayed);
    wal->metrics_.replayed_bytes->Add(summary->bytes_replayed);
    wal->metrics_.replayed_shards->Add(summary->shards_replayed);
    wal->metrics_.resumed_shards->Add(summary->shards_resumed);
    wal->metrics_.torn_tails->Add(summary->truncated_tails);
    wal->metrics_.corrupt_shards->Add(summary->shards_corrupt);
  }
  return wal;
}

void FrameWal::AppendRecord(int fd, WalRecordType type, const void* payload,
                            size_t size) {
  const uint64_t started_ns = metrics_.enabled() ? obs::SteadyNowNs() : 0;
  std::string record;
  record.reserve(kWalRecordHeaderBytes + size);
  record.push_back(static_cast<char>(type));
  PutLe32(&record, static_cast<uint32_t>(size));
  uint32_t crc = Crc32(record.data(), 5);
  crc = Crc32(payload, size, crc);
  PutLe32(&record, crc);
  if (size > 0) record.append(static_cast<const char*>(payload), size);
  // One write per record: a SIGKILL can tear only the final record, which
  // replay truncates away. Short writes are retried (disk-full aside, a
  // regular-file write only shortens on signals).
  size_t sent = 0;
  while (sent < record.size()) {
    const ssize_t wrote =
        ::write(fd, record.data() + sent, record.size() - sent);
    LDP_CHECK_MSG(wrote > 0, "WAL append failed — refusing to ack frames "
                             "that are not durable");
    sent += static_cast<size_t>(wrote);
  }
  if (options_.fsync) ::fsync(fd);
  if (metrics_.enabled()) {
    metrics_.records->Increment();
    metrics_.bytes->Add(record.size());
    metrics_.append_us->Observe((obs::SteadyNowNs() - started_ns) / 1000);
  }
}

void FrameWal::OnShardOpen(size_t shard, uint64_t ordinal, uint32_t epoch,
                           const std::string& reporter_id,
                           const std::string& header_bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  const uint32_t generation = next_generation_[{epoch, ordinal}]++;
  const std::string path = dir_ + "/" + WalFileName(epoch, ordinal,
                                                    generation);
  const int fd = ::open(path.c_str(),
                        O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  LDP_CHECK_MSG(fd >= 0, "cannot create WAL file");
  // File header first, in its own write: a tear between header and first
  // record leaves a truncated-header file, which replays as an empty
  // attempt.
  std::string head;
  PutLe32(&head, kWalMagic);
  PutLe16(&head, kWalVersion);
  PutLe32(&head, epoch);
  PutLe64(&head, ordinal);
  size_t sent = 0;
  while (sent < head.size()) {
    const ssize_t wrote = ::write(fd, head.data() + sent, head.size() - sent);
    LDP_CHECK_MSG(wrote > 0, "WAL file header write failed");
    sent += static_cast<size_t>(wrote);
  }
  std::string open_payload;
  PutLe16(&open_payload, static_cast<uint16_t>(reporter_id.size()));
  open_payload.append(reporter_id);
  open_payload.append(header_bytes);
  AppendRecord(fd, WalRecordType::kHeader, open_payload.data(),
               open_payload.size());
  fds_[shard] = fd;
}

void FrameWal::OnShardData(size_t shard, const char* data, size_t size) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = fds_.find(shard);
  if (it == fds_.end()) return;
  AppendRecord(it->second, WalRecordType::kData, data, size);
}

void FrameWal::OnShardClose(size_t shard) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = fds_.find(shard);
  if (it == fds_.end()) return;
  std::string payload;
  PutLe64(&payload, next_close_seq_++);
  AppendRecord(it->second, WalRecordType::kClose, payload.data(),
               payload.size());
  ::close(it->second);
  fds_.erase(it);
}

void FrameWal::OnShardAbandon(size_t shard) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = fds_.find(shard);
  if (it == fds_.end()) return;
  AppendRecord(it->second, WalRecordType::kAbandon, nullptr, 0);
  ::close(it->second);
  fds_.erase(it);
}

}  // namespace ldp::relay
