#include "core/scaler.h"

#include <cmath>

#include "util/math.h"

namespace ldp {

Result<DomainScaler> DomainScaler::Create(double lo, double hi) {
  if (!std::isfinite(lo) || !std::isfinite(hi)) {
    return Status::InvalidArgument("domain bounds must be finite");
  }
  if (lo >= hi) {
    return Status::InvalidArgument("domain must satisfy lo < hi");
  }
  return DomainScaler(lo, hi);
}

double DomainScaler::ToCanonical(double x) const {
  return Clamp((x - mid_) / half_width_, -1.0, 1.0);
}

double DomainScaler::FromCanonical(double y) const {
  return y * half_width_ + mid_;
}

}  // namespace ldp
