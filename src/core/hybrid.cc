#include "core/hybrid.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/math.h"

namespace ldp {

double HybridMechanism::OptimalAlpha(double epsilon) {
  if (epsilon <= EpsilonStar()) return 0.0;
  return 1.0 - std::exp(-epsilon / 2.0);
}

double HybridMechanism::OptimalWorstCaseVariance(double epsilon) {
  const double e_half = std::exp(epsilon / 2.0);
  const double e_full = std::exp(epsilon);
  if (epsilon <= EpsilonStar()) {
    const double b = (e_full + 1.0) / (e_full - 1.0);
    return b * b;
  }
  return (e_half + 3.0) / (3.0 * e_half * (e_half - 1.0)) +
         (e_full + 1.0) * (e_full + 1.0) /
             (e_half * (e_full - 1.0) * (e_full - 1.0));
}

HybridMechanism::HybridMechanism(double epsilon)
    : HybridMechanism(epsilon, OptimalAlpha(epsilon)) {}

HybridMechanism::HybridMechanism(double epsilon, double alpha)
    : epsilon_(epsilon), alpha_(alpha), pm_(epsilon), duchi_(epsilon) {
  LDP_CHECK_MSG(ValidateEpsilon(epsilon).ok(), "epsilon must be positive/finite");
  LDP_CHECK_MSG(alpha >= 0.0 && alpha <= 1.0, "alpha must be in [0, 1]");
}

double HybridMechanism::Perturb(double t, Rng* rng) const {
  LDP_DCHECK(t >= -1.0 && t <= 1.0);
  if (rng->Bernoulli(alpha_)) return pm_.Perturb(t, rng);
  return duchi_.Perturb(t, rng);
}

double HybridMechanism::Variance(double t) const {
  // Both components are unbiased at t, so the mixture variance is the convex
  // combination of the component variances.
  return alpha_ * pm_.Variance(t) + (1.0 - alpha_) * duchi_.Variance(t);
}

double HybridMechanism::WorstCaseVariance() const {
  // Var(t) is quadratic in t² with coefficient α/(e^{ε/2}−1) − (1−α); the
  // maximum over [-1, 1] is at |t| = 1 when that coefficient is positive and
  // at t = 0 otherwise. (At the optimal α it is exactly 0.)
  return std::max(Variance(0.0), Variance(1.0));
}

double HybridMechanism::OutputBound() const {
  // PM emits in [-C, C]; Duchi emits ±(e^ε+1)/(e^ε−1) < C. When α = 0 only
  // the Duchi component is ever invoked.
  return alpha_ > 0.0 ? pm_.OutputBound() : duchi_.OutputBound();
}

}  // namespace ldp
