#include "core/accountant.h"

#include <cmath>

namespace ldp {

namespace {

// Absorbs floating-point drift when users spend exactly their budget across
// several charges.
constexpr double kSlack = 1e-12;

}  // namespace

Result<PrivacyAccountant> PrivacyAccountant::Create(double lifetime_budget) {
  if (!(std::isfinite(lifetime_budget) && lifetime_budget > 0.0)) {
    return Status::InvalidArgument(
        "lifetime budget must be finite and positive");
  }
  return PrivacyAccountant(lifetime_budget);
}

Status PrivacyAccountant::Charge(uint64_t user, double epsilon) {
  if (!(std::isfinite(epsilon) && epsilon > 0.0)) {
    return Status::InvalidArgument("charge must be finite and positive");
  }
  double& spent = spent_[user];
  if (spent + epsilon > lifetime_budget_ + kSlack) {
    return Status::FailedPrecondition(
        "charge would exceed the user's lifetime budget");
  }
  spent += epsilon;
  return Status::OK();
}

double PrivacyAccountant::Remaining(uint64_t user) const {
  const auto it = spent_.find(user);
  const double spent = it == spent_.end() ? 0.0 : it->second;
  return std::max(0.0, lifetime_budget_ - spent);
}

double PrivacyAccountant::Spent(uint64_t user) const {
  const auto it = spent_.find(user);
  return it == spent_.end() ? 0.0 : it->second;
}

bool PrivacyAccountant::CanCharge(uint64_t user, double epsilon) const {
  if (!(std::isfinite(epsilon) && epsilon > 0.0)) return false;
  return Spent(user) + epsilon <= lifetime_budget_ + kSlack;
}

}  // namespace ldp
