#include "core/accountant.h"

#include <algorithm>
#include <cmath>

namespace ldp {

namespace {

// Absorbs floating-point drift when reporters spend exactly their budget
// across several charges.
constexpr double kSlack = 1e-12;

}  // namespace

Result<PrivacyAccountant> PrivacyAccountant::Create(double lifetime_budget) {
  if (!(std::isfinite(lifetime_budget) && lifetime_budget > 0.0)) {
    return Status::InvalidArgument(
        "lifetime budget must be finite and positive");
  }
  return PrivacyAccountant(lifetime_budget);
}

Result<ChargeOutcome> PrivacyAccountant::Charge(const std::string& reporter,
                                                uint32_t epoch,
                                                double epsilon) {
  if (!(std::isfinite(epsilon) && epsilon > 0.0)) {
    return Status::InvalidArgument("charge must be finite and positive");
  }
  Ledger& ledger = ledgers_[reporter];
  ChargeOutcome outcome;
  if (ledger.epoch_spend.count(epoch) > 0) {
    // Idempotent repeat: the epoch is already paid for — a reconnect, an
    // extra shard, or a second relay edge, never a second spend.
    outcome.accepted = true;
  } else if (ledger.spent + epsilon > lifetime_budget_ + kSlack) {
    outcome.accepted = false;
    ++ledger.refusals;
  } else {
    ledger.epoch_spend[epoch] = epsilon;
    ledger.spent += epsilon;
    outcome.accepted = true;
  }
  outcome.spent = ledger.spent;
  outcome.remaining = std::max(0.0, lifetime_budget_ - ledger.spent);
  outcome.refusals = ledger.refusals;
  return outcome;
}

double PrivacyAccountant::Remaining(const std::string& reporter) const {
  return std::max(0.0, lifetime_budget_ - Spent(reporter));
}

double PrivacyAccountant::Spent(const std::string& reporter) const {
  const auto it = ledgers_.find(reporter);
  return it == ledgers_.end() ? 0.0 : it->second.spent;
}

uint64_t PrivacyAccountant::Refusals(const std::string& reporter) const {
  const auto it = ledgers_.find(reporter);
  return it == ledgers_.end() ? 0 : it->second.refusals;
}

bool PrivacyAccountant::CanCharge(const std::string& reporter,
                                  double epsilon) const {
  if (!(std::isfinite(epsilon) && epsilon > 0.0)) return false;
  return Spent(reporter) + epsilon <= lifetime_budget_ + kSlack;
}

uint64_t PrivacyAccountant::total_refusals() const {
  uint64_t total = 0;
  for (const auto& [reporter, ledger] : ledgers_) total += ledger.refusals;
  return total;
}

Status PrivacyAccountant::RestoreCharge(const std::string& reporter,
                                        uint32_t epoch, double epsilon) {
  if (!(std::isfinite(epsilon) && epsilon > 0.0)) {
    return Status::InvalidArgument("restored charge must be finite and "
                                   "positive");
  }
  Ledger& ledger = ledgers_[reporter];
  const auto it = ledger.epoch_spend.find(epoch);
  if (it != ledger.epoch_spend.end()) {
    if (it->second != epsilon) {
      return Status::FailedPrecondition(
          "per-reporter ledgers disagree about an epoch's spend");
    }
    return Status::OK();
  }
  ledger.epoch_spend[epoch] = epsilon;
  ledger.spent += epsilon;
  return Status::OK();
}

void PrivacyAccountant::RestoreRefusals(const std::string& reporter,
                                        uint64_t refusals) {
  if (refusals == 0) return;
  ledgers_[reporter].refusals += refusals;
}

Status PrivacyAccountant::MergeFrom(const PrivacyAccountant& other) {
  for (const auto& [reporter, ledger] : other.ledgers_) {
    for (const auto& [epoch, epsilon] : ledger.epoch_spend) {
      LDP_RETURN_IF_ERROR(RestoreCharge(reporter, epoch, epsilon));
    }
    RestoreRefusals(reporter, ledger.refusals);
  }
  return Status::OK();
}

}  // namespace ldp
