// Closed-form variance analysis for every mechanism in the paper, in both the
// one-dimensional setting (Lemma 1, Eq. 4, Eq. 8) and the d-dimensional
// Algorithm-4 setting (Eqs. 13–15). These are the formulas behind Table I,
// Fig. 1 and Fig. 3; tests cross-check them against Monte-Carlo simulation of
// the actual mechanisms.

#ifndef LDP_CORE_VARIANCE_H_
#define LDP_CORE_VARIANCE_H_

#include <cstdint>
#include <string>

namespace ldp {

// ---------------------------------------------------------------------------
// One-dimensional closed forms (budget ε, input t ∈ [-1, 1]).
// ---------------------------------------------------------------------------

/// Laplace: Var = 8/ε² for every input.
double LaplaceVariance(double epsilon);

/// Duchi-1D (Eq. 4): Var(t) = ((e^ε+1)/(e^ε−1))² − t².
double DuchiVariance(double epsilon, double t);

/// Duchi-1D worst case, attained at t = 0.
double DuchiWorstCaseVariance(double epsilon);

/// PM (Lemma 1): Var(t) = t²/(e^{ε/2}−1) + (e^{ε/2}+3)/(3(e^{ε/2}−1)²).
double PiecewiseVariance(double epsilon, double t);

/// PM worst case 4e^{ε/2}/(3(e^{ε/2}−1)²), attained at |t| = 1.
double PiecewiseWorstCaseVariance(double epsilon);

/// HM with the optimal α of Eq. 7; input-independent for ε > ε*.
double HybridVariance(double epsilon, double t);

/// HM worst case (Eq. 8).
double HybridWorstCaseVariance(double epsilon);

// ---------------------------------------------------------------------------
// d-dimensional closed forms (total budget ε, per-coordinate input tj).
// Algorithm 4 reports k = max(1, min(d, ⌊ε/2.5⌋)) attributes with budget ε/k
// each, scaled by d/k; Duchi's Algorithm 3 reports all coordinates as ±B.
// ---------------------------------------------------------------------------

/// The Algorithm-4 sampling parameter k (Eq. 12).
uint32_t AttributeSampleCount(double epsilon, uint32_t dimension);

/// Duchi multi-dim (Eq. 13): Var = B² − tj², B = C_d (e^ε+1)/(e^ε−1).
double DuchiMultiVariance(double epsilon, uint32_t dimension, double tj);

/// Duchi multi-dim worst case, attained at tj = 0.
double DuchiMultiWorstCaseVariance(double epsilon, uint32_t dimension);

/// Algorithm 4 with PM (Eq. 14).
double SampledPiecewiseVariance(double epsilon, uint32_t dimension, double tj);

/// Algorithm 4 with PM, worst case (|tj| = 1).
double SampledPiecewiseWorstCaseVariance(double epsilon, uint32_t dimension);

/// Algorithm 4 with HM (Eq. 15; the ε/k ≤ ε* branch uses the derived form
/// (d/k)·B₁² − tj² — see DESIGN.md for the discrepancy with the paper text).
double SampledHybridVariance(double epsilon, uint32_t dimension, double tj);

/// Algorithm 4 with HM, worst case.
double SampledHybridWorstCaseVariance(double epsilon, uint32_t dimension);

// ---------------------------------------------------------------------------
// Table I: the regime classification of worst-case variances.
// ---------------------------------------------------------------------------

/// The strict ordering of {HM, PM, Duchi} worst-case variances predicted by
/// Table I for the given setting, e.g. "HM < PM < Duchi" or
/// "HM = Duchi < PM". Defined for d ≥ 1 and ε > 0.
std::string TableOneRegime(double epsilon, uint32_t dimension);

}  // namespace ldp

#endif  // LDP_CORE_VARIANCE_H_
