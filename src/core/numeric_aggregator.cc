#include "core/numeric_aggregator.h"

#include <cmath>
#include <utility>

#include "util/check.h"

namespace ldp {

NumericAggregator::NumericAggregator(const SampledNumericMechanism* mechanism)
    : mechanism_(mechanism) {
  LDP_CHECK(mechanism != nullptr);
  attribute_reports_.assign(mechanism_->dimension(), 0);
  sums_.assign(mechanism_->dimension(), 0.0);
}

Result<NumericAggregator> NumericAggregator::FromParts(
    const SampledNumericMechanism* mechanism, uint64_t num_reports,
    std::vector<uint64_t> attribute_reports, std::vector<double> sums) {
  LDP_CHECK(mechanism != nullptr);
  const uint32_t d = mechanism->dimension();
  if (attribute_reports.size() != d || sums.size() != d) {
    return Status::InvalidArgument(
        "aggregator state vectors must have one entry per attribute");
  }
  for (uint32_t j = 0; j < d; ++j) {
    if (attribute_reports[j] > num_reports) {
      return Status::InvalidArgument(
          "attribute report count exceeds the total report count");
    }
    if (!std::isfinite(sums[j])) {
      return Status::InvalidArgument("non-finite numeric sum");
    }
  }
  NumericAggregator aggregator(mechanism);
  aggregator.num_reports_ = num_reports;
  aggregator.attribute_reports_ = std::move(attribute_reports);
  aggregator.sums_ = std::move(sums);
  return aggregator;
}

void NumericAggregator::Add(const SampledNumericReport& report) {
  OnReportBegin(static_cast<uint32_t>(report.size()));
  for (const SampledValue& entry : report) {
    OnEntry(entry.attribute, entry.value);
  }
}

void NumericAggregator::OnReportBegin(uint32_t /*entry_count*/) {
  ++num_reports_;
}

void NumericAggregator::OnEntry(uint32_t attribute, double value) {
  LDP_DCHECK(attribute < mechanism_->dimension());
  ++attribute_reports_[attribute];
  sums_[attribute] += value;
}

Status NumericAggregator::Merge(const NumericAggregator& other) {
  if (mechanism_ != other.mechanism_ &&
      (mechanism_->epsilon() != other.mechanism_->epsilon() ||
       mechanism_->dimension() != other.mechanism_->dimension() ||
       mechanism_->k() != other.mechanism_->k())) {
    return Status::FailedPrecondition(
        "cannot merge aggregators built from incompatible mechanisms");
  }
  num_reports_ += other.num_reports_;
  for (uint32_t j = 0; j < mechanism_->dimension(); ++j) {
    attribute_reports_[j] += other.attribute_reports_[j];
    sums_[j] += other.sums_[j];
  }
  return Status::OK();
}

Result<double> NumericAggregator::EstimateMean(uint32_t attribute) const {
  if (attribute >= mechanism_->dimension()) {
    return Status::OutOfRange("attribute index out of range");
  }
  if (num_reports_ == 0) return 0.0;
  // Algorithm 4's estimator: average of the dense (zero-padded) reports.
  return sums_[attribute] / static_cast<double>(num_reports_);
}

std::vector<double> NumericAggregator::EstimateAllMeans() const {
  std::vector<double> means(mechanism_->dimension(), 0.0);
  for (uint32_t j = 0; j < mechanism_->dimension(); ++j) {
    means[j] = EstimateMean(j).value();
  }
  return means;
}

}  // namespace ldp
