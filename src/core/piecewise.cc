#include "core/piecewise.h"

#include <cmath>

#include "util/check.h"
#include "util/math.h"
#include "util/sampling.h"

namespace ldp {

PiecewiseMechanism::PiecewiseMechanism(double epsilon) : epsilon_(epsilon) {
  LDP_CHECK_MSG(ValidateEpsilon(epsilon).ok(), "epsilon must be positive/finite");
  const double e_half = std::exp(epsilon_ / 2.0);
  c_ = (e_half + 1.0) / (e_half - 1.0);
  high_density_ = (std::exp(epsilon_) - e_half) / (2.0 * e_half + 2.0);
  center_prob_ = e_half / (e_half + 1.0);
}

double PiecewiseMechanism::CenterLeft(double t) const {
  return (c_ + 1.0) / 2.0 * t - (c_ - 1.0) / 2.0;
}

double PiecewiseMechanism::CenterRight(double t) const {
  return CenterLeft(t) + c_ - 1.0;
}

double PiecewiseMechanism::Perturb(double t, Rng* rng) const {
  LDP_DCHECK(t >= -1.0 && t <= 1.0);
  const double l = CenterLeft(t);
  const double r = CenterRight(t);
  if (rng->Uniform01() < center_prob_) {
    return rng->Uniform(l, r);
  }
  // The side pieces [-C, ℓ) and (r, C]; one of them is empty when |t| = 1.
  return UniformFromTwoIntervals(-c_, l, r, c_, rng);
}

double PiecewiseMechanism::OutputPdf(double t, double x) const {
  LDP_DCHECK(t >= -1.0 && t <= 1.0);
  if (x < -c_ || x > c_) return 0.0;
  const double l = CenterLeft(t);
  const double r = CenterRight(t);
  if (x >= l && x <= r) return high_density_;
  return high_density_ / std::exp(epsilon_);
}

double PiecewiseMechanism::Variance(double t) const {
  const double e_half = std::exp(epsilon_ / 2.0);
  return t * t / (e_half - 1.0) +
         (e_half + 3.0) / (3.0 * (e_half - 1.0) * (e_half - 1.0));
}

double PiecewiseMechanism::WorstCaseVariance() const {
  // Variance(t) is increasing in t², so the maximum is at |t| = 1, where it
  // simplifies to 4 e^{ε/2} / (3 (e^{ε/2} - 1)²).
  const double e_half = std::exp(epsilon_ / 2.0);
  return 4.0 * e_half / (3.0 * (e_half - 1.0) * (e_half - 1.0));
}

}  // namespace ldp
