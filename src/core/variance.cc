#include "core/variance.h"

#include <algorithm>
#include <cmath>

#include "baselines/duchi_multi_dim.h"
#include "core/hybrid.h"
#include "util/check.h"
#include "util/math.h"

namespace ldp {

double LaplaceVariance(double epsilon) { return 8.0 / (epsilon * epsilon); }

double DuchiVariance(double epsilon, double t) {
  const double b = (std::exp(epsilon) + 1.0) / (std::exp(epsilon) - 1.0);
  return b * b - t * t;
}

double DuchiWorstCaseVariance(double epsilon) {
  return DuchiVariance(epsilon, 0.0);
}

double PiecewiseVariance(double epsilon, double t) {
  const double e_half = std::exp(epsilon / 2.0);
  return t * t / (e_half - 1.0) +
         (e_half + 3.0) / (3.0 * (e_half - 1.0) * (e_half - 1.0));
}

double PiecewiseWorstCaseVariance(double epsilon) {
  const double e_half = std::exp(epsilon / 2.0);
  return 4.0 * e_half / (3.0 * (e_half - 1.0) * (e_half - 1.0));
}

double HybridVariance(double epsilon, double t) {
  const double alpha = HybridMechanism::OptimalAlpha(epsilon);
  return alpha * PiecewiseVariance(epsilon, t) +
         (1.0 - alpha) * DuchiVariance(epsilon, t);
}

double HybridWorstCaseVariance(double epsilon) {
  return HybridMechanism::OptimalWorstCaseVariance(epsilon);
}

uint32_t AttributeSampleCount(double epsilon, uint32_t dimension) {
  LDP_DCHECK(dimension >= 1);
  const uint32_t by_budget =
      static_cast<uint32_t>(std::max(0.0, std::floor(epsilon / 2.5)));
  return std::max(1u, std::min(dimension, by_budget));
}

double DuchiMultiVariance(double epsilon, uint32_t dimension, double tj) {
  const double cd = DuchiMultiDimMechanism::ComputeCd(dimension);
  const double b =
      cd * (std::exp(epsilon) + 1.0) / (std::exp(epsilon) - 1.0);
  return b * b - tj * tj;
}

double DuchiMultiWorstCaseVariance(double epsilon, uint32_t dimension) {
  return DuchiMultiVariance(epsilon, dimension, 0.0);
}

double SampledPiecewiseVariance(double epsilon, uint32_t dimension, double tj) {
  const uint32_t k = AttributeSampleCount(epsilon, dimension);
  const double d_over_k = static_cast<double>(dimension) / k;
  const double eps_k = epsilon / k;
  // Var = (d/k)(σ²_PM(tj; ε/k) + tj²) − tj², which expands to Eq. 14.
  return d_over_k * (PiecewiseVariance(eps_k, tj) + tj * tj) - tj * tj;
}

double SampledPiecewiseWorstCaseVariance(double epsilon, uint32_t dimension) {
  // The tj² coefficient (d/k)·e^{ε/2k}/(e^{ε/2k}−1) − 1 is positive for all
  // d ≥ k ≥ 1, so the maximum is at |tj| = 1.
  return SampledPiecewiseVariance(epsilon, dimension, 1.0);
}

double SampledHybridVariance(double epsilon, uint32_t dimension, double tj) {
  const uint32_t k = AttributeSampleCount(epsilon, dimension);
  const double d_over_k = static_cast<double>(dimension) / k;
  const double eps_k = epsilon / k;
  // Var = (d/k)(σ²_HM(tj; ε/k) + tj²) − tj². For ε/k > ε*, σ²_HM is the
  // input-independent Eq.-8 value and this matches Eq. 15's first branch; for
  // ε/k ≤ ε*, σ²_HM(tj) = B₁² − tj² and the expression collapses to
  // (d/k)·B₁² − tj² (the derived form documented in DESIGN.md).
  return d_over_k * (HybridVariance(eps_k, tj) + tj * tj) - tj * tj;
}

double SampledHybridWorstCaseVariance(double epsilon, uint32_t dimension) {
  const uint32_t k = AttributeSampleCount(epsilon, dimension);
  // For ε/k > ε* the tj² coefficient is d/k − 1 ≥ 0 (max at |tj| = 1); for
  // ε/k ≤ ε* the coefficient is −1 (max at tj = 0).
  if (epsilon / k > EpsilonStar()) {
    return SampledHybridVariance(epsilon, dimension, 1.0);
  }
  return SampledHybridVariance(epsilon, dimension, 0.0);
}

std::string TableOneRegime(double epsilon, uint32_t dimension) {
  LDP_DCHECK(dimension >= 1);
  if (dimension > 1) {
    // Corollary 2: HM < PM < Duchi for every d > 1 and ε > 0.
    return "HM < PM < Duchi";
  }
  const double sharp = EpsilonSharp();
  const double star = EpsilonStar();
  constexpr double kTol = 1e-9;
  if (epsilon > sharp + kTol) return "HM < PM < Duchi";
  if (std::abs(epsilon - sharp) <= kTol) return "HM < PM = Duchi";
  if (epsilon > star + kTol) return "HM < Duchi < PM";
  return "HM = Duchi < PM";
}

}  // namespace ldp
