// Section IV-C: the extension of Algorithm 4 to tuples mixing numeric and
// categorical attributes — the first LDP collector that handles both under a
// single budget without per-attribute splitting.
//
// Each user samples k = max(1, min(d, ⌊ε/2.5⌋)) of her d attributes. A
// sampled numeric attribute is perturbed with PM/HM at budget ε/k and scaled
// by d/k (exactly as in Algorithm 4); a sampled categorical attribute is
// perturbed with a frequency oracle (OUE by default, the paper's choice) at
// budget ε/k. The aggregator estimates
//   - the mean of numeric attribute j as (1/n) Σ_i reported_scaled_value, and
//   - the frequency of value v of categorical attribute j as
//     (d/(k·n)) · (debiased support of v over the reports that sampled j),
// both unbiased (Lemma 4 and the Section IV-C estimator).

#ifndef LDP_CORE_MIXED_COLLECTOR_H_
#define LDP_CORE_MIXED_COLLECTOR_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "core/mechanism.h"
#include "frequency/frequency_oracle.h"
#include "util/random.h"
#include "util/result.h"

namespace ldp {

/// Type tag of one attribute in a mixed tuple.
enum class AttributeType {
  kNumeric,      ///< Value in [-1, 1].
  kCategorical,  ///< Value in {0, ..., domain_size-1}.
};

/// Describes one attribute of the tuples being collected.
struct MixedAttribute {
  AttributeType type = AttributeType::kNumeric;
  /// Number of distinct values; meaningful for categorical attributes only.
  uint32_t domain_size = 0;

  static MixedAttribute Numeric() { return {AttributeType::kNumeric, 0}; }
  static MixedAttribute Categorical(uint32_t domain_size) {
    return {AttributeType::kCategorical, domain_size};
  }
};

/// One attribute value of a mixed tuple: numeric attributes read `numeric`,
/// categorical attributes read `category`.
struct AttributeValue {
  double numeric = 0.0;
  uint32_t category = 0;

  static AttributeValue Numeric(double v) { return {v, 0}; }
  static AttributeValue Categorical(uint32_t v) { return {0.0, v}; }
};

/// A full user tuple: one AttributeValue per schema attribute.
using MixedTuple = std::vector<AttributeValue>;

/// One sampled attribute inside a privatized mixed report.
struct MixedReportEntry {
  uint32_t attribute = 0;
  /// d/k-scaled noisy value (numeric attributes).
  double numeric_value = 0.0;
  /// Oracle report (categorical attributes).
  FrequencyOracle::Report categorical_report;
};

/// A user's privatized report: exactly k sampled attributes.
using MixedReport = std::vector<MixedReportEntry>;

/// Streaming consumer of one validated mixed report, entry by entry. This is
/// the allocation-free counterpart of materializing a MixedReport: the wire
/// decoder (core/wire.h MixedFrameDecoder) validates a whole frame first and
/// then replays its entries into a sink, so implementations never see a
/// partially valid report. MixedAggregator implements this interface —
/// streaming a report into it is exactly equivalent to Add().
class MixedReportSink {
 public:
  virtual ~MixedReportSink() = default;

  /// Called once per report, before any entry, with the entry count.
  virtual void OnReportBegin(uint32_t entry_count) = 0;

  /// One sampled numeric attribute: the d/k-scaled noisy value.
  virtual void OnNumericEntry(uint32_t attribute, double value) = 0;

  /// One sampled categorical attribute. `payload` is only valid for the
  /// duration of the call (it aliases decoder scratch).
  virtual void OnCategoricalEntry(uint32_t attribute,
                                  const FrequencyOracle::Report& payload) = 0;
};

/// The client half of the Section IV-C protocol.
///
/// Thread-safety: immutable after construction; share across threads with one
/// Rng per thread.
class MixedTupleCollector {
 public:
  /// Builds a collector for the given schema and total budget ε.
  /// `numeric_kind` is the scalar mechanism for numeric attributes (HM in the
  /// paper's experiments); `categorical_kind` is the frequency oracle for
  /// categorical attributes (OUE in the paper). Fails on an empty schema, a
  /// bad budget, or a categorical attribute with fewer than 2 values.
  static Result<MixedTupleCollector> Create(
      std::vector<MixedAttribute> schema, double epsilon,
      MechanismKind numeric_kind = MechanismKind::kHybrid,
      FrequencyOracleKind categorical_kind = FrequencyOracleKind::kOue);

  /// Perturbs one user tuple (size d, numeric coordinates in [-1, 1],
  /// categorical coordinates within their domains) into a k-entry report.
  MixedReport Perturb(const MixedTuple& tuple, Rng* rng) const;

  double epsilon() const { return epsilon_; }
  uint32_t dimension() const { return static_cast<uint32_t>(schema_.size()); }

  /// The number of attributes each user reports (Eq. 12).
  uint32_t k() const { return k_; }

  /// The scalar-mechanism kind used for numeric attributes.
  MechanismKind numeric_kind() const { return numeric_kind_; }

  /// The frequency-oracle kind used for categorical attributes.
  FrequencyOracleKind categorical_kind() const { return categorical_kind_; }

  /// True when `other` describes the same protocol: equal schema (dimension,
  /// per-attribute type and domain), budget, sample count and mechanism /
  /// oracle kinds. Reports and aggregator state are interchangeable between
  /// compatible collectors, which is what lets shards produced by separate
  /// processes be merged.
  bool CompatibleWith(const MixedTupleCollector& other) const;

  /// The per-attribute budget ε/k.
  double per_attribute_epsilon() const { return per_attribute_epsilon_; }

  /// The collection schema.
  const std::vector<MixedAttribute>& schema() const { return schema_; }

  /// The scalar mechanism shared by all numeric attributes.
  const ScalarMechanism& scalar_mechanism() const { return *scalar_; }

  /// The oracle used for categorical attribute `attribute`; null for numeric
  /// attributes.
  const FrequencyOracle* oracle_for(uint32_t attribute) const {
    return oracles_[attribute].get();
  }

 private:
  MixedTupleCollector(
      std::vector<MixedAttribute> schema, double epsilon, uint32_t k,
      MechanismKind numeric_kind, FrequencyOracleKind categorical_kind,
      std::shared_ptr<const ScalarMechanism> scalar,
      std::vector<std::shared_ptr<const FrequencyOracle>> oracles)
      : schema_(std::move(schema)),
        epsilon_(epsilon),
        k_(k),
        per_attribute_epsilon_(epsilon / k),
        numeric_kind_(numeric_kind),
        categorical_kind_(categorical_kind),
        scalar_(std::move(scalar)),
        oracles_(std::move(oracles)) {}

  std::vector<MixedAttribute> schema_;
  double epsilon_;
  uint32_t k_;
  double per_attribute_epsilon_;
  MechanismKind numeric_kind_;
  FrequencyOracleKind categorical_kind_;
  std::shared_ptr<const ScalarMechanism> scalar_;
  // One oracle per attribute (null at numeric positions); oracles with equal
  // domain sizes are shared.
  std::vector<std::shared_ptr<const FrequencyOracle>> oracles_;
};

/// The server half: accumulates MixedReports and produces estimates.
///
/// Implements MixedReportSink so the streaming wire decoder can fold a
/// report in without materializing it: OnReportBegin + one On*Entry call per
/// entry is bit-identical to Add() on the equivalent MixedReport.
class MixedAggregator : public MixedReportSink {
 public:
  /// `collector` must outlive the aggregator (it borrows the schema and the
  /// oracles to decode reports).
  explicit MixedAggregator(const MixedTupleCollector* collector);

  /// Rebuilds an aggregator from previously captured state (the inverse of
  /// the num_reports / attribute_report_counts / numeric_sums / supports
  /// accessors, used by the snapshot codec). Validates every vector length
  /// against `collector`'s schema and that all values are finite.
  static Result<MixedAggregator> FromParts(
      const MixedTupleCollector* collector, uint64_t num_reports,
      std::vector<uint64_t> attribute_reports,
      std::vector<double> numeric_sums,
      std::vector<std::vector<double>> supports);

  /// Folds in one user's report.
  void Add(const MixedReport& report);

  /// MixedReportSink: streaming equivalent of Add, used by the zero-copy
  /// ingest path. Callers must issue OnReportBegin exactly once per report
  /// followed by its entries (the wire decoder guarantees this).
  void OnReportBegin(uint32_t entry_count) override;
  void OnNumericEntry(uint32_t attribute, double value) override;
  void OnCategoricalEntry(uint32_t attribute,
                          const FrequencyOracle::Report& payload) override;

  /// Merges another aggregator. The two aggregators must be built from the
  /// same collector or from CompatibleWith collectors (equal schema, budget,
  /// sample count and mechanism/oracle kinds); returns FailedPrecondition
  /// otherwise and leaves this aggregator untouched.
  Status Merge(const MixedAggregator& other);

  /// Unbiased mean estimate of numeric attribute `attribute`; fails if the
  /// attribute is categorical.
  Result<double> EstimateMean(uint32_t attribute) const;

  /// Unbiased frequency estimates for every value of categorical attribute
  /// `attribute`; fails if the attribute is numeric. Entries may fall outside
  /// [0, 1]; see EstimateFrequenciesProjected for consistent estimates.
  Result<std::vector<double>> EstimateFrequencies(uint32_t attribute) const;

  /// EstimateFrequencies post-processed by Euclidean projection onto the
  /// probability simplex: non-negative, sums to 1 (slightly biased, usually
  /// lower error on skewed histograms).
  Result<std::vector<double>> EstimateFrequenciesProjected(
      uint32_t attribute) const;

  /// Mean estimates for all numeric attributes, indexed by attribute; entries
  /// at categorical positions are 0.
  std::vector<double> EstimateAllMeans() const;

  /// Number of reports accumulated.
  uint64_t num_reports() const { return num_reports_; }

  /// Number of reports that sampled `attribute`.
  uint64_t attribute_report_count(uint32_t attribute) const {
    return attribute_reports_[attribute];
  }

  /// Raw accumulated state, exposed so aggregator snapshots can be
  /// serialised for cross-process shard merging (stream/snapshot.h).
  const std::vector<uint64_t>& attribute_report_counts() const {
    return attribute_reports_;
  }
  const std::vector<double>& numeric_sums() const { return numeric_sums_; }
  const std::vector<std::vector<double>>& supports() const {
    return supports_;
  }

  /// The collector this aggregator was built from.
  const MixedTupleCollector* collector() const { return collector_; }

 private:
  const MixedTupleCollector* collector_;
  uint64_t num_reports_ = 0;
  std::vector<uint64_t> attribute_reports_;   // reports sampling each attr
  std::vector<double> numeric_sums_;          // Σ scaled noisy values
  std::vector<std::vector<double>> supports_;  // per-categorical supports
};

}  // namespace ldp

#endif  // LDP_CORE_MIXED_COLLECTOR_H_
