#include "core/mechanism.h"

#include <cmath>

#include "baselines/duchi_one_dim.h"
#include "baselines/laplace.h"
#include "baselines/scdf.h"
#include "baselines/staircase.h"
#include "core/hybrid.h"
#include "core/piecewise.h"

namespace ldp {

const char* MechanismKindToString(MechanismKind kind) {
  switch (kind) {
    case MechanismKind::kLaplace:
      return "Laplace";
    case MechanismKind::kScdf:
      return "SCDF";
    case MechanismKind::kStaircase:
      return "Staircase";
    case MechanismKind::kDuchi:
      return "Duchi";
    case MechanismKind::kPiecewise:
      return "PM";
    case MechanismKind::kHybrid:
      return "HM";
  }
  return "Unknown";
}

Status ValidateEpsilon(double epsilon) {
  if (!std::isfinite(epsilon)) {
    return Status::InvalidArgument("privacy budget must be finite");
  }
  if (epsilon <= 0.0) {
    return Status::InvalidArgument("privacy budget must be positive");
  }
  return Status::OK();
}

Result<std::unique_ptr<ScalarMechanism>> MakeScalarMechanism(
    MechanismKind kind, double epsilon) {
  LDP_RETURN_IF_ERROR(ValidateEpsilon(epsilon));
  switch (kind) {
    case MechanismKind::kLaplace:
      return std::unique_ptr<ScalarMechanism>(new LaplaceMechanism(epsilon));
    case MechanismKind::kScdf:
      return std::unique_ptr<ScalarMechanism>(new ScdfMechanism(epsilon));
    case MechanismKind::kStaircase:
      return std::unique_ptr<ScalarMechanism>(new StaircaseMechanism(epsilon));
    case MechanismKind::kDuchi:
      return std::unique_ptr<ScalarMechanism>(new DuchiOneDimMechanism(epsilon));
    case MechanismKind::kPiecewise:
      return std::unique_ptr<ScalarMechanism>(new PiecewiseMechanism(epsilon));
    case MechanismKind::kHybrid:
      return std::unique_ptr<ScalarMechanism>(new HybridMechanism(epsilon));
  }
  return Status::InvalidArgument("unknown mechanism kind");
}

}  // namespace ldp
