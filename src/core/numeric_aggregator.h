// Server half of Algorithm 4: accumulates SampledNumericReports and produces
// the paper's mean estimates (the plain average of the implicitly zero-padded
// reports). This is the numeric-stream counterpart of MixedAggregator: it
// implements a streaming sink interface so the zero-copy wire decoder
// (core/wire.h NumericFrameDecoder) can fold a validated frame in without
// materializing a report, and its accumulated state is a plain sum, so
// shards aggregated on separate machines merge associatively.
//
// Bit-compatibility contract: on an all-numeric schema the Section IV-C
// mixed collector and Algorithm 4 draw the same randomness and accumulate
// the same doubles in the same order, so a NumericAggregator over
// Algorithm-4 reports reproduces MixedAggregator's numeric sums and mean
// estimates bit for bit (tested in tests/numeric_stream_test.cc).

#ifndef LDP_CORE_NUMERIC_AGGREGATOR_H_
#define LDP_CORE_NUMERIC_AGGREGATOR_H_

#include <cstdint>
#include <vector>

#include "core/sampled_numeric.h"
#include "util/result.h"

namespace ldp {

/// Streaming consumer of one validated Algorithm-4 report, entry by entry —
/// the numeric counterpart of MixedReportSink. The wire decoder validates a
/// whole frame first and then replays its entries, so implementations never
/// see a partially valid report. NumericAggregator implements this
/// interface; streaming a report into it is exactly equivalent to Add().
class NumericReportSink {
 public:
  virtual ~NumericReportSink() = default;

  /// Called once per report, before any entry, with the entry count.
  virtual void OnReportBegin(uint32_t entry_count) = 0;

  /// One sampled attribute: the d/k-scaled noisy value.
  virtual void OnEntry(uint32_t attribute, double value) = 0;
};

/// Accumulates Algorithm-4 reports and estimates per-attribute means.
class NumericAggregator : public NumericReportSink {
 public:
  /// `mechanism` must outlive the aggregator (it supplies dimension, k, ε —
  /// the compatibility surface for Merge).
  explicit NumericAggregator(const SampledNumericMechanism* mechanism);

  /// Rebuilds an aggregator from previously captured state (the inverse of
  /// the accessors below; used by the snapshot codec). Validates vector
  /// lengths against the mechanism's dimension and that sums are finite.
  static Result<NumericAggregator> FromParts(
      const SampledNumericMechanism* mechanism, uint64_t num_reports,
      std::vector<uint64_t> attribute_reports, std::vector<double> sums);

  /// Folds in one user's report.
  void Add(const SampledNumericReport& report);

  /// NumericReportSink: streaming equivalent of Add, used by the zero-copy
  /// ingest path. Callers must issue OnReportBegin exactly once per report
  /// followed by its entries (the wire decoder guarantees this).
  void OnReportBegin(uint32_t entry_count) override;
  void OnEntry(uint32_t attribute, double value) override;

  /// Merges another aggregator built from the same or an equivalent
  /// mechanism (equal ε, dimension and k); FailedPrecondition otherwise.
  Status Merge(const NumericAggregator& other);

  /// Unbiased mean estimate of attribute `attribute` (Algorithm 4's
  /// estimator: the average of the zero-padded reports).
  Result<double> EstimateMean(uint32_t attribute) const;

  /// Mean estimates for every attribute, indexed by attribute.
  std::vector<double> EstimateAllMeans() const;

  /// Number of reports accumulated.
  uint64_t num_reports() const { return num_reports_; }

  /// Raw accumulated state, exposed for the snapshot codec.
  const std::vector<uint64_t>& attribute_report_counts() const {
    return attribute_reports_;
  }
  const std::vector<double>& sums() const { return sums_; }

  /// The mechanism this aggregator was built from.
  const SampledNumericMechanism* mechanism() const { return mechanism_; }

 private:
  const SampledNumericMechanism* mechanism_;
  uint64_t num_reports_ = 0;
  std::vector<uint64_t> attribute_reports_;  // reports sampling each attr
  std::vector<double> sums_;                 // Σ scaled noisy values
};

}  // namespace ldp

#endif  // LDP_CORE_NUMERIC_AGGREGATOR_H_
