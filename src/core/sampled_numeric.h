// Algorithm 4: the paper's collector for d-dimensional numeric tuples.
//
// Instead of splitting the budget ε across all d attributes (which costs
// O(d √log d / (ε √n)) error), each user samples k = max(1, min(d, ⌊ε/2.5⌋))
// attributes without replacement, perturbs each with a scalar mechanism at
// budget ε/k, and scales the noisy value by d/k. Reporting k attributes at
// ε/k each satisfies ε-LDP by composition, and the d/k scaling makes every
// coordinate of the (implicitly zero-padded) output an unbiased estimate of
// the corresponding input. The resulting estimation error is the
// asymptotically optimal O(√(d log d) / (ε √n)) (Lemma 5) with a smaller
// constant than Duchi et al.'s Algorithm 3 (Corollary 2).

#ifndef LDP_CORE_SAMPLED_NUMERIC_H_
#define LDP_CORE_SAMPLED_NUMERIC_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "core/mechanism.h"
#include "util/random.h"
#include "util/result.h"

namespace ldp {

/// One sampled attribute of a numeric report: the attribute index and the
/// d/k-scaled noisy value.
struct SampledValue {
  uint32_t attribute;
  double value;
};

/// A user's Algorithm-4 report: exactly k sampled attributes. The implicit
/// dense form has zeros at the unsampled positions.
using SampledNumericReport = std::vector<SampledValue>;

/// Algorithm 4 for tuples in [-1, 1]^d, parameterised by the scalar
/// mechanism used per attribute (PM or HM in the paper; any MechanismKind is
/// accepted, which the ablation benchmarks exploit).
///
/// Thread-safety: immutable after construction; share one instance across
/// threads with one Rng per thread.
class SampledNumericMechanism {
 public:
  /// Builds the collector. Fails for a non-positive/non-finite budget or a
  /// zero dimension.
  static Result<SampledNumericMechanism> Create(MechanismKind kind,
                                                double epsilon,
                                                uint32_t dimension);

  /// As Create, but overrides the Eq.-12 sample count with an explicit k in
  /// [1, dimension]; used by the k-ablation benchmark.
  static Result<SampledNumericMechanism> CreateWithSampleCount(
      MechanismKind kind, double epsilon, uint32_t dimension, uint32_t k);

  /// Perturbs a tuple with all coordinates in [-1, 1] into the sparse report
  /// of k (attribute, scaled noisy value) pairs.
  SampledNumericReport Perturb(const std::vector<double>& tuple,
                               Rng* rng) const;

  /// Dense convenience form: the report expanded to a length-d vector with
  /// zeros at unsampled positions, so the aggregator's mean estimator is the
  /// plain average over users.
  std::vector<double> PerturbDense(const std::vector<double>& tuple,
                                   Rng* rng) const;

  double epsilon() const { return epsilon_; }
  uint32_t dimension() const { return dimension_; }

  /// The number of attributes each user reports (Eq. 12 unless overridden).
  uint32_t k() const { return k_; }

  /// The per-attribute budget ε/k.
  double per_attribute_epsilon() const { return per_attribute_epsilon_; }

  /// The scalar mechanism applied to each sampled attribute.
  const ScalarMechanism& scalar_mechanism() const { return *scalar_; }

  /// Closed-form per-coordinate variance of the dense output at input
  /// coordinate value `tj`: (d/k)·(σ²(tj; ε/k) + tj²) − tj² (Eqs. 14–15 for
  /// PM/HM).
  double CoordinateVariance(double tj) const;

  /// max over tj ∈ [-1, 1] of CoordinateVariance.
  double WorstCaseCoordinateVariance() const;

 private:
  SampledNumericMechanism(std::unique_ptr<ScalarMechanism> scalar,
                          double epsilon, uint32_t dimension, uint32_t k)
      : scalar_(std::move(scalar)),
        epsilon_(epsilon),
        dimension_(dimension),
        k_(k),
        per_attribute_epsilon_(epsilon / k) {}

  std::shared_ptr<const ScalarMechanism> scalar_;  // shared: class is copyable
  double epsilon_;
  uint32_t dimension_;
  uint32_t k_;
  double per_attribute_epsilon_;
};

}  // namespace ldp

#endif  // LDP_CORE_SAMPLED_NUMERIC_H_
