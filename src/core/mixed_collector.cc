#include "core/mixed_collector.h"

#include <cmath>
#include <map>

#include "core/variance.h"
#include "frequency/histogram.h"
#include "util/check.h"
#include "util/sampling.h"

namespace ldp {

Result<MixedTupleCollector> MixedTupleCollector::Create(
    std::vector<MixedAttribute> schema, double epsilon,
    MechanismKind numeric_kind, FrequencyOracleKind categorical_kind) {
  if (schema.empty()) {
    return Status::InvalidArgument("schema must have at least one attribute");
  }
  LDP_RETURN_IF_ERROR(ValidateEpsilon(epsilon));
  const uint32_t dimension = static_cast<uint32_t>(schema.size());
  const uint32_t k = AttributeSampleCount(epsilon, dimension);
  const double per_attribute_epsilon = epsilon / k;

  std::unique_ptr<ScalarMechanism> scalar;
  LDP_ASSIGN_OR_RETURN(scalar,
                       MakeScalarMechanism(numeric_kind, per_attribute_epsilon));

  // Attributes with equal domain sizes share one oracle instance.
  std::map<uint32_t, std::shared_ptr<const FrequencyOracle>> oracle_cache;
  std::vector<std::shared_ptr<const FrequencyOracle>> oracles(dimension);
  for (uint32_t j = 0; j < dimension; ++j) {
    if (schema[j].type != AttributeType::kCategorical) continue;
    const uint32_t domain = schema[j].domain_size;
    auto it = oracle_cache.find(domain);
    if (it == oracle_cache.end()) {
      std::unique_ptr<FrequencyOracle> oracle;
      LDP_ASSIGN_OR_RETURN(oracle,
                           MakeFrequencyOracle(categorical_kind,
                                               per_attribute_epsilon, domain));
      it = oracle_cache.emplace(domain, std::move(oracle)).first;
    }
    oracles[j] = it->second;
  }
  return MixedTupleCollector(std::move(schema), epsilon, k, numeric_kind,
                             categorical_kind,
                             std::shared_ptr<const ScalarMechanism>(
                                 std::move(scalar)),
                             std::move(oracles));
}

bool MixedTupleCollector::CompatibleWith(
    const MixedTupleCollector& other) const {
  if (this == &other) return true;
  if (schema_.size() != other.schema_.size() || epsilon_ != other.epsilon_ ||
      k_ != other.k_ || numeric_kind_ != other.numeric_kind_ ||
      categorical_kind_ != other.categorical_kind_) {
    return false;
  }
  for (size_t j = 0; j < schema_.size(); ++j) {
    if (schema_[j].type != other.schema_[j].type) return false;
    if (schema_[j].type == AttributeType::kCategorical &&
        schema_[j].domain_size != other.schema_[j].domain_size) {
      return false;
    }
  }
  return true;
}

MixedReport MixedTupleCollector::Perturb(const MixedTuple& tuple,
                                         Rng* rng) const {
  LDP_CHECK(tuple.size() == schema_.size());
  const double scale = static_cast<double>(dimension()) / k_;
  const std::vector<uint32_t> sampled =
      SampleWithoutReplacement(dimension(), k_, rng);
  MixedReport report;
  report.reserve(k_);
  for (const uint32_t attribute : sampled) {
    MixedReportEntry entry;
    entry.attribute = attribute;
    if (schema_[attribute].type == AttributeType::kNumeric) {
      const double t = tuple[attribute].numeric;
      LDP_DCHECK(t >= -1.0 && t <= 1.0);
      entry.numeric_value = scale * scalar_->Perturb(t, rng);
    } else {
      const uint32_t v = tuple[attribute].category;
      LDP_DCHECK(v < schema_[attribute].domain_size);
      entry.categorical_report = oracles_[attribute]->Perturb(v, rng);
    }
    report.push_back(std::move(entry));
  }
  return report;
}

MixedAggregator::MixedAggregator(const MixedTupleCollector* collector)
    : collector_(collector) {
  LDP_CHECK(collector != nullptr);
  const uint32_t d = collector_->dimension();
  attribute_reports_.assign(d, 0);
  numeric_sums_.assign(d, 0.0);
  supports_.resize(d);
  for (uint32_t j = 0; j < d; ++j) {
    if (collector_->schema()[j].type == AttributeType::kCategorical) {
      supports_[j].assign(collector_->schema()[j].domain_size, 0.0);
    }
  }
}

void MixedAggregator::Add(const MixedReport& report) {
  OnReportBegin(static_cast<uint32_t>(report.size()));
  for (const MixedReportEntry& entry : report) {
    LDP_DCHECK(entry.attribute < collector_->dimension());
    if (collector_->schema()[entry.attribute].type == AttributeType::kNumeric) {
      OnNumericEntry(entry.attribute, entry.numeric_value);
    } else {
      OnCategoricalEntry(entry.attribute, entry.categorical_report);
    }
  }
}

void MixedAggregator::OnReportBegin(uint32_t /*entry_count*/) {
  ++num_reports_;
}

void MixedAggregator::OnNumericEntry(uint32_t attribute, double value) {
  LDP_DCHECK(attribute < collector_->dimension());
  ++attribute_reports_[attribute];
  numeric_sums_[attribute] += value;
}

void MixedAggregator::OnCategoricalEntry(
    uint32_t attribute, const FrequencyOracle::Report& payload) {
  LDP_DCHECK(attribute < collector_->dimension());
  ++attribute_reports_[attribute];
  collector_->oracle_for(attribute)->Accumulate(payload,
                                                &supports_[attribute]);
}

Result<MixedAggregator> MixedAggregator::FromParts(
    const MixedTupleCollector* collector, uint64_t num_reports,
    std::vector<uint64_t> attribute_reports, std::vector<double> numeric_sums,
    std::vector<std::vector<double>> supports) {
  LDP_CHECK(collector != nullptr);
  const uint32_t d = collector->dimension();
  if (attribute_reports.size() != d || numeric_sums.size() != d ||
      supports.size() != d) {
    return Status::InvalidArgument(
        "aggregator state vectors must have one entry per attribute");
  }
  for (uint32_t j = 0; j < d; ++j) {
    const MixedAttribute& spec = collector->schema()[j];
    const size_t expected_support =
        spec.type == AttributeType::kCategorical ? spec.domain_size : 0;
    if (supports[j].size() != expected_support) {
      return Status::InvalidArgument(
          "support vector size does not match the attribute's domain");
    }
    if (attribute_reports[j] > num_reports) {
      return Status::InvalidArgument(
          "attribute report count exceeds the total report count");
    }
    if (!std::isfinite(numeric_sums[j])) {
      return Status::InvalidArgument("non-finite numeric sum");
    }
    for (const double s : supports[j]) {
      if (!std::isfinite(s)) {
        return Status::InvalidArgument("non-finite support count");
      }
    }
  }
  MixedAggregator aggregator(collector);
  aggregator.num_reports_ = num_reports;
  aggregator.attribute_reports_ = std::move(attribute_reports);
  aggregator.numeric_sums_ = std::move(numeric_sums);
  aggregator.supports_ = std::move(supports);
  return aggregator;
}

Status MixedAggregator::Merge(const MixedAggregator& other) {
  if (collector_ != other.collector_ &&
      !collector_->CompatibleWith(*other.collector_)) {
    return Status::FailedPrecondition(
        "cannot merge aggregators built from incompatible collectors");
  }
  num_reports_ += other.num_reports_;
  for (uint32_t j = 0; j < collector_->dimension(); ++j) {
    attribute_reports_[j] += other.attribute_reports_[j];
    numeric_sums_[j] += other.numeric_sums_[j];
    for (size_t v = 0; v < supports_[j].size(); ++v) {
      supports_[j][v] += other.supports_[j][v];
    }
  }
  return Status::OK();
}

Result<double> MixedAggregator::EstimateMean(uint32_t attribute) const {
  if (attribute >= collector_->dimension()) {
    return Status::OutOfRange("attribute index out of range");
  }
  if (collector_->schema()[attribute].type != AttributeType::kNumeric) {
    return Status::InvalidArgument("attribute is not numeric");
  }
  if (num_reports_ == 0) return 0.0;
  // Algorithm 4's estimator: average of the dense (zero-padded) reports.
  return numeric_sums_[attribute] / static_cast<double>(num_reports_);
}

Result<std::vector<double>> MixedAggregator::EstimateFrequencies(
    uint32_t attribute) const {
  if (attribute >= collector_->dimension()) {
    return Status::OutOfRange("attribute index out of range");
  }
  if (collector_->schema()[attribute].type != AttributeType::kCategorical) {
    return Status::InvalidArgument("attribute is not categorical");
  }
  const FrequencyOracle* oracle = collector_->oracle_for(attribute);
  const uint64_t n_j = attribute_reports_[attribute];
  // The oracle's Estimate debiases relative to the n_j reports that sampled
  // this attribute; the Section IV-C estimator rescales the debiased counts
  // by d/(k·n): f̂ = (d·n_j)/(k·n) · per-reporter estimate.
  std::vector<double> estimates = oracle->Estimate(supports_[attribute], n_j);
  if (num_reports_ == 0) return estimates;
  const double scale = static_cast<double>(collector_->dimension()) *
                       static_cast<double>(n_j) /
                       (static_cast<double>(collector_->k()) *
                        static_cast<double>(num_reports_));
  for (double& f : estimates) f *= scale;
  return estimates;
}

Result<std::vector<double>> MixedAggregator::EstimateFrequenciesProjected(
    uint32_t attribute) const {
  std::vector<double> raw;
  LDP_ASSIGN_OR_RETURN(raw, EstimateFrequencies(attribute));
  return ProjectOntoSimplex(raw);
}

std::vector<double> MixedAggregator::EstimateAllMeans() const {
  std::vector<double> means(collector_->dimension(), 0.0);
  for (uint32_t j = 0; j < collector_->dimension(); ++j) {
    if (collector_->schema()[j].type == AttributeType::kNumeric) {
      means[j] = EstimateMean(j).value();
    }
  }
  return means;
}

}  // namespace ldp
