// DomainScaler: maps an attribute's native domain [lo, hi] to the mechanisms'
// canonical input domain [-1, 1] and back. Perturbing a value in [lo, hi] is
// (i) scale to [-1, 1], (ii) perturb, (iii) scale the *output* back; because
// the map is affine, unbiasedness is preserved and the output variance picks
// up a factor ((hi − lo)/2)².

#ifndef LDP_CORE_SCALER_H_
#define LDP_CORE_SCALER_H_

#include "util/result.h"
#include "util/status.h"

namespace ldp {

/// Affine bijection between [lo, hi] and [-1, 1].
class DomainScaler {
 public:
  /// Creates a scaler for the domain [lo, hi]; fails unless lo < hi and both
  /// are finite.
  static Result<DomainScaler> Create(double lo, double hi);

  /// The canonical scaler for the already-normalised domain [-1, 1].
  DomainScaler() : lo_(-1.0), hi_(1.0), half_width_(1.0), mid_(0.0) {}

  /// Maps x ∈ [lo, hi] to [-1, 1]; values outside are clamped.
  double ToCanonical(double x) const;

  /// Maps a canonical (possibly perturbed, out-of-[-1,1]) value back to the
  /// native scale. Does NOT clamp: perturbed values legitimately exceed the
  /// domain, and clamping would bias the aggregate mean.
  double FromCanonical(double y) const;

  double lo() const { return lo_; }
  double hi() const { return hi_; }

  /// The variance multiplier ((hi − lo)/2)² incurred by the round trip.
  double VarianceScale() const { return half_width_ * half_width_; }

 private:
  DomainScaler(double lo, double hi)
      : lo_(lo), hi_(hi), half_width_((hi - lo) / 2.0), mid_((hi + lo) / 2.0) {}

  double lo_;
  double hi_;
  double half_width_;
  double mid_;
};

}  // namespace ldp

#endif  // LDP_CORE_SCALER_H_
