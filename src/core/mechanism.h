// ScalarMechanism: the common interface of every ε-LDP perturbation primitive
// for one numeric value in [-1, 1]. Implementations are unbiased
// (E[Perturb(t)] = t) and expose their closed-form output variance so that the
// analysis layer (core/variance.h) and the benchmarks can compare mechanisms
// without Monte-Carlo runs.

#ifndef LDP_CORE_MECHANISM_H_
#define LDP_CORE_MECHANISM_H_

#include <memory>
#include <string>

#include "util/random.h"
#include "util/result.h"
#include "util/status.h"

namespace ldp {

/// Identifies a scalar numeric mechanism; used by factories and configs.
enum class MechanismKind {
  kLaplace,     ///< Dwork et al. — unbounded Laplace noise, scale 2/ε.
  kScdf,        ///< Soria-Comas & Domingo-Ferrer piecewise-constant noise.
  kStaircase,   ///< Geng et al. staircase noise.
  kDuchi,       ///< Duchi et al. two-point mechanism (Algorithm 1).
  kPiecewise,   ///< This paper's Piecewise Mechanism (Algorithm 2).
  kHybrid,      ///< This paper's Hybrid Mechanism (Lemma 3).
};

/// Human-readable mechanism name ("Laplace", "PM", ...).
const char* MechanismKindToString(MechanismKind kind);

/// Validates a privacy budget: must be finite and strictly positive.
Status ValidateEpsilon(double epsilon);

/// An ε-LDP randomizer for a single numeric value t ∈ [-1, 1].
///
/// Thread-safety: implementations are immutable after construction; Perturb
/// only mutates the caller-supplied Rng, so one instance may be shared across
/// threads as long as each thread owns its Rng.
class ScalarMechanism {
 public:
  virtual ~ScalarMechanism() = default;

  /// Perturbs `t` (must lie in [-1, 1]); the output is an unbiased estimate
  /// of `t` under ε-LDP.
  virtual double Perturb(double t, Rng* rng) const = 0;

  /// The privacy budget this instance was built with.
  virtual double epsilon() const = 0;

  /// Short mechanism name for reports.
  virtual const char* name() const = 0;

  /// Closed-form Var[Perturb(t)] for input t ∈ [-1, 1].
  virtual double Variance(double t) const = 0;

  /// max_{t ∈ [-1,1]} Variance(t).
  virtual double WorstCaseVariance() const = 0;

  /// Smallest b such that |Perturb(t)| <= b almost surely, or +infinity for
  /// mechanisms with unbounded output (Laplace/SCDF/Staircase).
  virtual double OutputBound() const = 0;
};

/// Creates a scalar mechanism of the given kind with budget `epsilon`.
/// Returns InvalidArgument for a non-positive or non-finite budget.
Result<std::unique_ptr<ScalarMechanism>> MakeScalarMechanism(
    MechanismKind kind, double epsilon);

}  // namespace ldp

#endif  // LDP_CORE_MECHANISM_H_
