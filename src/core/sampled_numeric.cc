#include "core/sampled_numeric.h"

#include <algorithm>
#include <cmath>

#include "core/variance.h"
#include "util/check.h"
#include "util/sampling.h"

namespace ldp {

Result<SampledNumericMechanism> SampledNumericMechanism::Create(
    MechanismKind kind, double epsilon, uint32_t dimension) {
  if (dimension == 0) {
    return Status::InvalidArgument("dimension must be >= 1");
  }
  return CreateWithSampleCount(kind, epsilon, dimension,
                               AttributeSampleCount(epsilon, dimension));
}

Result<SampledNumericMechanism> SampledNumericMechanism::CreateWithSampleCount(
    MechanismKind kind, double epsilon, uint32_t dimension, uint32_t k) {
  if (dimension == 0) {
    return Status::InvalidArgument("dimension must be >= 1");
  }
  if (k < 1 || k > dimension) {
    return Status::InvalidArgument("sample count k must be in [1, dimension]");
  }
  std::unique_ptr<ScalarMechanism> scalar;
  LDP_ASSIGN_OR_RETURN(scalar, MakeScalarMechanism(kind, epsilon / k));
  return SampledNumericMechanism(std::move(scalar), epsilon, dimension, k);
}

SampledNumericReport SampledNumericMechanism::Perturb(
    const std::vector<double>& tuple, Rng* rng) const {
  LDP_CHECK(tuple.size() == dimension_);
  const double scale = static_cast<double>(dimension_) / k_;
  const std::vector<uint32_t> sampled =
      SampleWithoutReplacement(dimension_, k_, rng);
  SampledNumericReport report;
  report.reserve(k_);
  for (const uint32_t attribute : sampled) {
    LDP_DCHECK(tuple[attribute] >= -1.0 && tuple[attribute] <= 1.0);
    const double noisy = scalar_->Perturb(tuple[attribute], rng);
    report.push_back(SampledValue{attribute, scale * noisy});
  }
  return report;
}

std::vector<double> SampledNumericMechanism::PerturbDense(
    const std::vector<double>& tuple, Rng* rng) const {
  std::vector<double> dense(dimension_, 0.0);
  for (const SampledValue& entry : Perturb(tuple, rng)) {
    dense[entry.attribute] = entry.value;
  }
  return dense;
}

double SampledNumericMechanism::CoordinateVariance(double tj) const {
  const double d_over_k = static_cast<double>(dimension_) / k_;
  return d_over_k * (scalar_->Variance(tj) + tj * tj) - tj * tj;
}

double SampledNumericMechanism::WorstCaseCoordinateVariance() const {
  // The tj² coefficient of CoordinateVariance is monotone in tj², so the
  // maximum is at one of the endpoints tj = 0 or |tj| = 1.
  return std::max(CoordinateVariance(0.0), CoordinateVariance(1.0));
}

}  // namespace ldp
