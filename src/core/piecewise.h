// Piecewise Mechanism (PM) — the paper's first contribution (Algorithm 2).
//
// PM perturbs one numeric value t ∈ [-1, 1] into t* ∈ [-C, C] with
// C = (e^{ε/2} + 1)/(e^{ε/2} - 1). The output density is a step function with
// up to three pieces: a high-probability central piece [ℓ(t), r(t)] of width
// C - 1 centred around (C+1)/2 · t, and two low-probability side pieces that
// are exactly a factor e^ε less likely. Unlike Laplace/SCDF/Staircase the
// output is bounded, and unlike Duchi et al. the output can be close to the
// input, which makes PM's variance *decrease* as |t| decreases (Lemma 1).

#ifndef LDP_CORE_PIECEWISE_H_
#define LDP_CORE_PIECEWISE_H_

#include "core/mechanism.h"

namespace ldp {

/// Piecewise Mechanism: unbiased, output bounded by C, and
/// Var[t*] = t²/(e^{ε/2}-1) + (e^{ε/2}+3)/(3 (e^{ε/2}-1)²)  (Lemma 1).
class PiecewiseMechanism final : public ScalarMechanism {
 public:
  /// Builds the mechanism; `epsilon` must be positive and finite.
  explicit PiecewiseMechanism(double epsilon);

  double Perturb(double t, Rng* rng) const override;
  double epsilon() const override { return epsilon_; }
  const char* name() const override { return "PM"; }
  double Variance(double t) const override;
  double WorstCaseVariance() const override;
  double OutputBound() const override { return c_; }

  /// The output half-range C = (e^{ε/2} + 1)/(e^{ε/2} - 1).
  double c() const { return c_; }

  /// Left endpoint ℓ(t) = (C+1)/2 · t − (C−1)/2 of the central piece.
  double CenterLeft(double t) const;

  /// Right endpoint r(t) = ℓ(t) + C − 1 of the central piece.
  double CenterRight(double t) const;

  /// The density of the output at x given input t (Eq. 5); 0 outside [-C, C].
  /// Exposed so tests can verify normalisation and the ε-LDP density ratio.
  double OutputPdf(double t, double x) const;

  /// Probability that the output lands in the central piece,
  /// e^{ε/2} / (e^{ε/2} + 1).
  double CenterProbability() const { return center_prob_; }

 private:
  double epsilon_;
  double c_;             // output half-range C
  double high_density_;  // p = (e^ε − e^{ε/2}) / (2 e^{ε/2} + 2)
  double center_prob_;   // e^{ε/2} / (e^{ε/2} + 1)
};

}  // namespace ldp

#endif  // LDP_CORE_PIECEWISE_H_
