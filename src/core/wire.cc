#include "core/wire.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <utility>

namespace ldp {

namespace {

using internal_wire::PutF64;
using internal_wire::PutU16;
using internal_wire::PutU32;
using internal_wire::PutU8;
using internal_wire::Reader;

constexpr uint8_t kNumericEntry = 0;
constexpr uint8_t kCategoricalEntry = 1;

// Hard cap on staged payload elements per frame, matching the framing
// layer's 1 MiB frame bound (stream/report_stream.h kMaxFrameBytes / 4);
// keeps worst-case decoder scratch bounded even for huge schemas.
constexpr size_t kMaxStagedPayloadElements = (1u << 20) / 4;

// d/k-scaled output bound shared by both report codecs.
double ScaledValueBound(uint32_t dimension, uint32_t k, double output_bound) {
  return static_cast<double>(dimension) / k * output_bound;
}

}  // namespace

std::string EncodeSampledNumericReport(const SampledNumericReport& report) {
  std::string out;
  out.reserve(2 + report.size() * 12);
  PutU16(&out, static_cast<uint16_t>(report.size()));
  for (const SampledValue& entry : report) {
    PutU32(&out, entry.attribute);
    PutF64(&out, entry.value);
  }
  return out;
}

NumericFrameDecoder::NumericFrameDecoder(
    const SampledNumericMechanism* mechanism)
    : mechanism_(mechanism),
      value_bound_(
          ScaledValueBound(mechanism->dimension(), mechanism->k(),
                           mechanism->scalar_mechanism().OutputBound())) {
  entries_.reserve(mechanism_->k());
}

Status NumericFrameDecoder::DecodeInto(const char* data, size_t size,
                                       NumericReportSink* sink) {
  // Pass 1: parse and validate the whole frame into reused scratch; nothing
  // reaches the sink until every entry has been vetted.
  static const auto truncated = [] {
    return Status::InvalidArgument("truncated report");
  };
  entries_.clear();
  Reader reader(data, size);
  uint16_t count = 0;
  if (!reader.TryU16(&count)) return truncated();
  if (count != mechanism_->k()) {
    return Status::InvalidArgument("report must carry exactly k entries");
  }
  for (uint16_t i = 0; i < count; ++i) {
    SampledValue entry;
    if (!reader.TryU32(&entry.attribute)) return truncated();
    if (!reader.TryF64(&entry.value)) return truncated();
    if (entry.attribute >= mechanism_->dimension()) {
      return Status::InvalidArgument("attribute index out of range");
    }
    if (!std::isfinite(entry.value) ||
        std::abs(entry.value) > value_bound_ * (1.0 + 1e-9)) {
      return Status::InvalidArgument("value outside the mechanism's range");
    }
    for (const SampledValue& previous : entries_) {
      if (previous.attribute == entry.attribute) {
        return Status::InvalidArgument("duplicate attribute in report");
      }
    }
    entries_.push_back(entry);
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after report");
  }

  // Pass 2: the frame is valid; replay it into the sink.
  sink->OnReportBegin(count);
  for (const SampledValue& entry : entries_) {
    sink->OnEntry(entry.attribute, entry.value);
  }
  return Status::OK();
}

namespace {

// Sink that rebuilds the heap-allocated SampledNumericReport representation;
// the backing store of the classic DecodeSampledNumericReport API.
class MaterializingNumericSink final : public NumericReportSink {
 public:
  void OnReportBegin(uint32_t entry_count) override {
    report_.reserve(entry_count);
  }
  void OnEntry(uint32_t attribute, double value) override {
    report_.push_back(SampledValue{attribute, value});
  }

  SampledNumericReport Take() { return std::move(report_); }

 private:
  SampledNumericReport report_;
};

}  // namespace

Result<SampledNumericReport> DecodeSampledNumericReport(
    const std::string& bytes, const SampledNumericMechanism& mechanism) {
  return DecodeSampledNumericReport(bytes.data(), bytes.size(), mechanism);
}

Result<SampledNumericReport> DecodeSampledNumericReport(
    const char* data, size_t size, const SampledNumericMechanism& mechanism) {
  NumericFrameDecoder decoder(&mechanism);
  MaterializingNumericSink sink;
  LDP_RETURN_IF_ERROR(decoder.DecodeInto(data, size, &sink));
  return sink.Take();
}

std::string EncodeMixedReport(const MixedReport& report,
                              const MixedTupleCollector& collector) {
  // Exact encoded size, so serialization never reallocates mid-report.
  size_t encoded_size = 2;
  for (const MixedReportEntry& entry : report) {
    const bool numeric =
        entry.attribute < collector.dimension() &&
        collector.schema()[entry.attribute].type == AttributeType::kNumeric;
    encoded_size += 4 + 1;
    encoded_size += numeric ? 8 : 2 + 4 * entry.categorical_report.size();
  }
  std::string out;
  out.reserve(encoded_size);
  PutU16(&out, static_cast<uint16_t>(report.size()));
  for (const MixedReportEntry& entry : report) {
    PutU32(&out, entry.attribute);
    const bool numeric =
        entry.attribute < collector.dimension() &&
        collector.schema()[entry.attribute].type == AttributeType::kNumeric;
    if (numeric) {
      PutU8(&out, kNumericEntry);
      PutF64(&out, entry.numeric_value);
    } else {
      PutU8(&out, kCategoricalEntry);
      PutU16(&out, static_cast<uint16_t>(entry.categorical_report.size()));
      for (const uint32_t payload : entry.categorical_report) {
        PutU32(&out, payload);
      }
    }
  }
  return out;
}

MixedFrameDecoder::MixedFrameDecoder(const MixedTupleCollector* collector)
    : collector_(collector),
      value_bound_(
          ScaledValueBound(collector->dimension(), collector->k(),
                           collector->scalar_mechanism().OutputBound())) {
  // Pre-reserve all scratch for the collector's worst-case report, so even
  // the very first frame decodes without touching the heap.
  size_t max_entry_payload = 0;
  for (uint32_t j = 0; j < collector_->dimension(); ++j) {
    const FrequencyOracle* oracle = collector_->oracle_for(j);
    if (oracle != nullptr) {
      max_entry_payload = std::max(max_entry_payload, oracle->MaxReportSize());
    }
  }
  max_entry_payload = std::min(max_entry_payload, kMaxStagedPayloadElements);
  entries_.reserve(collector_->k());
  payload_slots_.resize(collector_->k());
  for (FrequencyOracle::Report& slot : payload_slots_) {
    slot.reserve(max_entry_payload);
  }
}

Status MixedFrameDecoder::DecodeInto(const char* data, size_t size,
                                     MixedReportSink* sink) {
  // Pass 1: parse and validate the whole frame into reused scratch. Nothing
  // reaches the sink until every entry has been vetted, preserving the
  // all-or-nothing rejection semantics of the materializing decoder.
  static const auto truncated = [] {
    return Status::InvalidArgument("truncated report");
  };
  entries_.clear();
  Reader reader(data, size);
  uint16_t count = 0;
  if (!reader.TryU16(&count)) return truncated();
  if (count != collector_->k()) {
    return Status::InvalidArgument("report must carry exactly k entries");
  }
  for (uint16_t i = 0; i < count; ++i) {
    PendingEntry entry;
    if (!reader.TryU32(&entry.attribute)) return truncated();
    if (entry.attribute >= collector_->dimension()) {
      return Status::InvalidArgument("attribute index out of range");
    }
    const MixedAttribute& spec = collector_->schema()[entry.attribute];
    uint8_t kind = 0;
    if (!reader.TryU8(&kind)) return truncated();
    if (kind == kNumericEntry) {
      if (spec.type != AttributeType::kNumeric) {
        return Status::InvalidArgument("numeric entry for categorical attribute");
      }
      entry.numeric = true;
      if (!reader.TryF64(&entry.numeric_value)) return truncated();
      if (!std::isfinite(entry.numeric_value) ||
          std::abs(entry.numeric_value) > value_bound_ * (1.0 + 1e-9)) {
        return Status::InvalidArgument("value outside the mechanism's range");
      }
    } else if (kind == kCategoricalEntry) {
      if (spec.type != AttributeType::kCategorical) {
        return Status::InvalidArgument("categorical entry for numeric attribute");
      }
      const FrequencyOracle* oracle = collector_->oracle_for(entry.attribute);
      uint16_t payload_count = 0;
      if (!reader.TryU16(&payload_count)) return truncated();
      // Shape bound before buffering a single element: a hostile length can
      // neither bloat the scratch nor cost parse work beyond the oracle's
      // own maximum.
      if (payload_count > oracle->MaxReportSize()) {
        return Status::InvalidArgument(
            "oracle payload longer than the oracle can emit");
      }
      const char* raw = reader.TakeBytes(4 * static_cast<size_t>(payload_count));
      if (raw == nullptr) return truncated();
      FrequencyOracle::Report& payload = payload_slots_[i];
      payload.resize(payload_count);
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
      for (uint16_t p = 0; p < payload_count; ++p) {
        payload[p] = internal_wire::LoadLittleEndian<uint32_t>(raw + 4 * p);
      }
#else
      if (payload_count > 0) {
        std::memcpy(payload.data(), raw,
                    4 * static_cast<size_t>(payload_count));
      }
#endif
      // Oracle-specific shape/range validation: without it a hostile
      // payload could make the aggregator's Accumulate index out of
      // bounds (the oracles only LDP_DCHECK their inputs).
      LDP_RETURN_IF_ERROR(oracle->ValidateReport(payload));
    } else {
      return Status::InvalidArgument("unknown entry kind");
    }
    for (const PendingEntry& previous : entries_) {
      if (previous.attribute == entry.attribute) {
        return Status::InvalidArgument("duplicate attribute in report");
      }
    }
    entries_.push_back(entry);
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after report");
  }

  // Pass 2: the frame is valid; replay it into the sink.
  sink->OnReportBegin(count);
  for (size_t i = 0; i < entries_.size(); ++i) {
    const PendingEntry& entry = entries_[i];
    if (entry.numeric) {
      sink->OnNumericEntry(entry.attribute, entry.numeric_value);
    } else {
      sink->OnCategoricalEntry(entry.attribute, payload_slots_[i]);
    }
  }
  return Status::OK();
}

Status DecodeMixedReportInto(const char* data, size_t size,
                             const MixedTupleCollector& collector,
                             MixedReportSink* sink) {
  MixedFrameDecoder decoder(&collector);
  return decoder.DecodeInto(data, size, sink);
}

namespace {

// Sink that rebuilds the heap-allocated MixedReport representation; the
// backing store of the classic DecodeMixedReport API.
class MaterializingSink final : public MixedReportSink {
 public:
  void OnReportBegin(uint32_t entry_count) override {
    report_.reserve(entry_count);
  }
  void OnNumericEntry(uint32_t attribute, double value) override {
    MixedReportEntry entry;
    entry.attribute = attribute;
    entry.numeric_value = value;
    report_.push_back(std::move(entry));
  }
  void OnCategoricalEntry(uint32_t attribute,
                          const FrequencyOracle::Report& payload) override {
    MixedReportEntry entry;
    entry.attribute = attribute;
    entry.categorical_report = payload;
    report_.push_back(std::move(entry));
  }

  MixedReport Take() { return std::move(report_); }

 private:
  MixedReport report_;
};

}  // namespace

Result<MixedReport> DecodeMixedReport(const std::string& bytes,
                                      const MixedTupleCollector& collector) {
  return DecodeMixedReport(bytes.data(), bytes.size(), collector);
}

Result<MixedReport> DecodeMixedReport(const char* data, size_t size,
                                      const MixedTupleCollector& collector) {
  MaterializingSink sink;
  LDP_RETURN_IF_ERROR(DecodeMixedReportInto(data, size, collector, &sink));
  return sink.Take();
}

}  // namespace ldp
