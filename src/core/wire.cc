#include "core/wire.h"

#include <cmath>
#include <cstring>

namespace ldp {

namespace {

using internal_wire::PutF64;
using internal_wire::PutU16;
using internal_wire::PutU32;
using internal_wire::PutU8;
using internal_wire::Reader;

constexpr uint8_t kNumericEntry = 0;
constexpr uint8_t kCategoricalEntry = 1;

}  // namespace

std::string EncodeSampledNumericReport(const SampledNumericReport& report) {
  std::string out;
  out.reserve(2 + report.size() * 12);
  PutU16(&out, static_cast<uint16_t>(report.size()));
  for (const SampledValue& entry : report) {
    PutU32(&out, entry.attribute);
    PutF64(&out, entry.value);
  }
  return out;
}

Result<SampledNumericReport> DecodeSampledNumericReport(
    const std::string& bytes, const SampledNumericMechanism& mechanism) {
  return DecodeSampledNumericReport(bytes.data(), bytes.size(), mechanism);
}

Result<SampledNumericReport> DecodeSampledNumericReport(
    const char* data, size_t size, const SampledNumericMechanism& mechanism) {
  Reader reader(data, size);
  uint16_t count = 0;
  LDP_ASSIGN_OR_RETURN(count, reader.U16());
  if (count != mechanism.k()) {
    return Status::InvalidArgument("report must carry exactly k entries");
  }
  const double bound = static_cast<double>(mechanism.dimension()) /
                       mechanism.k() *
                       mechanism.scalar_mechanism().OutputBound();
  SampledNumericReport report;
  report.reserve(count);
  for (uint16_t i = 0; i < count; ++i) {
    SampledValue entry;
    LDP_ASSIGN_OR_RETURN(entry.attribute, reader.U32());
    LDP_ASSIGN_OR_RETURN(entry.value, reader.F64());
    if (entry.attribute >= mechanism.dimension()) {
      return Status::InvalidArgument("attribute index out of range");
    }
    if (!std::isfinite(entry.value) ||
        std::abs(entry.value) > bound * (1.0 + 1e-9)) {
      return Status::InvalidArgument("value outside the mechanism's range");
    }
    for (const SampledValue& previous : report) {
      if (previous.attribute == entry.attribute) {
        return Status::InvalidArgument("duplicate attribute in report");
      }
    }
    report.push_back(entry);
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after report");
  }
  return report;
}

std::string EncodeMixedReport(const MixedReport& report,
                              const MixedTupleCollector& collector) {
  std::string out;
  PutU16(&out, static_cast<uint16_t>(report.size()));
  for (const MixedReportEntry& entry : report) {
    PutU32(&out, entry.attribute);
    const bool numeric =
        entry.attribute < collector.dimension() &&
        collector.schema()[entry.attribute].type == AttributeType::kNumeric;
    if (numeric) {
      PutU8(&out, kNumericEntry);
      PutF64(&out, entry.numeric_value);
    } else {
      PutU8(&out, kCategoricalEntry);
      PutU16(&out, static_cast<uint16_t>(entry.categorical_report.size()));
      for (const uint32_t payload : entry.categorical_report) {
        PutU32(&out, payload);
      }
    }
  }
  return out;
}

Result<MixedReport> DecodeMixedReport(const std::string& bytes,
                                      const MixedTupleCollector& collector) {
  return DecodeMixedReport(bytes.data(), bytes.size(), collector);
}

Result<MixedReport> DecodeMixedReport(const char* data, size_t size,
                                      const MixedTupleCollector& collector) {
  Reader reader(data, size);
  uint16_t count = 0;
  LDP_ASSIGN_OR_RETURN(count, reader.U16());
  if (count != collector.k()) {
    return Status::InvalidArgument("report must carry exactly k entries");
  }
  const double bound = static_cast<double>(collector.dimension()) /
                       collector.k() *
                       collector.scalar_mechanism().OutputBound();
  MixedReport report;
  report.reserve(count);
  for (uint16_t i = 0; i < count; ++i) {
    MixedReportEntry entry;
    LDP_ASSIGN_OR_RETURN(entry.attribute, reader.U32());
    if (entry.attribute >= collector.dimension()) {
      return Status::InvalidArgument("attribute index out of range");
    }
    const MixedAttribute& spec = collector.schema()[entry.attribute];
    uint8_t kind = 0;
    LDP_ASSIGN_OR_RETURN(kind, reader.U8());
    if (kind == kNumericEntry) {
      if (spec.type != AttributeType::kNumeric) {
        return Status::InvalidArgument("numeric entry for categorical attribute");
      }
      LDP_ASSIGN_OR_RETURN(entry.numeric_value, reader.F64());
      if (!std::isfinite(entry.numeric_value) ||
          std::abs(entry.numeric_value) > bound * (1.0 + 1e-9)) {
        return Status::InvalidArgument("value outside the mechanism's range");
      }
    } else if (kind == kCategoricalEntry) {
      if (spec.type != AttributeType::kCategorical) {
        return Status::InvalidArgument("categorical entry for numeric attribute");
      }
      uint16_t payload_count = 0;
      LDP_ASSIGN_OR_RETURN(payload_count, reader.U16());
      entry.categorical_report.reserve(payload_count);
      for (uint16_t p = 0; p < payload_count; ++p) {
        uint32_t payload = 0;
        LDP_ASSIGN_OR_RETURN(payload, reader.U32());
        entry.categorical_report.push_back(payload);
      }
      // Oracle-specific shape/range validation: without it a hostile
      // payload could make the aggregator's Accumulate index out of
      // bounds (the oracles only LDP_DCHECK their inputs).
      LDP_RETURN_IF_ERROR(collector.oracle_for(entry.attribute)
                              ->ValidateReport(entry.categorical_report));
    } else {
      return Status::InvalidArgument("unknown entry kind");
    }
    for (const MixedReportEntry& previous : report) {
      if (previous.attribute == entry.attribute) {
        return Status::InvalidArgument("duplicate attribute in report");
      }
    }
    report.push_back(std::move(entry));
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after report");
  }
  return report;
}

}  // namespace ldp
