#include "core/wire.h"

#include <cmath>
#include <cstring>

namespace ldp {

namespace {

// Little-endian primitive writers/readers over a std::string buffer. The
// reader tracks a cursor and fails closed on truncation.

void PutU8(std::string* out, uint8_t value) {
  out->push_back(static_cast<char>(value));
}

void PutU16(std::string* out, uint16_t value) {
  out->push_back(static_cast<char>(value & 0xff));
  out->push_back(static_cast<char>((value >> 8) & 0xff));
}

void PutU32(std::string* out, uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8) {
    out->push_back(static_cast<char>((value >> shift) & 0xff));
  }
}

void PutF64(std::string* out, double value) {
  uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  for (int shift = 0; shift < 64; shift += 8) {
    out->push_back(static_cast<char>((bits >> shift) & 0xff));
  }
}

class Reader {
 public:
  explicit Reader(const std::string& bytes) : bytes_(bytes) {}

  Result<uint8_t> U8() {
    if (cursor_ + 1 > bytes_.size()) return Truncated();
    return static_cast<uint8_t>(bytes_[cursor_++]);
  }

  Result<uint16_t> U16() {
    if (cursor_ + 2 > bytes_.size()) return Truncated();
    uint16_t value = 0;
    for (int i = 0; i < 2; ++i) {
      value = static_cast<uint16_t>(
          value | (static_cast<uint16_t>(
                       static_cast<uint8_t>(bytes_[cursor_ + i]))
                   << (8 * i)));
    }
    cursor_ += 2;
    return value;
  }

  Result<uint32_t> U32() {
    if (cursor_ + 4 > bytes_.size()) return Truncated();
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      value |= static_cast<uint32_t>(
                   static_cast<uint8_t>(bytes_[cursor_ + i]))
               << (8 * i);
    }
    cursor_ += 4;
    return value;
  }

  Result<double> F64() {
    if (cursor_ + 8 > bytes_.size()) return Truncated();
    uint64_t bits = 0;
    for (int i = 0; i < 8; ++i) {
      bits |= static_cast<uint64_t>(static_cast<uint8_t>(bytes_[cursor_ + i]))
              << (8 * i);
    }
    cursor_ += 8;
    double value = 0.0;
    std::memcpy(&value, &bits, sizeof(value));
    return value;
  }

  bool AtEnd() const { return cursor_ == bytes_.size(); }

 private:
  static Status Truncated() {
    return Status::InvalidArgument("truncated report");
  }

  const std::string& bytes_;
  size_t cursor_ = 0;
};

constexpr uint8_t kNumericEntry = 0;
constexpr uint8_t kCategoricalEntry = 1;

}  // namespace

std::string EncodeSampledNumericReport(const SampledNumericReport& report) {
  std::string out;
  out.reserve(2 + report.size() * 12);
  PutU16(&out, static_cast<uint16_t>(report.size()));
  for (const SampledValue& entry : report) {
    PutU32(&out, entry.attribute);
    PutF64(&out, entry.value);
  }
  return out;
}

Result<SampledNumericReport> DecodeSampledNumericReport(
    const std::string& bytes, const SampledNumericMechanism& mechanism) {
  Reader reader(bytes);
  uint16_t count = 0;
  LDP_ASSIGN_OR_RETURN(count, reader.U16());
  if (count != mechanism.k()) {
    return Status::InvalidArgument("report must carry exactly k entries");
  }
  const double bound = static_cast<double>(mechanism.dimension()) /
                       mechanism.k() *
                       mechanism.scalar_mechanism().OutputBound();
  SampledNumericReport report;
  report.reserve(count);
  for (uint16_t i = 0; i < count; ++i) {
    SampledValue entry;
    LDP_ASSIGN_OR_RETURN(entry.attribute, reader.U32());
    LDP_ASSIGN_OR_RETURN(entry.value, reader.F64());
    if (entry.attribute >= mechanism.dimension()) {
      return Status::InvalidArgument("attribute index out of range");
    }
    if (!std::isfinite(entry.value) ||
        std::abs(entry.value) > bound * (1.0 + 1e-9)) {
      return Status::InvalidArgument("value outside the mechanism's range");
    }
    for (const SampledValue& previous : report) {
      if (previous.attribute == entry.attribute) {
        return Status::InvalidArgument("duplicate attribute in report");
      }
    }
    report.push_back(entry);
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after report");
  }
  return report;
}

std::string EncodeMixedReport(const MixedReport& report,
                              const MixedTupleCollector& collector) {
  std::string out;
  PutU16(&out, static_cast<uint16_t>(report.size()));
  for (const MixedReportEntry& entry : report) {
    PutU32(&out, entry.attribute);
    const bool numeric =
        entry.attribute < collector.dimension() &&
        collector.schema()[entry.attribute].type == AttributeType::kNumeric;
    if (numeric) {
      PutU8(&out, kNumericEntry);
      PutF64(&out, entry.numeric_value);
    } else {
      PutU8(&out, kCategoricalEntry);
      PutU16(&out, static_cast<uint16_t>(entry.categorical_report.size()));
      for (const uint32_t payload : entry.categorical_report) {
        PutU32(&out, payload);
      }
    }
  }
  return out;
}

Result<MixedReport> DecodeMixedReport(const std::string& bytes,
                                      const MixedTupleCollector& collector) {
  Reader reader(bytes);
  uint16_t count = 0;
  LDP_ASSIGN_OR_RETURN(count, reader.U16());
  if (count != collector.k()) {
    return Status::InvalidArgument("report must carry exactly k entries");
  }
  MixedReport report;
  report.reserve(count);
  for (uint16_t i = 0; i < count; ++i) {
    MixedReportEntry entry;
    LDP_ASSIGN_OR_RETURN(entry.attribute, reader.U32());
    if (entry.attribute >= collector.dimension()) {
      return Status::InvalidArgument("attribute index out of range");
    }
    const MixedAttribute& spec = collector.schema()[entry.attribute];
    uint8_t kind = 0;
    LDP_ASSIGN_OR_RETURN(kind, reader.U8());
    if (kind == kNumericEntry) {
      if (spec.type != AttributeType::kNumeric) {
        return Status::InvalidArgument("numeric entry for categorical attribute");
      }
      LDP_ASSIGN_OR_RETURN(entry.numeric_value, reader.F64());
      if (!std::isfinite(entry.numeric_value)) {
        return Status::InvalidArgument("non-finite numeric value");
      }
    } else if (kind == kCategoricalEntry) {
      if (spec.type != AttributeType::kCategorical) {
        return Status::InvalidArgument("categorical entry for numeric attribute");
      }
      uint16_t payload_count = 0;
      LDP_ASSIGN_OR_RETURN(payload_count, reader.U16());
      entry.categorical_report.reserve(payload_count);
      for (uint16_t p = 0; p < payload_count; ++p) {
        uint32_t payload = 0;
        LDP_ASSIGN_OR_RETURN(payload, reader.U32());
        entry.categorical_report.push_back(payload);
      }
    } else {
      return Status::InvalidArgument("unknown entry kind");
    }
    for (const MixedReportEntry& previous : report) {
      if (previous.attribute == entry.attribute) {
        return Status::InvalidArgument("duplicate attribute in report");
      }
    }
    report.push_back(std::move(entry));
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after report");
  }
  return report;
}

}  // namespace ldp
