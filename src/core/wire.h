// Wire format for privatized reports: a compact, validated byte encoding so
// the client half (user devices) and the server half (aggregator) of the
// protocols can actually be deployed across a network. Encoding is
// little-endian with explicit lengths; decoding validates every length and
// range against the collector's schema and returns Status on malformed or
// truncated input (never trusting the payload).
//
// Layout (all integers little-endian):
//   SampledNumericReport: u16 entry_count, then per entry
//     u32 attribute, f64 value.
//   MixedReport: u16 entry_count, then per entry
//     u32 attribute, u8 kind (0 numeric / 1 categorical),
//     numeric:     f64 value
//     categorical: u16 payload_count, u32 payload[...]
//
// Two decode surfaces exist for mixed reports: the materializing
// DecodeMixedReport (returns a heap-allocated MixedReport; tools and tests)
// and the streaming MixedFrameDecoder (validates a frame, then replays its
// entries into a MixedReportSink with zero per-frame allocations; the server
// ingest hot path). The materializing decoder is a thin wrapper over the
// streaming one, so the two can never diverge on what they accept.

#ifndef LDP_CORE_WIRE_H_
#define LDP_CORE_WIRE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "core/mixed_collector.h"
#include "core/numeric_aggregator.h"
#include "core/sampled_numeric.h"
#include "util/result.h"

namespace ldp {

namespace internal_wire {

// Little-endian primitive writers/readers over a std::string buffer, shared
// by the report codecs here and the stream framing layer (stream/). Loads
// and stores go through std::memcpy (single mov on x86/ARM) rather than
// byte-at-a-time shift loops; big-endian hosts byte-swap after the copy.
// The reader tracks a cursor and fails closed on truncation.

#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
inline uint16_t ToLittleEndian(uint16_t v) { return __builtin_bswap16(v); }
inline uint32_t ToLittleEndian(uint32_t v) { return __builtin_bswap32(v); }
inline uint64_t ToLittleEndian(uint64_t v) { return __builtin_bswap64(v); }
#else
inline uint16_t ToLittleEndian(uint16_t v) { return v; }
inline uint32_t ToLittleEndian(uint32_t v) { return v; }
inline uint64_t ToLittleEndian(uint64_t v) { return v; }
#endif

template <typename T>
inline T LoadLittleEndian(const char* data) {
  T value;
  std::memcpy(&value, data, sizeof(T));
  return ToLittleEndian(value);
}

template <typename T>
inline void PutLittleEndian(std::string* out, T value) {
  const T wire = ToLittleEndian(value);
  out->append(reinterpret_cast<const char*>(&wire), sizeof(T));
}

inline void PutU8(std::string* out, uint8_t value) {
  out->push_back(static_cast<char>(value));
}

inline void PutU16(std::string* out, uint16_t value) {
  PutLittleEndian(out, value);
}

inline void PutU32(std::string* out, uint32_t value) {
  PutLittleEndian(out, value);
}

inline void PutU64(std::string* out, uint64_t value) {
  PutLittleEndian(out, value);
}

inline void PutF64(std::string* out, double value) {
  uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  PutU64(out, bits);
}

class Reader {
 public:
  Reader(const char* data, size_t size) : data_(data), size_(size) {}
  explicit Reader(const std::string& bytes)
      : Reader(bytes.data(), bytes.size()) {}

  Result<uint8_t> U8() {
    if (cursor_ + 1 > size_) return Truncated();
    return static_cast<uint8_t>(data_[cursor_++]);
  }

  Result<uint16_t> U16() {
    if (cursor_ + 2 > size_) return Truncated();
    const uint16_t value = LoadLittleEndian<uint16_t>(data_ + cursor_);
    cursor_ += 2;
    return value;
  }

  Result<uint32_t> U32() {
    if (cursor_ + 4 > size_) return Truncated();
    const uint32_t value = LoadLittleEndian<uint32_t>(data_ + cursor_);
    cursor_ += 4;
    return value;
  }

  Result<uint64_t> U64() {
    if (cursor_ + 8 > size_) return Truncated();
    const uint64_t value = LoadLittleEndian<uint64_t>(data_ + cursor_);
    cursor_ += 8;
    return value;
  }

  Result<double> F64() {
    uint64_t bits = 0;
    LDP_ASSIGN_OR_RETURN(bits, U64());
    double value = 0.0;
    std::memcpy(&value, &bits, sizeof(value));
    return value;
  }

  // Status-free variants for hot decode loops: a Result<T> carries a Status
  // (with a std::string member) per read, which is measurable overhead at
  // tens of millions of reads per second. These return false on truncation
  // and leave `out` untouched; callers surface one Status for the whole
  // frame instead of one per primitive.

  bool TryU8(uint8_t* out) {
    if (cursor_ + 1 > size_) return false;
    *out = static_cast<uint8_t>(data_[cursor_++]);
    return true;
  }

  bool TryU16(uint16_t* out) {
    if (cursor_ + 2 > size_) return false;
    *out = LoadLittleEndian<uint16_t>(data_ + cursor_);
    cursor_ += 2;
    return true;
  }

  bool TryU32(uint32_t* out) {
    if (cursor_ + 4 > size_) return false;
    *out = LoadLittleEndian<uint32_t>(data_ + cursor_);
    cursor_ += 4;
    return true;
  }

  bool TryF64(double* out) {
    if (cursor_ + 8 > size_) return false;
    const uint64_t bits = LoadLittleEndian<uint64_t>(data_ + cursor_);
    cursor_ += 8;
    std::memcpy(out, &bits, sizeof(*out));
    return true;
  }

  /// Returns a pointer to the next `count` raw bytes and advances past them,
  /// or nullptr when fewer remain.
  const char* TakeBytes(size_t count) {
    if (cursor_ + count > size_) return nullptr;
    const char* bytes = data_ + cursor_;
    cursor_ += count;
    return bytes;
  }

  bool AtEnd() const { return cursor_ == size_; }
  size_t cursor() const { return cursor_; }

 private:
  static Status Truncated() {
    return Status::InvalidArgument("truncated report");
  }

  const char* data_;
  size_t size_;
  size_t cursor_ = 0;
};

}  // namespace internal_wire

/// Serialises an Algorithm-4 numeric report.
std::string EncodeSampledNumericReport(const SampledNumericReport& report);

/// Streaming numeric-report decoder, the Algorithm-4 counterpart of
/// MixedFrameDecoder: validates one wire frame end to end (entry count == k,
/// attribute indices, scaled value bounds, duplicate attributes) and only
/// then replays the entries into a NumericReportSink — a sink never observes
/// a partially valid report. Scratch is pre-reserved for k entries, so
/// steady-state decoding performs zero heap allocations. One decoder per
/// stream/thread; not thread-safe.
class NumericFrameDecoder {
 public:
  /// `mechanism` must outlive the decoder.
  explicit NumericFrameDecoder(const SampledNumericMechanism* mechanism);

  /// Validates `data` as one encoded numeric report and streams its entries
  /// into `sink` (OnReportBegin, then one OnEntry per entry). On error the
  /// sink receives no callbacks.
  Status DecodeInto(const char* data, size_t size, NumericReportSink* sink);

 private:
  const SampledNumericMechanism* mechanism_;
  double value_bound_;                 // d/k-scaled mechanism bound
  std::vector<SampledValue> entries_;  // staged entries, <= k
};

/// Parses a serialised numeric report, validating attribute indices against
/// `mechanism`'s dimension, the entry count against its k, and every value
/// against the mechanism's scaled output bound (a thin materializing wrapper
/// over NumericFrameDecoder, so the two can never diverge on what they
/// accept). The (data, size) overload parses in place — the streaming
/// ingester uses it to decode frames without copying them out of its buffer.
Result<SampledNumericReport> DecodeSampledNumericReport(
    const char* data, size_t size, const SampledNumericMechanism& mechanism);
Result<SampledNumericReport> DecodeSampledNumericReport(
    const std::string& bytes, const SampledNumericMechanism& mechanism);

/// Serialises a Section IV-C mixed report; `collector` supplies the schema
/// that tags each entry as numeric or categorical (an empty categorical
/// oracle report is legal and indistinguishable from a numeric entry without
/// the schema). The output buffer is reserved to the exact encoded size.
std::string EncodeMixedReport(const MixedReport& report,
                              const MixedTupleCollector& collector);

/// Streaming mixed-report decoder: validates one wire frame end to end
/// (entry kinds, attribute indices, numeric bounds, oracle payload shapes,
/// duplicate attributes, entry count == k) and only then replays the entries
/// into a MixedReportSink — a sink never observes a partially valid report.
/// All scratch is owned by the decoder and pre-reserved for the collector's
/// worst-case report, so steady-state decoding performs zero heap
/// allocations. One decoder per stream/thread; not thread-safe.
class MixedFrameDecoder {
 public:
  /// `collector` must outlive the decoder.
  explicit MixedFrameDecoder(const MixedTupleCollector* collector);

  /// Validates `data` as one encoded mixed report and streams its entries
  /// into `sink` (OnReportBegin, then one On*Entry per entry). On error the
  /// sink receives no callbacks.
  Status DecodeInto(const char* data, size_t size, MixedReportSink* sink);

 private:
  // One parsed entry staged between the validation pass and sink delivery.
  // A categorical entry's payload lives in payload_slots_[its index].
  struct PendingEntry {
    uint32_t attribute = 0;
    bool numeric = false;
    double numeric_value = 0.0;
  };

  const MixedTupleCollector* collector_;
  double value_bound_;                 // d/k-scaled mechanism bound
  std::vector<PendingEntry> entries_;  // staged entries, <= k
  // One reusable payload buffer per entry slot; capacity is retained across
  // frames, so staging a payload copies its elements exactly once.
  std::vector<FrequencyOracle::Report> payload_slots_;
};

/// Convenience one-shot wrapper over MixedFrameDecoder for callers without a
/// persistent decoder (constructs scratch per call; hot paths should hold a
/// MixedFrameDecoder instead).
Status DecodeMixedReportInto(const char* data, size_t size,
                             const MixedTupleCollector& collector,
                             MixedReportSink* sink);

/// Parses a serialised mixed report, validating entry kinds, attribute
/// indices and oracle payloads against `collector`'s schema and the entry
/// count against its k (a thin materializing wrapper over MixedFrameDecoder).
/// The (data, size) overload parses in place.
Result<MixedReport> DecodeMixedReport(const char* data, size_t size,
                                      const MixedTupleCollector& collector);
Result<MixedReport> DecodeMixedReport(const std::string& bytes,
                                      const MixedTupleCollector& collector);

}  // namespace ldp

#endif  // LDP_CORE_WIRE_H_
