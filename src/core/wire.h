// Wire format for privatized reports: a compact, validated byte encoding so
// the client half (user devices) and the server half (aggregator) of the
// protocols can actually be deployed across a network. Encoding is
// little-endian with explicit lengths; decoding validates every length and
// range against the collector's schema and returns Status on malformed or
// truncated input (never trusting the payload).
//
// Layout (all integers little-endian):
//   SampledNumericReport: u16 entry_count, then per entry
//     u32 attribute, f64 value.
//   MixedReport: u16 entry_count, then per entry
//     u32 attribute, u8 kind (0 numeric / 1 categorical),
//     numeric:     f64 value
//     categorical: u16 payload_count, u32 payload[...]

#ifndef LDP_CORE_WIRE_H_
#define LDP_CORE_WIRE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/mixed_collector.h"
#include "core/sampled_numeric.h"
#include "util/result.h"

namespace ldp {

/// Serialises an Algorithm-4 numeric report.
std::string EncodeSampledNumericReport(const SampledNumericReport& report);

/// Parses a serialised numeric report, validating attribute indices against
/// `mechanism`'s dimension, the entry count against its k, and every value
/// against the mechanism's scaled output bound.
Result<SampledNumericReport> DecodeSampledNumericReport(
    const std::string& bytes, const SampledNumericMechanism& mechanism);

/// Serialises a Section IV-C mixed report; `collector` supplies the schema
/// that tags each entry as numeric or categorical (an empty categorical
/// oracle report is legal and indistinguishable from a numeric entry without
/// the schema).
std::string EncodeMixedReport(const MixedReport& report,
                              const MixedTupleCollector& collector);

/// Parses a serialised mixed report, validating entry kinds and attribute
/// indices against `collector`'s schema and the entry count against its k.
Result<MixedReport> DecodeMixedReport(const std::string& bytes,
                                      const MixedTupleCollector& collector);

}  // namespace ldp

#endif  // LDP_CORE_WIRE_H_
