// Wire format for privatized reports: a compact, validated byte encoding so
// the client half (user devices) and the server half (aggregator) of the
// protocols can actually be deployed across a network. Encoding is
// little-endian with explicit lengths; decoding validates every length and
// range against the collector's schema and returns Status on malformed or
// truncated input (never trusting the payload).
//
// Layout (all integers little-endian):
//   SampledNumericReport: u16 entry_count, then per entry
//     u32 attribute, f64 value.
//   MixedReport: u16 entry_count, then per entry
//     u32 attribute, u8 kind (0 numeric / 1 categorical),
//     numeric:     f64 value
//     categorical: u16 payload_count, u32 payload[...]

#ifndef LDP_CORE_WIRE_H_
#define LDP_CORE_WIRE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "core/mixed_collector.h"
#include "core/sampled_numeric.h"
#include "util/result.h"

namespace ldp {

namespace internal_wire {

// Little-endian primitive writers/readers over a std::string buffer, shared
// by the report codecs here and the stream framing layer (stream/). The
// reader tracks a cursor and fails closed on truncation.

inline void PutU8(std::string* out, uint8_t value) {
  out->push_back(static_cast<char>(value));
}

inline void PutU16(std::string* out, uint16_t value) {
  out->push_back(static_cast<char>(value & 0xff));
  out->push_back(static_cast<char>((value >> 8) & 0xff));
}

inline void PutU32(std::string* out, uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8) {
    out->push_back(static_cast<char>((value >> shift) & 0xff));
  }
}

inline void PutU64(std::string* out, uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    out->push_back(static_cast<char>((value >> shift) & 0xff));
  }
}

inline void PutF64(std::string* out, double value) {
  uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  PutU64(out, bits);
}

class Reader {
 public:
  Reader(const char* data, size_t size) : data_(data), size_(size) {}
  explicit Reader(const std::string& bytes)
      : Reader(bytes.data(), bytes.size()) {}

  Result<uint8_t> U8() {
    if (cursor_ + 1 > size_) return Truncated();
    return static_cast<uint8_t>(data_[cursor_++]);
  }

  Result<uint16_t> U16() {
    if (cursor_ + 2 > size_) return Truncated();
    uint16_t value = 0;
    for (int i = 0; i < 2; ++i) {
      value = static_cast<uint16_t>(
          value |
          (static_cast<uint16_t>(static_cast<uint8_t>(data_[cursor_ + i]))
           << (8 * i)));
    }
    cursor_ += 2;
    return value;
  }

  Result<uint32_t> U32() {
    if (cursor_ + 4 > size_) return Truncated();
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      value |= static_cast<uint32_t>(static_cast<uint8_t>(data_[cursor_ + i]))
               << (8 * i);
    }
    cursor_ += 4;
    return value;
  }

  Result<uint64_t> U64() {
    if (cursor_ + 8 > size_) return Truncated();
    uint64_t value = 0;
    for (int i = 0; i < 8; ++i) {
      value |= static_cast<uint64_t>(static_cast<uint8_t>(data_[cursor_ + i]))
               << (8 * i);
    }
    cursor_ += 8;
    return value;
  }

  Result<double> F64() {
    uint64_t bits = 0;
    LDP_ASSIGN_OR_RETURN(bits, U64());
    double value = 0.0;
    std::memcpy(&value, &bits, sizeof(value));
    return value;
  }

  bool AtEnd() const { return cursor_ == size_; }
  size_t cursor() const { return cursor_; }

 private:
  static Status Truncated() {
    return Status::InvalidArgument("truncated report");
  }

  const char* data_;
  size_t size_;
  size_t cursor_ = 0;
};

}  // namespace internal_wire

/// Serialises an Algorithm-4 numeric report.
std::string EncodeSampledNumericReport(const SampledNumericReport& report);

/// Parses a serialised numeric report, validating attribute indices against
/// `mechanism`'s dimension, the entry count against its k, and every value
/// against the mechanism's scaled output bound. The (data, size) overload
/// parses in place — the streaming ingester uses it to decode frames without
/// copying them out of its buffer.
Result<SampledNumericReport> DecodeSampledNumericReport(
    const char* data, size_t size, const SampledNumericMechanism& mechanism);
Result<SampledNumericReport> DecodeSampledNumericReport(
    const std::string& bytes, const SampledNumericMechanism& mechanism);

/// Serialises a Section IV-C mixed report; `collector` supplies the schema
/// that tags each entry as numeric or categorical (an empty categorical
/// oracle report is legal and indistinguishable from a numeric entry without
/// the schema).
std::string EncodeMixedReport(const MixedReport& report,
                              const MixedTupleCollector& collector);

/// Parses a serialised mixed report, validating entry kinds, attribute
/// indices and oracle payloads against `collector`'s schema and the entry
/// count against its k. The (data, size) overload parses in place.
Result<MixedReport> DecodeMixedReport(const char* data, size_t size,
                                      const MixedTupleCollector& collector);
Result<MixedReport> DecodeMixedReport(const std::string& bytes,
                                      const MixedTupleCollector& collector);

}  // namespace ldp

#endif  // LDP_CORE_WIRE_H_
