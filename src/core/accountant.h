// PrivacyAccountant: per-user budget bookkeeping under sequential
// composition. An LDP deployment typically answers many collection rounds
// against the same population; by the composition property of differential
// privacy (Section V uses it for SGD), the budgets of everything one user
// participates in add up. The accountant enforces a lifetime cap per user
// and refuses charges that would exceed it — the control knob behind the
// paper's observation that a user should power at most one SGD iteration.

#ifndef LDP_CORE_ACCOUNTANT_H_
#define LDP_CORE_ACCOUNTANT_H_

#include <cstdint>
#include <unordered_map>

#include "util/result.h"
#include "util/status.h"

namespace ldp {

/// Tracks cumulative ε spent per user against a lifetime budget.
///
/// Thread-compatibility: not internally synchronised; guard with a mutex if
/// charged from multiple threads.
class PrivacyAccountant {
 public:
  /// `lifetime_budget` is the maximum total ε any one user may spend; must
  /// be positive and finite.
  static Result<PrivacyAccountant> Create(double lifetime_budget);

  /// Charges `epsilon` to `user`. Fails with FailedPrecondition (and charges
  /// nothing) if the charge would push the user past the lifetime budget;
  /// fails with InvalidArgument for a non-positive/non-finite epsilon.
  Status Charge(uint64_t user, double epsilon);

  /// The budget `user` has left (full budget for unseen users).
  double Remaining(uint64_t user) const;

  /// Total ε charged to `user` so far (0 for unseen users).
  double Spent(uint64_t user) const;

  /// True iff `user` can still afford a charge of `epsilon`.
  bool CanCharge(uint64_t user, double epsilon) const;

  /// The per-user lifetime budget.
  double lifetime_budget() const { return lifetime_budget_; }

  /// Number of users with a non-zero charge.
  size_t num_charged_users() const { return spent_.size(); }

 private:
  explicit PrivacyAccountant(double lifetime_budget)
      : lifetime_budget_(lifetime_budget) {}

  double lifetime_budget_;
  std::unordered_map<uint64_t, double> spent_;
};

}  // namespace ldp

#endif  // LDP_CORE_ACCOUNTANT_H_
