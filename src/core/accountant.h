// PrivacyAccountant: per-reporter budget bookkeeping under sequential
// composition. An LDP deployment typically answers many collection rounds
// against the same population; by the composition property of differential
// privacy (Section V uses it for SGD), the budgets of everything one user
// participates in add up. The accountant keys one ledger per reporter id
// (the authenticated identity protocol v3 HELLOs carry) and enforces a
// lifetime ε cap per ledger — the control knob behind the paper's
// observation that a user should power at most one SGD iteration.
//
// Charges are keyed by (reporter, epoch) and idempotent within that key: a
// reporter who reconnects, opens more shards, or arrives via several relay
// edges in the same epoch is charged exactly once, which is what the paper's
// per-user guarantee actually promises. The pre-identity single-ledger
// behavior is the anonymous reporter (kAnonymousReporter, the empty id).

#ifndef LDP_CORE_ACCOUNTANT_H_
#define LDP_CORE_ACCOUNTANT_H_

#include <cstdint>
#include <map>
#include <string>

#include "util/result.h"
#include "util/status.h"

namespace ldp {

/// The ledger id the legacy identity-free paths charge: every report is
/// attributed to one representative population user.
inline constexpr const char kAnonymousReporter[] = "";

/// The typed result of one Charge call: what happened, and the reporter's
/// ledger state after the call — no out-param follow-up queries needed.
struct ChargeOutcome {
  /// True when the epoch is covered (newly charged, or already charged —
  /// the idempotent case). False when the lifetime budget refused it.
  bool accepted = false;
  /// Total ε this reporter has spent after the call.
  double spent = 0.0;
  /// Lifetime budget the reporter has left after the call.
  double remaining = 0.0;
  /// This reporter's cumulative refusal count after the call.
  uint64_t refusals = 0;
};

/// Tracks cumulative ε spent per reporter against a lifetime budget.
///
/// Thread-compatibility: not internally synchronised; guard with a mutex if
/// charged from multiple threads.
class PrivacyAccountant {
 public:
  /// One reporter's spend history: ε per charged epoch, the cached total,
  /// and how many charges the budget refused.
  struct Ledger {
    std::map<uint32_t, double> epoch_spend;
    double spent = 0.0;
    uint64_t refusals = 0;
  };

  /// `lifetime_budget` is the maximum total ε any one reporter may spend;
  /// must be positive and finite.
  static Result<PrivacyAccountant> Create(double lifetime_budget);

  /// Charges `epsilon` to `reporter` for `epoch`. Idempotent per
  /// (reporter, epoch): a repeat charge for an already-covered epoch is
  /// accepted without spending again. A charge the lifetime budget cannot
  /// afford is refused — nothing is spent and the reporter's refusal count
  /// increments. Fails with InvalidArgument (a caller bug, not a refusal)
  /// for a non-positive/non-finite epsilon.
  Result<ChargeOutcome> Charge(const std::string& reporter, uint32_t epoch,
                               double epsilon);

  /// The budget `reporter` has left (full budget for unseen reporters).
  double Remaining(const std::string& reporter) const;

  /// Total ε charged to `reporter` so far (0 for unseen reporters).
  double Spent(const std::string& reporter) const;

  /// Charges refused for `reporter` so far.
  uint64_t Refusals(const std::string& reporter) const;

  /// True iff `reporter` can still afford a charge of `epsilon` in an
  /// epoch they have not already covered.
  bool CanCharge(const std::string& reporter, double epsilon) const;

  /// The per-reporter lifetime budget.
  double lifetime_budget() const { return lifetime_budget_; }

  /// Number of reporters with a ledger (a charge or a refusal on record).
  size_t num_charged_reporters() const { return ledgers_.size(); }

  /// Refusals summed over every ledger.
  uint64_t total_refusals() const;

  /// Every ledger, keyed by reporter id in sorted order — the deterministic
  /// iteration snapshots and stats serialize from.
  const std::map<std::string, Ledger>& ledgers() const { return ledgers_; }

  /// Restores one (reporter, epoch) entry exactly as recorded elsewhere —
  /// the snapshot-merge / WAL-replay path. Restoring an entry that already
  /// exists with the same spend is a no-op; a conflicting spend for the
  /// same key fails with FailedPrecondition (two ledgers disagreeing about
  /// one user's history means a corrupt or mismatched snapshot). Unlike
  /// Charge, a restore may exceed this accountant's lifetime budget check —
  /// the originating edge already enforced it.
  Status RestoreCharge(const std::string& reporter, uint32_t epoch,
                       double epsilon);

  /// Folds refusal counts recorded elsewhere into `reporter`'s ledger.
  void RestoreRefusals(const std::string& reporter, uint64_t refusals);

  /// Merges every ledger of `other` into this accountant: epoch entries
  /// union by (reporter, epoch) — the exactly-once guarantee across relay
  /// edges — and refusal counts add. Fails if any shared entry conflicts.
  Status MergeFrom(const PrivacyAccountant& other);

 private:
  explicit PrivacyAccountant(double lifetime_budget)
      : lifetime_budget_(lifetime_budget) {}

  double lifetime_budget_;
  std::map<std::string, Ledger> ledgers_;
};

}  // namespace ldp

#endif  // LDP_CORE_ACCOUNTANT_H_
