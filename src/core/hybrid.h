// Hybrid Mechanism (HM) — the paper's second contribution (Section III-C).
//
// HM flips a coin with head probability α; on heads it perturbs with the
// Piecewise Mechanism, on tails with Duchi et al.'s two-point mechanism, both
// at the full budget ε. Because both components are unbiased, the mixture is
// unbiased with variance α·σ²_PM(t) + (1−α)·σ²_Duchi(t). Lemma 3 shows the
// worst-case variance is minimised by α = 1 − e^{−ε/2} when ε > ε* ≈ 0.61 and
// by α = 0 (pure Duchi) otherwise; with the optimal α the t² terms of the two
// components cancel exactly, so HM's variance is input-independent.

#ifndef LDP_CORE_HYBRID_H_
#define LDP_CORE_HYBRID_H_

#include "baselines/duchi_one_dim.h"
#include "core/mechanism.h"
#include "core/piecewise.h"

namespace ldp {

/// Hybrid Mechanism: α-mixture of PM and Duchi-1D, worst-case variance never
/// above either component's (Corollary 1), given by Eq. 8.
class HybridMechanism final : public ScalarMechanism {
 public:
  /// Builds HM with the paper's optimal α (Eq. 7).
  explicit HybridMechanism(double epsilon);

  /// Builds HM with an explicit mixing weight α ∈ [0, 1]; used by the
  /// ablation benchmark that sweeps α to verify Lemma 3.
  HybridMechanism(double epsilon, double alpha);

  double Perturb(double t, Rng* rng) const override;
  double epsilon() const override { return epsilon_; }
  const char* name() const override { return "HM"; }
  double Variance(double t) const override;
  double WorstCaseVariance() const override;
  double OutputBound() const override;

  /// The mixing weight: probability of invoking PM rather than Duchi.
  double alpha() const { return alpha_; }

  /// The paper's optimal mixing weight for budget ε (Eq. 7):
  /// 1 − e^{−ε/2} if ε > ε*, else 0.
  static double OptimalAlpha(double epsilon);

  /// Eq. 8: the worst-case variance of HM under the *optimal* α.
  static double OptimalWorstCaseVariance(double epsilon);

  /// The PM component (for tests).
  const PiecewiseMechanism& piecewise() const { return pm_; }

  /// The Duchi component (for tests).
  const DuchiOneDimMechanism& duchi() const { return duchi_; }

 private:
  double epsilon_;
  double alpha_;
  PiecewiseMechanism pm_;
  DuchiOneDimMechanism duchi_;
};

}  // namespace ldp

#endif  // LDP_CORE_HYBRID_H_
