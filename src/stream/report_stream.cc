#include "stream/report_stream.h"

#include <cmath>
#include <istream>
#include <ostream>

#include "core/wire.h"

namespace ldp::stream {

namespace {

using internal_wire::PutF64;
using internal_wire::PutU16;
using internal_wire::PutU32;
using internal_wire::PutU64;
using internal_wire::PutU8;
using internal_wire::Reader;

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr uint64_t kFnvPrime = 0x100000001b3ULL;

class Fnv1a {
 public:
  void Mix(const void* data, size_t size) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < size; ++i) {
      hash_ ^= bytes[i];
      hash_ *= kFnvPrime;
    }
  }
  void MixU8(uint8_t v) { Mix(&v, 1); }
  void MixU32(uint32_t v) {
    for (int i = 0; i < 4; ++i) MixU8(static_cast<uint8_t>(v >> (8 * i)));
  }
  void MixF64(double v) {
    uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    for (int i = 0; i < 8; ++i) MixU8(static_cast<uint8_t>(bits >> (8 * i)));
  }
  uint64_t hash() const { return hash_; }

 private:
  uint64_t hash_ = kFnvOffset;
};

uint64_t ConfigHash(double epsilon, uint32_t dimension, uint32_t k,
                    uint8_t mechanism, uint8_t oracle,
                    const std::vector<MixedAttribute>* schema) {
  Fnv1a fnv;
  fnv.MixU8('L');
  fnv.MixU8('D');
  fnv.MixU8('P');
  fnv.MixU8(kStreamVersion);
  fnv.MixF64(epsilon);
  fnv.MixU32(dimension);
  fnv.MixU32(k);
  fnv.MixU8(mechanism);
  fnv.MixU8(oracle);
  for (uint32_t j = 0; j < dimension; ++j) {
    const bool categorical =
        schema != nullptr &&
        (*schema)[j].type == AttributeType::kCategorical;
    fnv.MixU8(categorical ? 1 : 0);
    fnv.MixU32(categorical ? (*schema)[j].domain_size : 0);
  }
  return fnv.hash();
}

bool KnownMechanism(uint8_t value) {
  return value <= static_cast<uint8_t>(MechanismKind::kHybrid);
}

bool KnownOracle(uint8_t value) {
  return value <= static_cast<uint8_t>(FrequencyOracleKind::kThe);
}

}  // namespace

const char* ReportStreamKindToString(ReportStreamKind kind) {
  switch (kind) {
    case ReportStreamKind::kMixed:
      return "mixed";
    case ReportStreamKind::kSampledNumeric:
      return "numeric";
  }
  return "unknown";
}

uint64_t CollectorSchemaHash(const MixedTupleCollector& collector) {
  return ConfigHash(collector.epsilon(), collector.dimension(), collector.k(),
                    static_cast<uint8_t>(collector.numeric_kind()),
                    static_cast<uint8_t>(collector.categorical_kind()),
                    &collector.schema());
}

uint64_t NumericSchemaHash(const SampledNumericMechanism& mechanism,
                           MechanismKind kind) {
  return ConfigHash(mechanism.epsilon(), mechanism.dimension(), mechanism.k(),
                    static_cast<uint8_t>(kind),
                    static_cast<uint8_t>(FrequencyOracleKind::kOue), nullptr);
}

StreamHeader MakeMixedStreamHeader(const MixedTupleCollector& collector) {
  StreamHeader header;
  header.kind = ReportStreamKind::kMixed;
  header.mechanism = collector.numeric_kind();
  header.oracle = collector.categorical_kind();
  header.epsilon = collector.epsilon();
  header.dimension = collector.dimension();
  header.k = collector.k();
  header.schema_hash = CollectorSchemaHash(collector);
  return header;
}

StreamHeader MakeNumericStreamHeader(const SampledNumericMechanism& mechanism,
                                     MechanismKind kind) {
  StreamHeader header;
  header.kind = ReportStreamKind::kSampledNumeric;
  header.mechanism = kind;
  header.oracle = FrequencyOracleKind::kOue;
  header.epsilon = mechanism.epsilon();
  header.dimension = mechanism.dimension();
  header.k = mechanism.k();
  header.schema_hash = NumericSchemaHash(mechanism, kind);
  return header;
}

std::string EncodeStreamHeader(const StreamHeader& header) {
  std::string out;
  out.reserve(kStreamHeaderBytes);
  PutU32(&out, kStreamMagic);
  PutU16(&out, kStreamVersion);
  PutU8(&out, static_cast<uint8_t>(header.kind));
  PutU8(&out, static_cast<uint8_t>(header.mechanism));
  PutU8(&out, static_cast<uint8_t>(header.oracle));
  PutF64(&out, header.epsilon);
  PutU32(&out, header.dimension);
  PutU32(&out, header.k);
  PutU64(&out, header.schema_hash);
  return out;
}

Result<StreamHeader> DecodeStreamHeader(const char* data, size_t size) {
  if (size < kStreamHeaderBytes) {
    return Status::InvalidArgument("truncated stream header");
  }
  Reader reader(data, size);
  uint32_t magic = 0;
  LDP_ASSIGN_OR_RETURN(magic, reader.U32());
  if (magic != kStreamMagic) {
    return Status::InvalidArgument("not a report stream (bad magic)");
  }
  uint16_t version = 0;
  LDP_ASSIGN_OR_RETURN(version, reader.U16());
  if (version != kStreamVersion) {
    return Status::InvalidArgument("unsupported stream version");
  }
  uint8_t kind = 0, mechanism = 0, oracle = 0;
  LDP_ASSIGN_OR_RETURN(kind, reader.U8());
  LDP_ASSIGN_OR_RETURN(mechanism, reader.U8());
  LDP_ASSIGN_OR_RETURN(oracle, reader.U8());
  if (kind > static_cast<uint8_t>(ReportStreamKind::kSampledNumeric)) {
    return Status::InvalidArgument("unknown report stream kind");
  }
  if (!KnownMechanism(mechanism)) {
    return Status::InvalidArgument("unknown mechanism kind in stream header");
  }
  if (!KnownOracle(oracle)) {
    return Status::InvalidArgument("unknown oracle kind in stream header");
  }
  StreamHeader header;
  header.kind = static_cast<ReportStreamKind>(kind);
  header.mechanism = static_cast<MechanismKind>(mechanism);
  header.oracle = static_cast<FrequencyOracleKind>(oracle);
  LDP_ASSIGN_OR_RETURN(header.epsilon, reader.F64());
  LDP_ASSIGN_OR_RETURN(header.dimension, reader.U32());
  LDP_ASSIGN_OR_RETURN(header.k, reader.U32());
  LDP_ASSIGN_OR_RETURN(header.schema_hash, reader.U64());
  if (!std::isfinite(header.epsilon) || header.epsilon <= 0.0) {
    return Status::InvalidArgument("stream header carries a bad epsilon");
  }
  if (header.dimension == 0 || header.k == 0 ||
      header.k > header.dimension) {
    return Status::InvalidArgument(
        "stream header carries inconsistent dimension/k");
  }
  return header;
}

Result<StreamHeader> DecodeStreamHeader(const std::string& bytes) {
  return DecodeStreamHeader(bytes.data(), bytes.size());
}

Status ValidateMixedStreamHeader(const StreamHeader& header,
                                 const MixedTupleCollector& collector) {
  if (header.kind != ReportStreamKind::kMixed) {
    return Status::FailedPrecondition("stream does not carry mixed reports");
  }
  if (header.epsilon != collector.epsilon()) {
    return Status::FailedPrecondition(
        "stream epsilon does not match the server's collector");
  }
  if (header.dimension != collector.dimension() ||
      header.k != collector.k()) {
    return Status::FailedPrecondition(
        "stream dimension/k do not match the server's collector");
  }
  if (header.mechanism != collector.numeric_kind() ||
      header.oracle != collector.categorical_kind()) {
    return Status::FailedPrecondition(
        "stream mechanism/oracle kinds do not match the server's collector");
  }
  if (header.schema_hash != CollectorSchemaHash(collector)) {
    return Status::FailedPrecondition(
        "stream schema hash does not match the server's collector");
  }
  return Status::OK();
}

Status ValidateNumericStreamHeader(const StreamHeader& header,
                                   const SampledNumericMechanism& mechanism,
                                   MechanismKind kind) {
  if (header.kind != ReportStreamKind::kSampledNumeric) {
    return Status::FailedPrecondition(
        "stream does not carry Algorithm-4 numeric reports");
  }
  if (header.epsilon != mechanism.epsilon()) {
    return Status::FailedPrecondition(
        "stream epsilon does not match the server's mechanism");
  }
  if (header.dimension != mechanism.dimension() ||
      header.k != mechanism.k()) {
    return Status::FailedPrecondition(
        "stream dimension/k do not match the server's mechanism");
  }
  if (header.mechanism != kind) {
    return Status::FailedPrecondition(
        "stream mechanism kind does not match the server's mechanism");
  }
  if (header.schema_hash != NumericSchemaHash(mechanism, kind)) {
    return Status::FailedPrecondition(
        "stream schema hash does not match the server's mechanism");
  }
  return Status::OK();
}

Status CheckHeadersCompatible(const StreamHeader& expected,
                              const StreamHeader& actual) {
  if (actual.kind != expected.kind) {
    return Status::FailedPrecondition(
        "stream kind does not match the collector's protocol");
  }
  if (actual.epsilon != expected.epsilon) {
    return Status::FailedPrecondition(
        "stream epsilon does not match the collector's protocol");
  }
  if (actual.dimension != expected.dimension || actual.k != expected.k) {
    return Status::FailedPrecondition(
        "stream dimension/k do not match the collector's protocol");
  }
  if (actual.mechanism != expected.mechanism ||
      actual.oracle != expected.oracle) {
    return Status::FailedPrecondition(
        "stream mechanism/oracle kinds do not match the collector's protocol");
  }
  if (actual.schema_hash != expected.schema_hash) {
    return Status::FailedPrecondition(
        "stream schema hash does not match the collector's protocol");
  }
  return Status::OK();
}

Status AppendFrame(const std::string& payload, std::string* out) {
  if (payload.size() > kMaxFrameBytes) {
    return Status::InvalidArgument("frame payload exceeds kMaxFrameBytes");
  }
  PutU32(out, static_cast<uint32_t>(payload.size()));
  out->append(payload);
  return Status::OK();
}

ReportStreamWriter::ReportStreamWriter(std::ostream* out,
                                       const StreamHeader& header)
    : out_(out) {
  const std::string bytes = EncodeStreamHeader(header);
  out_->write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  bytes_written_ += bytes.size();
}

Status ReportStreamWriter::WriteMixedReport(
    const MixedReport& report, const MixedTupleCollector& collector) {
  return WriteFrame(EncodeMixedReport(report, collector));
}

Status ReportStreamWriter::WriteNumericReport(
    const SampledNumericReport& report) {
  return WriteFrame(EncodeSampledNumericReport(report));
}

Status ReportStreamWriter::WriteFrame(const std::string& payload) {
  std::string framed;
  framed.reserve(4 + payload.size());
  LDP_RETURN_IF_ERROR(AppendFrame(payload, &framed));
  out_->write(framed.data(), static_cast<std::streamsize>(framed.size()));
  if (!out_->good()) {
    return Status::IoError("short write on report stream");
  }
  ++frames_written_;
  bytes_written_ += framed.size();
  return Status::OK();
}

ReportStreamReader::ReportStreamReader(std::istream* in) : in_(in) {}

Result<StreamHeader> ReportStreamReader::ReadHeader() {
  char buffer[kStreamHeaderBytes];
  in_->read(buffer, static_cast<std::streamsize>(kStreamHeaderBytes));
  if (static_cast<size_t>(in_->gcount()) != kStreamHeaderBytes) {
    return Status::InvalidArgument("truncated stream header");
  }
  Result<StreamHeader> header = DecodeStreamHeader(buffer, sizeof(buffer));
  header_read_ = header.ok();
  return header;
}

Result<bool> ReportStreamReader::NextFrame(std::string* payload) {
  if (!header_read_) {
    return Status::FailedPrecondition("ReadHeader must precede NextFrame");
  }
  char length_bytes[4];
  in_->read(length_bytes, 4);
  const auto got = static_cast<size_t>(in_->gcount());
  if (got == 0 && in_->eof()) return false;  // clean end of stream
  if (got != 4) {
    return Status::InvalidArgument("partial frame length at end of stream");
  }
  Reader reader(length_bytes, sizeof(length_bytes));
  uint32_t length = 0;
  LDP_ASSIGN_OR_RETURN(length, reader.U32());
  if (length > kMaxFrameBytes) {
    return Status::InvalidArgument("frame length exceeds kMaxFrameBytes");
  }
  payload->resize(length);
  in_->read(payload->data(), static_cast<std::streamsize>(length));
  if (static_cast<size_t>(in_->gcount()) != length) {
    return Status::InvalidArgument("partial frame payload at end of stream");
  }
  return true;
}

}  // namespace ldp::stream
