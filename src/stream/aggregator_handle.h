// AggregatorHandle: the polymorphic server-side aggregation surface that
// lets one stream stack (ShardIngester, the parallel driver, the Pipeline
// sessions) serve every report-stream kind the wire header can carry. A
// handle owns one shard-or-epoch's worth of accumulated state and knows how
// to validate a stream header against its protocol, decode-and-fold one
// frame payload (zero-copy, via the kind's streaming frame decoder), merge a
// compatible handle or encoded snapshot, and answer estimate queries.
//
// Two implementations exist, mirroring the paper's two collection paths:
// MixedAggregatorHandle (Section IV-C mixed tuples over MixedAggregator) and
// NumericAggregatorHandle (Algorithm-4 numeric tuples over
// NumericAggregator). Both are thin: the arithmetic lives in the wrapped
// aggregators, so folding frames through a handle is bit-identical to using
// the aggregator directly.

#ifndef LDP_STREAM_AGGREGATOR_HANDLE_H_
#define LDP_STREAM_AGGREGATOR_HANDLE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/mixed_collector.h"
#include "core/numeric_aggregator.h"
#include "core/sampled_numeric.h"
#include "core/wire.h"
#include "stream/report_stream.h"
#include "util/result.h"

namespace ldp::stream {

class MixedAggregatorHandle;
class NumericAggregatorHandle;

/// One shard's (or epoch's) aggregation state, behind the stream kind.
///
/// Thread-compatibility: not internally synchronised; one handle per
/// shard/thread, merged by a single reducer.
class AggregatorHandle {
 public:
  virtual ~AggregatorHandle() = default;

  /// The stream kind this handle aggregates.
  virtual ReportStreamKind kind() const = 0;

  /// Validates a decoded stream header against this handle's protocol
  /// (kind, ε, dimension, k, mechanism/oracle kinds, schema hash).
  virtual Status ValidateHeader(const StreamHeader& header) const = 0;

  /// Decodes one frame payload in place and folds the report in. All-or-
  /// nothing: on error no state changes. Zero heap allocations in steady
  /// state for both kinds.
  virtual Status AcceptFrame(const char* data, size_t size) = 0;

  /// Merges another handle of the same kind built from a compatible
  /// protocol; FailedPrecondition otherwise.
  virtual Status Merge(const AggregatorHandle& other) = 0;

  /// A fresh, empty handle sharing this handle's protocol objects — the
  /// factory the multi-shard drivers use to give every shard its own
  /// accumulator.
  virtual std::unique_ptr<AggregatorHandle> CloneEmpty() const = 0;

  /// Serialises the accumulated state (stream/snapshot.h formats).
  virtual std::string EncodeSnapshot() const = 0;

  /// Decodes `bytes` as a snapshot of this handle's kind and merges it in.
  virtual Status MergeEncodedSnapshot(const std::string& bytes) = 0;

  /// Number of reports accumulated.
  virtual uint64_t num_reports() const = 0;

  /// Unbiased mean estimate of numeric attribute `attribute`.
  virtual Result<double> EstimateMean(uint32_t attribute) const = 0;

  /// Unbiased frequency estimates of categorical attribute `attribute`;
  /// InvalidArgument on numeric streams (they carry no categorical state).
  virtual Result<std::vector<double>> EstimateFrequencies(
      uint32_t attribute) const = 0;

  /// Checked downcasts (null when the handle is of the other kind).
  virtual const MixedAggregatorHandle* AsMixed() const { return nullptr; }
  virtual const NumericAggregatorHandle* AsNumeric() const { return nullptr; }
};

/// Section IV-C mixed streams: MixedFrameDecoder → MixedAggregator.
class MixedAggregatorHandle final : public AggregatorHandle {
 public:
  /// `collector` must outlive the handle.
  explicit MixedAggregatorHandle(const MixedTupleCollector* collector);

  ReportStreamKind kind() const override { return ReportStreamKind::kMixed; }
  Status ValidateHeader(const StreamHeader& header) const override;
  Status AcceptFrame(const char* data, size_t size) override;
  Status Merge(const AggregatorHandle& other) override;
  std::unique_ptr<AggregatorHandle> CloneEmpty() const override;
  std::string EncodeSnapshot() const override;
  Status MergeEncodedSnapshot(const std::string& bytes) override;
  uint64_t num_reports() const override { return aggregator_.num_reports(); }
  Result<double> EstimateMean(uint32_t attribute) const override;
  Result<std::vector<double>> EstimateFrequencies(
      uint32_t attribute) const override;
  const MixedAggregatorHandle* AsMixed() const override { return this; }

  const MixedAggregator& aggregator() const { return aggregator_; }
  MixedAggregator& aggregator() { return aggregator_; }

 private:
  MixedAggregator aggregator_;
  MixedFrameDecoder decoder_;
};

/// Algorithm-4 numeric streams: NumericFrameDecoder → NumericAggregator.
class NumericAggregatorHandle final : public AggregatorHandle {
 public:
  /// `mechanism` must outlive the handle; `kind` names the scalar mechanism
  /// it was created with (carried in headers and snapshots).
  NumericAggregatorHandle(const SampledNumericMechanism* mechanism,
                          MechanismKind mechanism_kind);

  ReportStreamKind kind() const override {
    return ReportStreamKind::kSampledNumeric;
  }
  Status ValidateHeader(const StreamHeader& header) const override;
  Status AcceptFrame(const char* data, size_t size) override;
  Status Merge(const AggregatorHandle& other) override;
  std::unique_ptr<AggregatorHandle> CloneEmpty() const override;
  std::string EncodeSnapshot() const override;
  Status MergeEncodedSnapshot(const std::string& bytes) override;
  uint64_t num_reports() const override { return aggregator_.num_reports(); }
  Result<double> EstimateMean(uint32_t attribute) const override;
  Result<std::vector<double>> EstimateFrequencies(
      uint32_t attribute) const override;
  const NumericAggregatorHandle* AsNumeric() const override { return this; }

  const NumericAggregator& aggregator() const { return aggregator_; }
  NumericAggregator& aggregator() { return aggregator_; }
  MechanismKind mechanism_kind() const { return mechanism_kind_; }

 private:
  NumericAggregator aggregator_;
  NumericFrameDecoder decoder_;
  MechanismKind mechanism_kind_;
};

}  // namespace ldp::stream

#endif  // LDP_STREAM_AGGREGATOR_HANDLE_H_
