#include "stream/shard_ingester.h"

#include <algorithm>
#include <istream>
#include <memory>
#include <utility>

#include "core/wire.h"
#include "util/check.h"

namespace ldp::stream {

namespace {

constexpr size_t kIngestChunkBytes = 64 * 1024;

}  // namespace

ShardIngester::ShardIngester(const MixedTupleCollector* collector,
                             Options options)
    : ShardIngester(std::make_unique<MixedAggregatorHandle>(collector),
                    options) {}

ShardIngester::ShardIngester(const SampledNumericMechanism* mechanism,
                             MechanismKind kind, Options options)
    : ShardIngester(std::make_unique<NumericAggregatorHandle>(mechanism, kind),
                    options) {}

ShardIngester::ShardIngester(std::unique_ptr<AggregatorHandle> handle,
                             Options options)
    : options_(options), handle_(std::move(handle)) {
  LDP_CHECK(handle_ != nullptr);
}

const MixedAggregator& ShardIngester::aggregator() const {
  const MixedAggregatorHandle* mixed = handle_->AsMixed();
  LDP_CHECK_MSG(mixed != nullptr, "ingester does not aggregate mixed reports");
  return mixed->aggregator();
}

const NumericAggregator& ShardIngester::numeric_aggregator() const {
  const NumericAggregatorHandle* numeric = handle_->AsNumeric();
  LDP_CHECK_MSG(numeric != nullptr,
                "ingester does not aggregate numeric reports");
  return numeric->aggregator();
}

Status ShardIngester::Poison(Status status) {
  LDP_CHECK(!status.ok());
  failed_ = std::move(status);
  staged_.Clear();
  return failed_;
}

size_t ShardIngester::NeedBytes() const {
  switch (state_) {
    case State::kHeader:
      return kStreamHeaderBytes;
    case State::kFrameLength:
      return 4;
    case State::kFramePayload:
      return frame_length_;
  }
  return 0;  // unreachable
}

Status ShardIngester::AcceptFrame(const char* data, size_t size) {
  ++stats_.frames;
  // The handle streams entries straight from the wire bytes into its
  // accumulation arrays, with no report materialized.
  const Status decoded = handle_->AcceptFrame(data, size);
  if (decoded.ok()) {
    ++stats_.accepted;
    return Status::OK();
  }
  ++stats_.rejected;
  if (options_.strict) {
    return Poison(Status::InvalidArgument(
        "undecodable report in strict mode: " + decoded.message()));
  }
  if (stats_.rejected > options_.max_rejected) {
    return Poison(Status::InvalidArgument(
        "rejected report budget exhausted"));
  }
  return Status::OK();
}

Status ShardIngester::ConsumeItem(const char* data, size_t size) {
  if (state_ == State::kHeader) {
    Result<StreamHeader> header = DecodeStreamHeader(data, size);
    if (!header.ok()) return Poison(header.status());
    const Status match = handle_->ValidateHeader(header.value());
    if (!match.ok()) return Poison(match);
    header_ = header.value();
    state_ = State::kFrameLength;
  } else if (state_ == State::kFrameLength) {
    const uint32_t length = internal_wire::LoadLittleEndian<uint32_t>(data);
    if (length > kMaxFrameBytes) {
      return Poison(Status::InvalidArgument(
          "frame length exceeds kMaxFrameBytes"));
    }
    frame_length_ = length;
    state_ = State::kFramePayload;
  } else {  // kFramePayload
    state_ = State::kFrameLength;
    LDP_RETURN_IF_ERROR(AcceptFrame(data, size));
  }
  return Status::OK();
}

void ShardIngester::PublishMetrics() {
  // Feed/Finish granularity: one relaxed fetch_add per live counter per
  // chunk, nothing per frame. No allocation, so instrumented ingestion
  // still satisfies tests/ingest_allocation_test.cc.
  const obs::IngestMetrics& metrics = options_.metrics;
  metrics.bytes->Add(stats_.bytes - published_.bytes);
  metrics.frames->Add(stats_.frames - published_.frames);
  metrics.accepted->Add(stats_.accepted - published_.accepted);
  metrics.rejected->Add(stats_.rejected - published_.rejected);
  published_ = stats_;
}

Status ShardIngester::Feed(const char* data, size_t size) {
  const Status status = FeedChunk(data, size);
  if (options_.metrics.enabled()) PublishMetrics();
  return status;
}

Status ShardIngester::FeedChunk(const char* data, size_t size) {
  if (!failed_.ok()) return failed_;
  stats_.bytes += size;
  const char* cursor = data;
  const char* const end = data + size;

  // Complete the item left straddling the previous Feed boundary, if any.
  // Items are consumed the moment they complete, so the ring never holds
  // more than one partial item.
  if (!staged_.empty()) {
    const size_t need = NeedBytes();
    LDP_DCHECK(staged_.size() < need);
    const size_t take = std::min(need - staged_.size(),
                                 static_cast<size_t>(end - cursor));
    staged_.Append(cursor, take);
    cursor += take;
    if (staged_.size() < need) return Status::OK();  // still incomplete
    const char* item = staged_.Contiguous(need, &wrap_scratch_);
    LDP_RETURN_IF_ERROR(ConsumeItem(item, need));
    staged_.Consume(need);
  }

  for (;;) {
    if (state_ == State::kFrameLength) {
      // Hot path: frames whose length prefix and payload are both complete
      // in the caller's buffer decode in place, bypassing the state machine
      // and the staging ring entirely.
      for (;;) {
        const size_t available = static_cast<size_t>(end - cursor);
        if (available < 4) break;
        const uint32_t length =
            internal_wire::LoadLittleEndian<uint32_t>(cursor);
        if (length > kMaxFrameBytes) {
          return Poison(Status::InvalidArgument(
              "frame length exceeds kMaxFrameBytes"));
        }
        if (available - 4 < length) break;
        cursor += 4;
        LDP_RETURN_IF_ERROR(AcceptFrame(cursor, length));
        cursor += length;
      }
    }
    // Generic path: consume the next complete item (header, or an item cut
    // short above), staging a trailing partial item for the next Feed.
    const size_t need = NeedBytes();
    const size_t available = static_cast<size_t>(end - cursor);
    if (available < need) {
      staged_.Append(cursor, available);
      return Status::OK();
    }
    LDP_RETURN_IF_ERROR(ConsumeItem(cursor, need));
    cursor += need;
    if (cursor == end && NeedBytes() > 0) return Status::OK();
  }
}

Status ShardIngester::Finish() {
  if (options_.metrics.enabled()) PublishMetrics();
  if (!failed_.ok()) return failed_;
  if (state_ == State::kHeader) {
    return Poison(Status::InvalidArgument(
        "stream ended before a complete header"));
  }
  if (state_ == State::kFramePayload || !staged_.empty()) {
    return Poison(Status::InvalidArgument(
        "stream ended inside a frame"));
  }
  return Status::OK();
}

Status ShardIngester::IngestStream(std::istream& in) {
  std::string chunk(kIngestChunkBytes, '\0');
  while (in.good()) {
    in.read(chunk.data(), static_cast<std::streamsize>(chunk.size()));
    const auto got = static_cast<size_t>(in.gcount());
    if (got == 0) break;
    LDP_RETURN_IF_ERROR(Feed(chunk.data(), got));
  }
  if (in.bad()) {
    return Poison(Status::IoError("read error on report stream"));
  }
  return Finish();
}

}  // namespace ldp::stream
