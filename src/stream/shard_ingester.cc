#include "stream/shard_ingester.h"

#include <istream>

#include "core/wire.h"
#include "util/check.h"

namespace ldp::stream {

namespace {

using internal_wire::Reader;

constexpr size_t kIngestChunkBytes = 64 * 1024;

}  // namespace

ShardIngester::ShardIngester(const MixedTupleCollector* collector,
                             Options options)
    : collector_(collector), options_(options), aggregator_(collector) {
  LDP_CHECK(collector != nullptr);
}

Status ShardIngester::Poison(Status status) {
  LDP_CHECK(!status.ok());
  failed_ = std::move(status);
  buffer_.clear();
  return failed_;
}

Status ShardIngester::Feed(const char* data, size_t size) {
  if (!failed_.ok()) return failed_;
  buffer_.append(data, size);
  stats_.bytes += size;
  return ProcessBuffered();
}

Status ShardIngester::ProcessBuffered() {
  size_t consumed = 0;
  for (;;) {
    const size_t available = buffer_.size() - consumed;
    if (state_ == State::kHeader) {
      if (available < kStreamHeaderBytes) break;
      Result<StreamHeader> header =
          DecodeStreamHeader(buffer_.data() + consumed, kStreamHeaderBytes);
      if (!header.ok()) return Poison(header.status());
      const Status match = ValidateMixedStreamHeader(header.value(),
                                                     *collector_);
      if (!match.ok()) return Poison(match);
      header_ = header.value();
      consumed += kStreamHeaderBytes;
      state_ = State::kFrameLength;
    } else if (state_ == State::kFrameLength) {
      if (available < 4) break;
      Reader reader(buffer_.data() + consumed, 4);
      uint32_t length = 0;
      const Result<uint32_t> parsed = reader.U32();
      LDP_CHECK(parsed.ok());
      length = parsed.value();
      if (length > kMaxFrameBytes) {
        return Poison(Status::InvalidArgument(
            "frame length exceeds kMaxFrameBytes"));
      }
      frame_length_ = length;
      consumed += 4;
      state_ = State::kFramePayload;
    } else {  // kFramePayload
      if (available < frame_length_) break;
      ++stats_.frames;
      Result<MixedReport> report = DecodeMixedReport(
          buffer_.data() + consumed, frame_length_, *collector_);
      consumed += frame_length_;
      state_ = State::kFrameLength;
      if (report.ok()) {
        aggregator_.Add(report.value());
        ++stats_.accepted;
      } else {
        ++stats_.rejected;
        if (options_.strict) {
          return Poison(Status::InvalidArgument(
              "undecodable report in strict mode: " +
              report.status().message()));
        }
        if (stats_.rejected > options_.max_rejected) {
          return Poison(Status::InvalidArgument(
              "rejected report budget exhausted"));
        }
      }
    }
  }
  buffer_.erase(0, consumed);
  return Status::OK();
}

Status ShardIngester::Finish() {
  if (!failed_.ok()) return failed_;
  if (state_ == State::kHeader) {
    return Poison(Status::InvalidArgument(
        "stream ended before a complete header"));
  }
  if (state_ == State::kFramePayload || !buffer_.empty()) {
    return Poison(Status::InvalidArgument(
        "stream ended inside a frame"));
  }
  return Status::OK();
}

Status ShardIngester::IngestStream(std::istream& in) {
  std::string chunk(kIngestChunkBytes, '\0');
  while (in.good()) {
    in.read(chunk.data(), static_cast<std::streamsize>(chunk.size()));
    const auto got = static_cast<size_t>(in.gcount());
    if (got == 0) break;
    LDP_RETURN_IF_ERROR(Feed(chunk.data(), got));
  }
  if (in.bad()) {
    return Poison(Status::IoError("read error on report stream"));
  }
  return Finish();
}

}  // namespace ldp::stream
