// Serializable MixedAggregator snapshots: the complete server-side state of
// one shard — report counts, numeric sums, categorical supports — as a
// validated byte string. Shards aggregated on separate machines ship their
// snapshots to a reducer, which decodes them against its own collector and
// folds them together with MixedAggregator::Merge; because the accumulated
// state is a plain sum, snapshot merging is associative, and reducing shards
// in a fixed order reproduces the single-process aggregate exactly.
//
// Layout (all integers little-endian):
//   u32 magic 'LDPA', u16 version, u8 mechanism, u8 oracle, u64 schema_hash,
//   f64 epsilon, u32 dimension, u32 k, u64 num_reports, then per attribute:
//     u64 report_count, f64 numeric_sum,
//     u32 support_count, f64 support[support_count]
//   (support_count is the categorical domain size; 0 at numeric positions).
// Mechanism and oracle kinds are carried redundantly with the schema hash so
// a reducer can reconstruct the collector configuration from a snapshot file
// alone (tools/ldp_aggregate does; see DecodeSnapshotConfig).

#ifndef LDP_STREAM_SNAPSHOT_H_
#define LDP_STREAM_SNAPSHOT_H_

#include <cstdint>
#include <string>

#include "core/mixed_collector.h"
#include "core/numeric_aggregator.h"
#include "stream/report_stream.h"
#include "util/result.h"

namespace ldp::stream {

/// 'LDPA' little-endian.
inline constexpr uint32_t kSnapshotMagic = 0x4150444cu;
/// 'LDPN' little-endian — Algorithm-4 numeric aggregator snapshots. A
/// separate magic (rather than a version bump) keeps every byte of the mixed
/// format, and every file already written in it, exactly as before.
inline constexpr uint32_t kNumericSnapshotMagic = 0x4e50444cu;
inline constexpr uint16_t kSnapshotVersion = 1;

/// Serialises `aggregator`'s full state (including the schema hash of the
/// collector it was built from).
std::string EncodeAggregatorSnapshot(const MixedAggregator& aggregator);

/// Parses a snapshot and rebuilds the aggregator against the reducer's
/// `collector`. Validates the magic, version, schema hash, ε, dimension and
/// k against the collector, every vector length against the schema, and
/// rejects truncated or trailing bytes and non-finite sums.
Result<MixedAggregator> DecodeAggregatorSnapshot(
    const std::string& bytes, const MixedTupleCollector* collector);

/// Serialises a numeric aggregator's full state. Layout mirrors the mixed
/// snapshot with the 'LDPN' magic and no support sections:
///   u32 magic 'LDPN', u16 version, u8 mechanism, u8 oracle (kOue, unused),
///   u64 schema_hash,
///   f64 epsilon, u32 dimension, u32 k, u64 num_reports, then per attribute:
///     u64 report_count, f64 sum.
/// `kind` names the scalar mechanism the aggregator's SampledNumericMechanism
/// was created with (it is not recorded inside the mechanism itself).
std::string EncodeNumericAggregatorSnapshot(const NumericAggregator& aggregator,
                                            MechanismKind kind);

/// Parses a numeric snapshot and rebuilds the aggregator against the
/// reducer's `mechanism`/`kind`, with the same validation discipline as the
/// mixed decoder (schema hash, ε, dimension, k, finiteness, exact length).
Result<NumericAggregator> DecodeNumericAggregatorSnapshot(
    const std::string& bytes, const SampledNumericMechanism* mechanism,
    MechanismKind kind);

/// True when `bytes` starts with the mixed snapshot magic — used by
/// ldp_aggregate to tell snapshot files from report-stream files.
bool LooksLikeSnapshot(const std::string& bytes);

/// True when `bytes` starts with the numeric snapshot magic.
bool LooksLikeNumericSnapshot(const std::string& bytes);

/// The collector configuration a snapshot was produced under; enough,
/// together with the attribute schema, to rebuild the collector.
struct SnapshotConfig {
  /// Which aggregation path produced the snapshot (mixed 'LDPA' or numeric
  /// 'LDPN').
  ReportStreamKind kind = ReportStreamKind::kMixed;
  MechanismKind mechanism = MechanismKind::kHybrid;
  /// Meaningful for mixed snapshots only; kOue on numeric snapshots.
  FrequencyOracleKind oracle = FrequencyOracleKind::kOue;
  double epsilon = 0.0;
  uint32_t dimension = 0;
  uint32_t k = 0;
  uint64_t schema_hash = 0;
};

/// Parses just the snapshot preamble (magic through k) of either snapshot
/// kind without decoding the accumulated state.
Result<SnapshotConfig> DecodeSnapshotConfig(const std::string& bytes);

}  // namespace ldp::stream

#endif  // LDP_STREAM_SNAPSHOT_H_
