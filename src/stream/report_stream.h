// Framed report-stream format: the on-the-wire representation of a shard of
// privatized reports, written by client devices (tools/ldp_report) and
// ingested by the aggregation server (stream/shard_ingester.h,
// tools/ldp_aggregate).
//
// A stream is a fixed-size validated header followed by length-prefixed
// frames, each carrying one wire-encoded report (core/wire.h). The header
// pins down the protocol configuration — report kind, mechanism and oracle
// kinds, ε, dimension, sample count k, and a hash of the full collection
// schema — so a server can reject a mismatched client before decoding a
// single report.
//
// Layout (all integers little-endian):
//   header: u32 magic 'LDPS', u16 version, u8 kind, u8 mechanism, u8 oracle,
//           f64 epsilon, u32 dimension, u32 k, u64 schema_hash
//   frame:  u32 payload_length (<= kMaxFrameBytes), payload bytes
// The stream ends at EOF on a frame boundary; a partial trailing frame is a
// framing error.

#ifndef LDP_STREAM_REPORT_STREAM_H_
#define LDP_STREAM_REPORT_STREAM_H_

#include <cstdint>
#include <iosfwd>
#include <string>

#include "core/mixed_collector.h"
#include "core/sampled_numeric.h"
#include "util/result.h"

namespace ldp::stream {

/// What kind of reports a stream carries.
enum class ReportStreamKind : uint8_t {
  kMixed = 0,           ///< Section IV-C MixedReports.
  kSampledNumeric = 1,  ///< Algorithm-4 SampledNumericReports.
};

/// Human-readable stream kind ("mixed", "numeric").
const char* ReportStreamKindToString(ReportStreamKind kind);

/// 'LDPS' little-endian.
inline constexpr uint32_t kStreamMagic = 0x5350444cu;
inline constexpr uint16_t kStreamVersion = 1;

/// Serialized size of a stream header in bytes.
inline constexpr size_t kStreamHeaderBytes = 4 + 2 + 1 + 1 + 1 + 8 + 4 + 4 + 8;

/// Upper bound on a single frame's payload; anything larger is treated as a
/// framing attack / corruption rather than buffered.
inline constexpr uint32_t kMaxFrameBytes = 1u << 20;

/// The validated preamble of a report stream.
struct StreamHeader {
  ReportStreamKind kind = ReportStreamKind::kMixed;
  MechanismKind mechanism = MechanismKind::kHybrid;
  /// Meaningful for mixed streams only; kOue on numeric streams.
  FrequencyOracleKind oracle = FrequencyOracleKind::kOue;
  double epsilon = 0.0;
  uint32_t dimension = 0;
  uint32_t k = 0;
  uint64_t schema_hash = 0;
};

/// FNV-1a hash of a mixed collector's full protocol configuration (ε, d, k,
/// mechanism/oracle kinds, and every attribute's type and domain). Two
/// collectors hash equal iff they are CompatibleWith each other.
uint64_t CollectorSchemaHash(const MixedTupleCollector& collector);

/// FNV-1a hash of an Algorithm-4 configuration (all-numeric schema).
uint64_t NumericSchemaHash(const SampledNumericMechanism& mechanism,
                           MechanismKind kind);

/// Builds the header describing streams produced by `collector`.
StreamHeader MakeMixedStreamHeader(const MixedTupleCollector& collector);

/// Builds the header describing Algorithm-4 streams from `mechanism`;
/// `kind` names the scalar mechanism it was created with.
StreamHeader MakeNumericStreamHeader(const SampledNumericMechanism& mechanism,
                                     MechanismKind kind);

/// Serialises a header to its kStreamHeaderBytes wire form.
std::string EncodeStreamHeader(const StreamHeader& header);

/// Parses and validates a serialised header (magic, version, finite ε,
/// non-zero dimension, k in [1, dimension], known enum values). Requires
/// exactly kStreamHeaderBytes.
Result<StreamHeader> DecodeStreamHeader(const char* data, size_t size);
Result<StreamHeader> DecodeStreamHeader(const std::string& bytes);

/// Checks that a decoded header matches the server's collector: mixed kind,
/// equal ε / dimension / k / mechanism / oracle, and equal schema hash.
/// Returns FailedPrecondition naming the first mismatch.
Status ValidateMixedStreamHeader(const StreamHeader& header,
                                 const MixedTupleCollector& collector);

/// Checks that a decoded header matches the server's Algorithm-4 mechanism:
/// numeric kind, equal ε / dimension / k / mechanism kind, and equal schema
/// hash. Returns FailedPrecondition naming the first mismatch.
Status ValidateNumericStreamHeader(const StreamHeader& header,
                                   const SampledNumericMechanism& mechanism,
                                   MechanismKind kind);

/// Checks that a peer's header names exactly the protocol `expected` does
/// (kind, mechanism, oracle, ε, dimension, k, schema hash), returning
/// FailedPrecondition naming the first mismatch. The transport edge uses
/// this to refuse a mismatched reporter at HELLO time, before any report
/// bytes are decoded.
Status CheckHeadersCompatible(const StreamHeader& expected,
                              const StreamHeader& actual);

/// Appends one length-prefixed frame to `out`. Fails on payloads above
/// kMaxFrameBytes.
Status AppendFrame(const std::string& payload, std::string* out);

/// Client-side stream producer over any std::ostream. Writes the header on
/// construction; one Write* call per user report.
class ReportStreamWriter {
 public:
  /// Writes `header` to `out` immediately. `out` must outlive the writer.
  ReportStreamWriter(std::ostream* out, const StreamHeader& header);

  /// Encodes and frames one mixed report; `collector` supplies the schema.
  Status WriteMixedReport(const MixedReport& report,
                          const MixedTupleCollector& collector);

  /// Encodes and frames one Algorithm-4 numeric report.
  Status WriteNumericReport(const SampledNumericReport& report);

  /// Frames an already-encoded payload.
  Status WriteFrame(const std::string& payload);

  /// Frames written so far (excluding the header).
  uint64_t frames_written() const { return frames_written_; }

  /// Total bytes written, header included.
  uint64_t bytes_written() const { return bytes_written_; }

 private:
  std::ostream* out_;
  uint64_t frames_written_ = 0;
  uint64_t bytes_written_ = 0;
};

/// Pull-based stream consumer over any std::istream; the counterpart of
/// ReportStreamWriter for callers that want raw frames (the push-based
/// ShardIngester is the usual server entry point).
class ReportStreamReader {
 public:
  /// `in` must outlive the reader.
  explicit ReportStreamReader(std::istream* in);

  /// Reads and validates the stream header; must be called first.
  Result<StreamHeader> ReadHeader();

  /// Reads the next frame into `payload`. Returns true on a frame, false on
  /// clean EOF, and an error on a framing violation (oversized length,
  /// partial trailing frame).
  Result<bool> NextFrame(std::string* payload);

 private:
  std::istream* in_;
  bool header_read_ = false;
};

}  // namespace ldp::stream

#endif  // LDP_STREAM_REPORT_STREAM_H_
