// ShardIngester: the server-side consumer of one framed report stream
// (stream/report_stream.h). Bytes are fed incrementally — network-buffer
// style — and reports are folded into an AggregatorHandle as soon as their
// frame completes, so memory stays O(schema + one frame) no matter how many
// reports the shard carries. The handle abstracts the stream kind: the same
// framing state machine serves Section IV-C mixed streams (MixedAggregator)
// and Algorithm-4 numeric streams (NumericAggregator).
//
// Hot-path design: complete items (header, frame length, frame payload) are
// decoded IN PLACE from the caller's buffer — their bytes are never copied
// anywhere. Only the partial item straddling a Feed boundary is staged, in a
// power-of-two ring buffer (util/ringbuf.h) whose read head advances without
// memmoving retained bytes. Frame payloads stream through the kind's frame
// decoder straight into the aggregator (which implements the kind's report
// sink), so the steady-state accept path performs zero per-frame heap
// allocations.
//
// Failure policy: violations of the *framing* layer (bad magic or version,
// header/collector mismatch, oversized frame length, bytes missing at
// Finish) are unrecoverable — the frame boundaries themselves can no longer
// be trusted — and poison the ingester. A frame whose *payload* fails report
// validation (core/wire.h rejects it) only increments the rejected counter
// and is skipped, unless Options::strict is set or the rejection budget
// Options::max_rejected is exhausted; a malicious client can therefore not
// abort a shard shared with honest reports.

#ifndef LDP_STREAM_SHARD_INGESTER_H_
#define LDP_STREAM_SHARD_INGESTER_H_

#include <cstdint>
#include <iosfwd>
#include <limits>
#include <memory>
#include <string>
#include <utility>

#include "core/mixed_collector.h"
#include "core/sampled_numeric.h"
#include "core/wire.h"
#include "obs/metrics.h"
#include "stream/aggregator_handle.h"
#include "stream/report_stream.h"
#include "util/ringbuf.h"
#include "util/status.h"

namespace ldp::stream {

/// Decodes one report stream into an AggregatorHandle, incrementally.
class ShardIngester {
 public:
  struct Options {
    /// Fail the stream on the first undecodable report payload instead of
    /// skipping it.
    bool strict = false;
    /// Maximum number of undecodable payloads tolerated before the stream
    /// fails anyway (guards against shards that are mostly garbage).
    uint64_t max_rejected = std::numeric_limits<uint64_t>::max();
    /// Optional registry-backed telemetry (obs/metrics.h), typically shared
    /// by every shard of a session. Stats *deltas* are flushed once per
    /// Feed/Finish call — chunk granularity — so the per-frame accept loop
    /// touches no atomics and stays allocation-free. All-null = off.
    obs::IngestMetrics metrics;
  };

  struct Stats {
    uint64_t bytes = 0;     ///< Total bytes consumed, header included.
    uint64_t frames = 0;    ///< Completed frames seen.
    uint64_t accepted = 0;  ///< Reports folded into the aggregator.
    uint64_t rejected = 0;  ///< Frames whose payload failed validation.
  };

  /// Mixed-stream ingester. `collector` must outlive the ingester; the
  /// stream header is validated against it before any report is accepted.
  explicit ShardIngester(const MixedTupleCollector* collector)
      : ShardIngester(collector, Options()) {}
  ShardIngester(const MixedTupleCollector* collector, Options options);

  /// Algorithm-4 numeric-stream ingester. `mechanism` must outlive the
  /// ingester; `kind` names the scalar mechanism it was created with.
  ShardIngester(const SampledNumericMechanism* mechanism, MechanismKind kind)
      : ShardIngester(mechanism, kind, Options()) {}
  ShardIngester(const SampledNumericMechanism* mechanism, MechanismKind kind,
                Options options);

  /// Generic form over any aggregation handle (the Pipeline sessions use
  /// this to hand every shard its own accumulator).
  explicit ShardIngester(std::unique_ptr<AggregatorHandle> handle)
      : ShardIngester(std::move(handle), Options()) {}
  ShardIngester(std::unique_ptr<AggregatorHandle> handle, Options options);

  /// Consumes `size` bytes of the stream. May be called with arbitrarily
  /// small or large chunks; returns the sticky stream status. Complete
  /// frames inside `data` are decoded in place without copying.
  Status Feed(const char* data, size_t size);
  Status Feed(const std::string& bytes) {
    return Feed(bytes.data(), bytes.size());
  }

  /// Declares end-of-stream: fails if the stream is already poisoned, ended
  /// mid-frame, or never carried a full header.
  Status Finish();

  /// Convenience loop: feeds `in` to completion in fixed-size chunks and
  /// calls Finish.
  Status IngestStream(std::istream& in);

  /// True once the header has been parsed and validated.
  bool header_seen() const { return state_ != State::kHeader; }

  /// The stream header; only meaningful once header_seen().
  const StreamHeader& header() const { return header_; }

  /// The accumulated aggregate of a mixed-stream ingester (checked). Valid
  /// at any point during ingestion (it reflects every report accepted so
  /// far). Numeric-stream callers use handle() / numeric_aggregator().
  const MixedAggregator& aggregator() const;

  /// The accumulated aggregate of a numeric-stream ingester (checked).
  const NumericAggregator& numeric_aggregator() const;

  /// The kind-agnostic aggregate.
  const AggregatorHandle& handle() const { return *handle_; }

  /// Transfers the aggregate out of the ingester (for shard drivers that
  /// reduce handles in order). The ingester must not be fed afterwards.
  std::unique_ptr<AggregatorHandle> ReleaseHandle() {
    return std::move(handle_);
  }

  const Stats& stats() const { return stats_; }

 private:
  enum class State { kHeader, kFrameLength, kFramePayload };

  /// Bytes the current state-machine item needs before it can be consumed.
  size_t NeedBytes() const;

  /// Consumes exactly one complete item of NeedBytes() bytes at `data`.
  Status ConsumeItem(const char* data, size_t size);

  /// Decodes one complete frame payload, applying the rejection policy.
  Status AcceptFrame(const char* data, size_t size);

  /// The pre-telemetry Feed body; Feed wraps it with a metrics flush.
  Status FeedChunk(const char* data, size_t size);

  /// Flushes stats_ − published_ to the Options::metrics counters.
  void PublishMetrics();

  Status Poison(Status status);

  Options options_;
  std::unique_ptr<AggregatorHandle> handle_;
  StreamHeader header_;
  Stats stats_;
  Stats published_;  // the prefix of stats_ already flushed to metrics
  Status failed_ = Status::OK();  // sticky framing-layer error
  State state_ = State::kHeader;
  RingBuffer staged_;         // the partial item straddling Feed boundaries
  std::string wrap_scratch_;  // reused backing for wrapped ring reads
  uint32_t frame_length_ = 0;
};

}  // namespace ldp::stream

#endif  // LDP_STREAM_SHARD_INGESTER_H_
