#include "stream/parallel_ingest.h"

#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <utility>

#include "stream/snapshot.h"

namespace ldp::stream {

Result<MixedAggregator> IngestShardSources(
    const MixedTupleCollector& collector,
    const std::vector<ShardSource>& sources, ThreadPool* pool,
    MultiShardSummary* summary) {
  if (sources.empty()) {
    return Status::InvalidArgument("no shards to ingest");
  }
  const size_t num_shards = sources.size();
  std::vector<std::optional<MixedAggregator>> partials(num_shards);
  std::vector<Status> statuses(num_shards, Status::OK());
  std::vector<ShardIngester::Stats> stats(num_shards);
  ParallelFor(pool, num_shards,
              [&](unsigned /*chunk*/, uint64_t begin, uint64_t end) {
                for (uint64_t s = begin; s < end; ++s) {
                  Result<MixedAggregator> loaded = sources[s].load(&stats[s]);
                  if (loaded.ok()) {
                    partials[s] = std::move(loaded).value();
                  } else {
                    statuses[s] = loaded.status();
                  }
                }
              });

  MultiShardSummary local_summary;
  for (size_t s = 0; s < num_shards; ++s) {
    ShardIngestOutcome outcome;
    outcome.source = sources[s].name;
    outcome.status = statuses[s];
    outcome.stats = stats[s];
    local_summary.total_reports += outcome.stats.accepted;
    local_summary.total_rejected += outcome.stats.rejected;
    local_summary.total_bytes += outcome.stats.bytes;
    local_summary.shards.push_back(std::move(outcome));
  }
  if (summary != nullptr) *summary = local_summary;

  for (size_t s = 0; s < num_shards; ++s) {
    if (!statuses[s].ok()) {
      return Status(statuses[s].code(), "shard '" + sources[s].name +
                                            "': " + statuses[s].message());
    }
  }
  MixedAggregator total(&collector);
  for (size_t s = 0; s < num_shards; ++s) {
    LDP_RETURN_IF_ERROR(total.Merge(*partials[s]));
  }
  return total;
}

ShardSource StreamFileSource(const MixedTupleCollector& collector,
                             std::string path,
                             ShardIngester::Options options) {
  ShardSource source;
  source.name = path;
  source.load = [&collector, path = std::move(path),
                 options](ShardIngester::Stats* stats)
      -> Result<MixedAggregator> {
    std::ifstream in(path, std::ios::binary);
    if (!in.is_open()) {
      return Status::IoError("cannot open shard file");
    }
    ShardIngester ingester(&collector, options);
    const Status status = ingester.IngestStream(in);
    *stats = ingester.stats();
    if (!status.ok()) return status;
    return ingester.aggregator();
  };
  return source;
}

ShardSource SnapshotFileSource(const MixedTupleCollector& collector,
                               std::string path) {
  ShardSource source;
  source.name = path;
  source.load = [&collector,
                 path = std::move(path)](ShardIngester::Stats* stats)
      -> Result<MixedAggregator> {
    std::ifstream in(path, std::ios::binary);
    if (!in.is_open()) {
      return Status::IoError("cannot open snapshot file");
    }
    std::ostringstream contents;
    contents << in.rdbuf();
    if (in.bad()) {
      return Status::IoError("read error on snapshot file");
    }
    const std::string bytes = contents.str();
    Result<MixedAggregator> decoded =
        DecodeAggregatorSnapshot(bytes, &collector);
    if (decoded.ok()) {
      stats->bytes = bytes.size();
      stats->accepted = decoded.value().num_reports();
    }
    return decoded;
  };
  return source;
}

Result<std::unique_ptr<AggregatorHandle>> IngestHandleSources(
    const AggregatorHandle& prototype,
    const std::vector<HandleShardSource>& sources, ThreadPool* pool,
    MultiShardSummary* summary) {
  if (sources.empty()) {
    return Status::InvalidArgument("no shards to ingest");
  }
  const size_t num_shards = sources.size();
  std::vector<std::unique_ptr<AggregatorHandle>> partials(num_shards);
  std::vector<Status> statuses(num_shards, Status::OK());
  std::vector<ShardIngester::Stats> stats(num_shards);
  ParallelFor(pool, num_shards,
              [&](unsigned /*chunk*/, uint64_t begin, uint64_t end) {
                for (uint64_t s = begin; s < end; ++s) {
                  Result<std::unique_ptr<AggregatorHandle>> loaded =
                      sources[s].load(&stats[s]);
                  if (loaded.ok()) {
                    partials[s] = std::move(loaded).value();
                  } else {
                    statuses[s] = loaded.status();
                  }
                }
              });

  MultiShardSummary local_summary;
  for (size_t s = 0; s < num_shards; ++s) {
    ShardIngestOutcome outcome;
    outcome.source = sources[s].name;
    outcome.status = statuses[s];
    outcome.stats = stats[s];
    local_summary.total_reports += outcome.stats.accepted;
    local_summary.total_rejected += outcome.stats.rejected;
    local_summary.total_bytes += outcome.stats.bytes;
    local_summary.shards.push_back(std::move(outcome));
  }
  if (summary != nullptr) *summary = local_summary;

  for (size_t s = 0; s < num_shards; ++s) {
    if (!statuses[s].ok()) {
      return Status(statuses[s].code(), "shard '" + sources[s].name +
                                            "': " + statuses[s].message());
    }
  }
  std::unique_ptr<AggregatorHandle> total = prototype.CloneEmpty();
  for (size_t s = 0; s < num_shards; ++s) {
    LDP_RETURN_IF_ERROR(total->Merge(*partials[s]));
  }
  return total;
}

HandleShardSource HandleStreamFileSource(const AggregatorHandle& prototype,
                                         std::string path,
                                         ShardIngester::Options options) {
  HandleShardSource source;
  source.name = path;
  source.load = [&prototype, path = std::move(path),
                 options](ShardIngester::Stats* stats)
      -> Result<std::unique_ptr<AggregatorHandle>> {
    std::ifstream in(path, std::ios::binary);
    if (!in.is_open()) {
      return Status::IoError("cannot open shard file");
    }
    ShardIngester ingester(prototype.CloneEmpty(), options);
    const Status status = ingester.IngestStream(in);
    *stats = ingester.stats();
    if (!status.ok()) return status;
    return ingester.ReleaseHandle();
  };
  return source;
}

HandleShardSource HandleStreamBufferSource(const AggregatorHandle& prototype,
                                           std::string name,
                                           const std::string* buffer,
                                           ShardIngester::Options options) {
  HandleShardSource source;
  source.name = std::move(name);
  source.load = [&prototype, buffer,
                 options](ShardIngester::Stats* stats)
      -> Result<std::unique_ptr<AggregatorHandle>> {
    ShardIngester ingester(prototype.CloneEmpty(), options);
    Status status = ingester.Feed(*buffer);
    if (status.ok()) status = ingester.Finish();
    *stats = ingester.stats();
    if (!status.ok()) return status;
    return ingester.ReleaseHandle();
  };
  return source;
}

HandleShardSource HandleSnapshotFileSource(const AggregatorHandle& prototype,
                                           std::string path) {
  HandleShardSource source;
  source.name = path;
  source.load = [&prototype,
                 path = std::move(path)](ShardIngester::Stats* stats)
      -> Result<std::unique_ptr<AggregatorHandle>> {
    std::ifstream in(path, std::ios::binary);
    if (!in.is_open()) {
      return Status::IoError("cannot open snapshot file");
    }
    std::ostringstream contents;
    contents << in.rdbuf();
    if (in.bad()) {
      return Status::IoError("read error on snapshot file");
    }
    const std::string bytes = contents.str();
    std::unique_ptr<AggregatorHandle> handle = prototype.CloneEmpty();
    LDP_RETURN_IF_ERROR(handle->MergeEncodedSnapshot(bytes));
    stats->bytes = bytes.size();
    stats->accepted = handle->num_reports();
    return handle;
  };
  return source;
}

Result<MixedAggregator> IngestShardFiles(
    const MixedTupleCollector& collector,
    const std::vector<std::string>& paths, ThreadPool* pool,
    ShardIngester::Options options, MultiShardSummary* summary) {
  std::vector<ShardSource> sources;
  sources.reserve(paths.size());
  for (const std::string& path : paths) {
    sources.push_back(StreamFileSource(collector, path, options));
  }
  return IngestShardSources(collector, sources, pool, summary);
}

Result<MixedAggregator> IngestShardBuffers(
    const MixedTupleCollector& collector,
    const std::vector<std::string>& buffers, ThreadPool* pool,
    ShardIngester::Options options, MultiShardSummary* summary) {
  std::vector<ShardSource> sources;
  sources.reserve(buffers.size());
  for (size_t s = 0; s < buffers.size(); ++s) {
    ShardSource source;
    source.name = "shard " + std::to_string(s);
    const std::string& buffer = buffers[s];
    source.load = [&collector, &buffer,
                   options](ShardIngester::Stats* stats)
        -> Result<MixedAggregator> {
      ShardIngester ingester(&collector, options);
      Status status = ingester.Feed(buffer);
      if (status.ok()) status = ingester.Finish();
      *stats = ingester.stats();
      if (!status.ok()) return status;
      return ingester.aggregator();
    };
    sources.push_back(std::move(source));
  }
  return IngestShardSources(collector, sources, pool, summary);
}

}  // namespace ldp::stream
