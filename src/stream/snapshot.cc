#include "stream/snapshot.h"

#include <utility>

#include "core/wire.h"
#include "stream/report_stream.h"
#include "util/check.h"

namespace ldp::stream {

namespace {

using internal_wire::PutF64;
using internal_wire::PutU16;
using internal_wire::PutU32;
using internal_wire::PutU64;
using internal_wire::PutU8;
using internal_wire::Reader;

// Parses and validates the fixed-size preamble of either snapshot kind,
// leaving `reader` positioned at num_reports.
Result<SnapshotConfig> ReadConfig(Reader* reader) {
  uint32_t magic = 0;
  LDP_ASSIGN_OR_RETURN(magic, reader->U32());
  if (magic != kSnapshotMagic && magic != kNumericSnapshotMagic) {
    return Status::InvalidArgument("not an aggregator snapshot (bad magic)");
  }
  uint16_t version = 0;
  LDP_ASSIGN_OR_RETURN(version, reader->U16());
  if (version != kSnapshotVersion) {
    return Status::InvalidArgument("unsupported snapshot version");
  }
  uint8_t mechanism = 0, oracle = 0;
  LDP_ASSIGN_OR_RETURN(mechanism, reader->U8());
  LDP_ASSIGN_OR_RETURN(oracle, reader->U8());
  if (mechanism > static_cast<uint8_t>(MechanismKind::kHybrid)) {
    return Status::InvalidArgument("unknown mechanism kind in snapshot");
  }
  if (oracle > static_cast<uint8_t>(FrequencyOracleKind::kThe)) {
    return Status::InvalidArgument("unknown oracle kind in snapshot");
  }
  SnapshotConfig config;
  config.kind = magic == kNumericSnapshotMagic
                    ? ReportStreamKind::kSampledNumeric
                    : ReportStreamKind::kMixed;
  config.mechanism = static_cast<MechanismKind>(mechanism);
  config.oracle = static_cast<FrequencyOracleKind>(oracle);
  LDP_ASSIGN_OR_RETURN(config.schema_hash, reader->U64());
  LDP_ASSIGN_OR_RETURN(config.epsilon, reader->F64());
  LDP_ASSIGN_OR_RETURN(config.dimension, reader->U32());
  LDP_ASSIGN_OR_RETURN(config.k, reader->U32());
  return config;
}

}  // namespace

std::string EncodeAggregatorSnapshot(const MixedAggregator& aggregator) {
  const MixedTupleCollector* collector = aggregator.collector();
  LDP_CHECK(collector != nullptr);
  const uint32_t d = collector->dimension();
  std::string out;
  PutU32(&out, kSnapshotMagic);
  PutU16(&out, kSnapshotVersion);
  PutU8(&out, static_cast<uint8_t>(collector->numeric_kind()));
  PutU8(&out, static_cast<uint8_t>(collector->categorical_kind()));
  PutU64(&out, CollectorSchemaHash(*collector));
  PutF64(&out, collector->epsilon());
  PutU32(&out, d);
  PutU32(&out, collector->k());
  PutU64(&out, aggregator.num_reports());
  for (uint32_t j = 0; j < d; ++j) {
    PutU64(&out, aggregator.attribute_report_counts()[j]);
    PutF64(&out, aggregator.numeric_sums()[j]);
    const std::vector<double>& support = aggregator.supports()[j];
    PutU32(&out, static_cast<uint32_t>(support.size()));
    for (const double s : support) PutF64(&out, s);
  }
  return out;
}

Result<MixedAggregator> DecodeAggregatorSnapshot(
    const std::string& bytes, const MixedTupleCollector* collector) {
  LDP_CHECK(collector != nullptr);
  Reader reader(bytes);
  SnapshotConfig config;
  LDP_ASSIGN_OR_RETURN(config, ReadConfig(&reader));
  if (config.kind != ReportStreamKind::kMixed) {
    return Status::FailedPrecondition(
        "snapshot does not carry mixed-collector state");
  }
  if (config.schema_hash != CollectorSchemaHash(*collector)) {
    return Status::FailedPrecondition(
        "snapshot schema hash does not match the reducer's collector");
  }
  if (config.epsilon != collector->epsilon() ||
      config.dimension != collector->dimension() ||
      config.k != collector->k() ||
      config.mechanism != collector->numeric_kind() ||
      config.oracle != collector->categorical_kind()) {
    return Status::FailedPrecondition(
        "snapshot configuration does not match the reducer's collector");
  }
  const uint32_t dimension = config.dimension;
  uint64_t num_reports = 0;
  LDP_ASSIGN_OR_RETURN(num_reports, reader.U64());
  std::vector<uint64_t> attribute_reports(dimension, 0);
  std::vector<double> numeric_sums(dimension, 0.0);
  std::vector<std::vector<double>> supports(dimension);
  for (uint32_t j = 0; j < dimension; ++j) {
    LDP_ASSIGN_OR_RETURN(attribute_reports[j], reader.U64());
    LDP_ASSIGN_OR_RETURN(numeric_sums[j], reader.F64());
    uint32_t support_count = 0;
    LDP_ASSIGN_OR_RETURN(support_count, reader.U32());
    const MixedAttribute& spec = collector->schema()[j];
    const uint32_t expected =
        spec.type == AttributeType::kCategorical ? spec.domain_size : 0;
    if (support_count != expected) {
      return Status::InvalidArgument(
          "snapshot support size does not match the attribute's domain");
    }
    supports[j].resize(support_count);
    for (uint32_t v = 0; v < support_count; ++v) {
      LDP_ASSIGN_OR_RETURN(supports[j][v], reader.F64());
    }
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after snapshot");
  }
  return MixedAggregator::FromParts(collector, num_reports,
                                    std::move(attribute_reports),
                                    std::move(numeric_sums),
                                    std::move(supports));
}

std::string EncodeNumericAggregatorSnapshot(const NumericAggregator& aggregator,
                                            MechanismKind kind) {
  const SampledNumericMechanism* mechanism = aggregator.mechanism();
  LDP_CHECK(mechanism != nullptr);
  const uint32_t d = mechanism->dimension();
  std::string out;
  PutU32(&out, kNumericSnapshotMagic);
  PutU16(&out, kSnapshotVersion);
  PutU8(&out, static_cast<uint8_t>(kind));
  PutU8(&out, static_cast<uint8_t>(FrequencyOracleKind::kOue));
  PutU64(&out, NumericSchemaHash(*mechanism, kind));
  PutF64(&out, mechanism->epsilon());
  PutU32(&out, d);
  PutU32(&out, mechanism->k());
  PutU64(&out, aggregator.num_reports());
  for (uint32_t j = 0; j < d; ++j) {
    PutU64(&out, aggregator.attribute_report_counts()[j]);
    PutF64(&out, aggregator.sums()[j]);
  }
  return out;
}

Result<NumericAggregator> DecodeNumericAggregatorSnapshot(
    const std::string& bytes, const SampledNumericMechanism* mechanism,
    MechanismKind kind) {
  LDP_CHECK(mechanism != nullptr);
  Reader reader(bytes);
  SnapshotConfig config;
  LDP_ASSIGN_OR_RETURN(config, ReadConfig(&reader));
  if (config.kind != ReportStreamKind::kSampledNumeric) {
    return Status::FailedPrecondition(
        "snapshot does not carry Algorithm-4 numeric state");
  }
  if (config.schema_hash != NumericSchemaHash(*mechanism, kind)) {
    return Status::FailedPrecondition(
        "snapshot schema hash does not match the reducer's mechanism");
  }
  if (config.epsilon != mechanism->epsilon() ||
      config.dimension != mechanism->dimension() ||
      config.k != mechanism->k() || config.mechanism != kind) {
    return Status::FailedPrecondition(
        "snapshot configuration does not match the reducer's mechanism");
  }
  const uint32_t dimension = config.dimension;
  uint64_t num_reports = 0;
  LDP_ASSIGN_OR_RETURN(num_reports, reader.U64());
  std::vector<uint64_t> attribute_reports(dimension, 0);
  std::vector<double> sums(dimension, 0.0);
  for (uint32_t j = 0; j < dimension; ++j) {
    LDP_ASSIGN_OR_RETURN(attribute_reports[j], reader.U64());
    LDP_ASSIGN_OR_RETURN(sums[j], reader.F64());
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after snapshot");
  }
  return NumericAggregator::FromParts(mechanism, num_reports,
                                      std::move(attribute_reports),
                                      std::move(sums));
}

bool LooksLikeSnapshot(const std::string& bytes) {
  if (bytes.size() < 4) return false;
  Reader reader(bytes);
  const Result<uint32_t> magic = reader.U32();
  return magic.ok() && magic.value() == kSnapshotMagic;
}

bool LooksLikeNumericSnapshot(const std::string& bytes) {
  if (bytes.size() < 4) return false;
  Reader reader(bytes);
  const Result<uint32_t> magic = reader.U32();
  return magic.ok() && magic.value() == kNumericSnapshotMagic;
}

Result<SnapshotConfig> DecodeSnapshotConfig(const std::string& bytes) {
  Reader reader(bytes);
  return ReadConfig(&reader);
}

}  // namespace ldp::stream
