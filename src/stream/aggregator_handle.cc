#include "stream/aggregator_handle.h"

#include <utility>

#include "stream/snapshot.h"

namespace ldp::stream {

MixedAggregatorHandle::MixedAggregatorHandle(
    const MixedTupleCollector* collector)
    : aggregator_(collector), decoder_(collector) {}

Status MixedAggregatorHandle::ValidateHeader(
    const StreamHeader& header) const {
  return ValidateMixedStreamHeader(header, *aggregator_.collector());
}

Status MixedAggregatorHandle::AcceptFrame(const char* data, size_t size) {
  // The aggregator is its own sink: entries stream straight from the wire
  // bytes into the accumulation arrays, with no MixedReport materialized.
  return decoder_.DecodeInto(data, size, &aggregator_);
}

Status MixedAggregatorHandle::Merge(const AggregatorHandle& other) {
  const MixedAggregatorHandle* mixed = other.AsMixed();
  if (mixed == nullptr) {
    return Status::FailedPrecondition(
        "cannot merge aggregators of different stream kinds");
  }
  return aggregator_.Merge(mixed->aggregator_);
}

std::unique_ptr<AggregatorHandle> MixedAggregatorHandle::CloneEmpty() const {
  return std::make_unique<MixedAggregatorHandle>(aggregator_.collector());
}

std::string MixedAggregatorHandle::EncodeSnapshot() const {
  return EncodeAggregatorSnapshot(aggregator_);
}

Status MixedAggregatorHandle::MergeEncodedSnapshot(const std::string& bytes) {
  Result<MixedAggregator> decoded =
      DecodeAggregatorSnapshot(bytes, aggregator_.collector());
  if (!decoded.ok()) return decoded.status();
  return aggregator_.Merge(decoded.value());
}

Result<double> MixedAggregatorHandle::EstimateMean(uint32_t attribute) const {
  return aggregator_.EstimateMean(attribute);
}

Result<std::vector<double>> MixedAggregatorHandle::EstimateFrequencies(
    uint32_t attribute) const {
  return aggregator_.EstimateFrequencies(attribute);
}

NumericAggregatorHandle::NumericAggregatorHandle(
    const SampledNumericMechanism* mechanism, MechanismKind mechanism_kind)
    : aggregator_(mechanism),
      decoder_(mechanism),
      mechanism_kind_(mechanism_kind) {}

Status NumericAggregatorHandle::ValidateHeader(
    const StreamHeader& header) const {
  return ValidateNumericStreamHeader(header, *aggregator_.mechanism(),
                                     mechanism_kind_);
}

Status NumericAggregatorHandle::AcceptFrame(const char* data, size_t size) {
  return decoder_.DecodeInto(data, size, &aggregator_);
}

Status NumericAggregatorHandle::Merge(const AggregatorHandle& other) {
  const NumericAggregatorHandle* numeric = other.AsNumeric();
  if (numeric == nullptr) {
    return Status::FailedPrecondition(
        "cannot merge aggregators of different stream kinds");
  }
  if (numeric->mechanism_kind_ != mechanism_kind_) {
    return Status::FailedPrecondition(
        "cannot merge aggregators built from different mechanism kinds");
  }
  return aggregator_.Merge(numeric->aggregator_);
}

std::unique_ptr<AggregatorHandle> NumericAggregatorHandle::CloneEmpty() const {
  return std::make_unique<NumericAggregatorHandle>(aggregator_.mechanism(),
                                                   mechanism_kind_);
}

std::string NumericAggregatorHandle::EncodeSnapshot() const {
  return EncodeNumericAggregatorSnapshot(aggregator_, mechanism_kind_);
}

Status NumericAggregatorHandle::MergeEncodedSnapshot(
    const std::string& bytes) {
  Result<NumericAggregator> decoded = DecodeNumericAggregatorSnapshot(
      bytes, aggregator_.mechanism(), mechanism_kind_);
  if (!decoded.ok()) return decoded.status();
  return aggregator_.Merge(decoded.value());
}

Result<double> NumericAggregatorHandle::EstimateMean(
    uint32_t attribute) const {
  return aggregator_.EstimateMean(attribute);
}

Result<std::vector<double>> NumericAggregatorHandle::EstimateFrequencies(
    uint32_t /*attribute*/) const {
  return Status::InvalidArgument(
      "numeric streams carry no categorical state");
}

}  // namespace ldp::stream
