// Multi-shard ingestion driver: fans a set of report-stream shards (files or
// in-memory buffers) across a ThreadPool, one ShardIngester per shard, and
// reduces the per-shard aggregators IN SHARD ORDER. The ordered reduction is
// what makes the result independent of thread scheduling: a run over shards
// whose boundaries match util/threadpool.h SplitRange reproduces the pooled
// single-process CollectProposed bit for bit.

#ifndef LDP_STREAM_PARALLEL_INGEST_H_
#define LDP_STREAM_PARALLEL_INGEST_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/mixed_collector.h"
#include "stream/aggregator_handle.h"
#include "stream/shard_ingester.h"
#include "util/result.h"
#include "util/threadpool.h"

namespace ldp::stream {

/// Per-shard outcome of a multi-shard ingestion run.
struct ShardIngestOutcome {
  std::string source;  ///< File path, or "shard <i>" for buffers.
  Status status;       ///< Why this shard failed, if it did.
  ShardIngester::Stats stats;
};

/// Aggregate statistics of a multi-shard ingestion run.
struct MultiShardSummary {
  std::vector<ShardIngestOutcome> shards;
  uint64_t total_reports = 0;  ///< Accepted reports across all shards.
  uint64_t total_rejected = 0;
  uint64_t total_bytes = 0;
};

/// One input of a multi-shard run: a display name plus a loader producing
/// the shard's aggregator (and filling `stats` as it goes). Loaders run
/// concurrently, so they must not share mutable state.
struct ShardSource {
  std::string name;
  std::function<Result<MixedAggregator>(ShardIngester::Stats* stats)> load;
};

/// Loads every source concurrently on `pool` (inline when null) and merges
/// the shard aggregates IN SOURCE ORDER. Fails on the first source (in
/// order) that errors; `summary`, when non-null, is filled either way.
/// This is the generic reducer under IngestShardFiles / IngestShardBuffers;
/// ldp_aggregate uses it directly to mix stream and snapshot inputs.
Result<MixedAggregator> IngestShardSources(
    const MixedTupleCollector& collector,
    const std::vector<ShardSource>& sources, ThreadPool* pool,
    MultiShardSummary* summary = nullptr);

/// A source that opens `path` and ingests it as a framed report stream.
ShardSource StreamFileSource(const MixedTupleCollector& collector,
                             std::string path,
                             ShardIngester::Options options);

/// A source that reads `path` and decodes it as an aggregator snapshot.
ShardSource SnapshotFileSource(const MixedTupleCollector& collector,
                               std::string path);

/// Ingests every file in `paths` concurrently on `pool` (inline when null)
/// and merges the shard aggregates in path order. Fails on the first shard
/// (in path order) whose stream is invalid; `summary`, when non-null, is
/// filled either way.
Result<MixedAggregator> IngestShardFiles(
    const MixedTupleCollector& collector,
    const std::vector<std::string>& paths, ThreadPool* pool,
    ShardIngester::Options options = ShardIngester::Options(),
    MultiShardSummary* summary = nullptr);

/// As IngestShardFiles, over in-memory stream buffers (tests, benchmarks).
Result<MixedAggregator> IngestShardBuffers(
    const MixedTupleCollector& collector,
    const std::vector<std::string>& buffers, ThreadPool* pool,
    ShardIngester::Options options = ShardIngester::Options(),
    MultiShardSummary* summary = nullptr);

// ---------------------------------------------------------------------------
// Kind-agnostic driver: the same ordered-reduction contract over
// AggregatorHandles, serving every stream kind (the Pipeline's ServerSession
// and the numeric benchmarks run on these; the Mixed* entry points above
// remain for callers that want the concrete aggregator back).
// ---------------------------------------------------------------------------

/// One input of a kind-agnostic multi-shard run: a display name plus a
/// loader producing the shard's aggregate. Loaders run concurrently, so
/// they must not share mutable state.
struct HandleShardSource {
  std::string name;
  std::function<Result<std::unique_ptr<AggregatorHandle>>(
      ShardIngester::Stats* stats)>
      load;
};

/// Loads every source concurrently on `pool` (inline when null) and merges
/// the shard aggregates IN SOURCE ORDER into a fresh clone of `prototype`.
/// Fails on the first source (in order) that errors; `summary`, when
/// non-null, is filled either way.
Result<std::unique_ptr<AggregatorHandle>> IngestHandleSources(
    const AggregatorHandle& prototype,
    const std::vector<HandleShardSource>& sources, ThreadPool* pool,
    MultiShardSummary* summary = nullptr);

/// A source that opens `path` and ingests it as a framed report stream of
/// `prototype`'s kind.
HandleShardSource HandleStreamFileSource(const AggregatorHandle& prototype,
                                         std::string path,
                                         ShardIngester::Options options);

/// As HandleStreamFileSource, over an in-memory stream buffer; `buffer` must
/// outlive the returned source.
HandleShardSource HandleStreamBufferSource(const AggregatorHandle& prototype,
                                           std::string name,
                                           const std::string* buffer,
                                           ShardIngester::Options options);

/// A source that reads `path` and decodes it as an aggregator snapshot of
/// `prototype`'s kind.
HandleShardSource HandleSnapshotFileSource(const AggregatorHandle& prototype,
                                           std::string path);

}  // namespace ldp::stream

#endif  // LDP_STREAM_PARALLEL_INGEST_H_
