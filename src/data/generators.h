// Synthetic numeric dataset generators matching the paper's Section VI
// synthetic experiments: d-dimensional tuples whose coordinates are drawn
// i.i.d. from a truncated Gaussian (Fig. 5), the uniform distribution on
// [-1, 1], or a shifted power law pdf ∝ (x + 2)^{-10} (Fig. 6). All columns
// are generated directly in the canonical [-1, 1] domain.

#ifndef LDP_DATA_GENERATORS_H_
#define LDP_DATA_GENERATORS_H_

#include <cstdint>

#include "data/dataset.h"
#include "util/random.h"
#include "util/result.h"

namespace ldp::data {

/// A schema of `dimension` numeric columns named "x0", "x1", ... with the
/// canonical domain [-1, 1].
Schema MakeNumericSchema(uint32_t dimension);

/// `n` rows of `dimension` i.i.d. coordinates from N(mean, stddev²)
/// truncated (by rejection) to [-1, 1]. The paper's Fig. 5 uses
/// mean ∈ {0, 1/3, 2/3, 1} with stddev = 1/4. Fails unless the acceptance
/// region has non-trivial mass (|mean| <= 3, stddev in (0, 10]).
Result<Dataset> MakeTruncatedGaussian(uint32_t dimension, uint64_t n,
                                      double mean, double stddev, Rng* rng);

/// `n` rows of `dimension` i.i.d. Uniform[-1, 1] coordinates (Fig. 6a).
Result<Dataset> MakeUniform(uint32_t dimension, uint64_t n, Rng* rng);

/// `n` rows of `dimension` i.i.d. coordinates with density proportional to
/// (x + offset)^{-exponent} on [-1, 1], sampled by inverse CDF. The paper's
/// Fig. 6b uses offset = 2, exponent = 10. Requires offset > 1 (so the
/// density is finite on the domain) and exponent > 1.
Result<Dataset> MakePowerLaw(uint32_t dimension, uint64_t n, double offset,
                             double exponent, Rng* rng);

/// One draw from the truncated Gaussian above (exposed for tests).
double SampleTruncatedGaussian(double mean, double stddev, Rng* rng);

/// One draw from the power law above via inverse CDF (exposed for tests).
double SamplePowerLaw(double offset, double exponent, Rng* rng);

}  // namespace ldp::data

#endif  // LDP_DATA_GENERATORS_H_
