#include "data/csv.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <sstream>
#include <utility>

namespace ldp::data {

namespace {

std::vector<std::string> SplitLine(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  std::stringstream stream(line);
  while (std::getline(stream, cell, ',')) cells.push_back(cell);
  // A trailing comma denotes one final empty cell.
  if (!line.empty() && line.back() == ',') cells.emplace_back();
  return cells;
}

}  // namespace

Result<uint64_t> CountCsvDataRows(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::IoError("cannot open for reading: " + path);
  }
  std::string line;
  if (!std::getline(in, line)) {
    return Status::IoError("empty file: " + path);
  }
  uint64_t rows = 0;
  while (std::getline(in, line)) {
    if (!line.empty()) ++rows;
  }
  if (in.bad()) {
    return Status::IoError("read error on " + path);
  }
  return rows;
}

Status WriteCsv(const Dataset& dataset, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status::IoError("cannot open for writing: " + path);
  }
  const Schema& schema = dataset.schema();
  for (uint32_t col = 0; col < schema.num_columns(); ++col) {
    if (col > 0) out << ',';
    out << schema.column(col).name;
  }
  out << '\n';
  out.precision(17);
  for (uint64_t row = 0; row < dataset.num_rows(); ++row) {
    for (uint32_t col = 0; col < schema.num_columns(); ++col) {
      if (col > 0) out << ',';
      if (schema.column(col).type == ColumnType::kNumeric) {
        out << dataset.numeric(row, col);
      } else {
        out << dataset.category(row, col);
      }
    }
    out << '\n';
  }
  out.flush();
  if (!out) {
    return Status::IoError("write failed: " + path);
  }
  return Status::OK();
}

Result<CsvRowReader> CsvRowReader::Open(const Schema& schema,
                                        const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::IoError("cannot open for reading: " + path);
  }
  std::string line;
  if (!std::getline(in, line)) {
    return Status::IoError("empty file: " + path);
  }
  const std::vector<std::string> header = SplitLine(line);
  if (header.size() != schema.num_columns()) {
    return Status::InvalidArgument("header has " +
                                   std::to_string(header.size()) +
                                   " columns, schema expects " +
                                   std::to_string(schema.num_columns()));
  }
  for (uint32_t col = 0; col < schema.num_columns(); ++col) {
    if (header[col] != schema.column(col).name) {
      return Status::InvalidArgument("header column " + std::to_string(col) +
                                     " is '" + header[col] + "', expected '" +
                                     schema.column(col).name + "'");
    }
  }
  return CsvRowReader(&schema, std::move(in));
}

Result<bool> CsvRowReader::NextRow(std::vector<double>* numeric,
                                   std::vector<uint32_t>* category) {
  while (std::getline(in_, line_)) {
    if (line_.empty()) continue;
    const std::vector<std::string> cells = SplitLine(line_);
    if (cells.size() != schema_->num_columns()) {
      return Status::InvalidArgument(
          "row " + std::to_string(rows_read_) + " has " +
          std::to_string(cells.size()) + " cells, expected " +
          std::to_string(schema_->num_columns()));
    }
    numeric->assign(schema_->num_columns(), 0.0);
    category->assign(schema_->num_columns(), 0);
    for (uint32_t col = 0; col < schema_->num_columns(); ++col) {
      const ColumnSpec& spec = schema_->column(col);
      const std::string& cell = cells[col];
      char* end = nullptr;
      errno = 0;
      if (spec.type == ColumnType::kNumeric) {
        const double value = std::strtod(cell.c_str(), &end);
        if (end == cell.c_str() || *end != '\0' || errno == ERANGE ||
            !std::isfinite(value)) {
          return Status::InvalidArgument("row " + std::to_string(rows_read_) +
                                         ", column '" + spec.name +
                                         "': bad numeric cell '" + cell + "'");
        }
        (*numeric)[col] = value;
      } else {
        const long code = std::strtol(cell.c_str(), &end, 10);
        if (end == cell.c_str() || *end != '\0' || errno == ERANGE ||
            code < 0 || static_cast<uint64_t>(code) >= spec.domain_size) {
          return Status::InvalidArgument("row " + std::to_string(rows_read_) +
                                         ", column '" + spec.name +
                                         "': bad categorical cell '" + cell +
                                         "'");
        }
        (*category)[col] = static_cast<uint32_t>(code);
      }
    }
    ++rows_read_;
    return true;
  }
  if (in_.bad()) {
    return Status::IoError("read error after row " +
                           std::to_string(rows_read_));
  }
  return false;
}

Result<Dataset> ReadCsv(const Schema& schema, const std::string& path) {
  Result<CsvRowReader> reader = CsvRowReader::Open(schema, path);
  if (!reader.ok()) return reader.status();
  Dataset dataset(schema);
  std::vector<double> numeric;
  std::vector<uint32_t> category;
  for (;;) {
    bool more = false;
    LDP_ASSIGN_OR_RETURN(more, reader.value().NextRow(&numeric, &category));
    if (!more) break;
    const uint64_t row = reader.value().rows_read() - 1;
    dataset.Resize(row + 1);
    for (uint32_t col = 0; col < schema.num_columns(); ++col) {
      if (schema.column(col).type == ColumnType::kNumeric) {
        dataset.set_numeric(row, col, numeric[col]);
      } else {
        dataset.set_category(row, col, category[col]);
      }
    }
  }
  return dataset;
}

}  // namespace ldp::data
