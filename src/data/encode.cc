#include "data/encode.h"

#include <cmath>

namespace ldp::data {

Dataset NormalizeNumeric(const Dataset& dataset) {
  std::vector<ColumnSpec> specs = dataset.schema().columns();
  for (ColumnSpec& spec : specs) {
    if (spec.type == ColumnType::kNumeric) {
      spec.lo = -1.0;
      spec.hi = 1.0;
    }
  }
  auto schema = Schema::Create(std::move(specs));
  LDP_CHECK(schema.ok());
  Dataset out(std::move(schema).value());
  out.Resize(dataset.num_rows());
  for (uint32_t col = 0; col < dataset.schema().num_columns(); ++col) {
    const ColumnSpec& spec = dataset.schema().column(col);
    if (spec.type == ColumnType::kNumeric) {
      const double mid = (spec.hi + spec.lo) / 2.0;
      const double half_width = (spec.hi - spec.lo) / 2.0;
      const std::vector<double>& src = dataset.numeric_column(col);
      for (uint64_t row = 0; row < dataset.num_rows(); ++row) {
        out.set_numeric(row, col, (src[row] - mid) / half_width);
      }
    } else {
      const std::vector<uint32_t>& src = dataset.categorical_column(col);
      for (uint64_t row = 0; row < dataset.num_rows(); ++row) {
        out.set_category(row, col, src[row]);
      }
    }
  }
  return out;
}

uint32_t EncodedFeatureCount(const Schema& schema, uint32_t label_col) {
  uint32_t count = 0;
  for (uint32_t col = 0; col < schema.num_columns(); ++col) {
    if (col == label_col) continue;
    const ColumnSpec& spec = schema.column(col);
    count += (spec.type == ColumnType::kNumeric) ? 1 : spec.domain_size - 1;
  }
  return count;
}

Result<DesignMatrix> EncodeFeatures(const Dataset& dataset,
                                    uint32_t label_col) {
  const Schema& schema = dataset.schema();
  if (label_col >= schema.num_columns()) {
    return Status::OutOfRange("label column index out of range");
  }
  DesignMatrix matrix(dataset.num_rows(),
                      EncodedFeatureCount(schema, label_col));
  uint32_t out_col = 0;
  for (uint32_t col = 0; col < schema.num_columns(); ++col) {
    if (col == label_col) continue;
    const ColumnSpec& spec = schema.column(col);
    if (spec.type == ColumnType::kNumeric) {
      const double mid = (spec.hi + spec.lo) / 2.0;
      const double half_width = (spec.hi - spec.lo) / 2.0;
      const std::vector<double>& src = dataset.numeric_column(col);
      for (uint64_t row = 0; row < dataset.num_rows(); ++row) {
        matrix.set(row, out_col, (src[row] - mid) / half_width);
      }
      ++out_col;
    } else {
      // One-hot with a dropped last level: value l < k-1 sets binary l.
      const std::vector<uint32_t>& src = dataset.categorical_column(col);
      for (uint64_t row = 0; row < dataset.num_rows(); ++row) {
        if (src[row] + 1 < spec.domain_size) {
          matrix.set(row, out_col + src[row], 1.0);
        }
      }
      out_col += spec.domain_size - 1;
    }
  }
  return matrix;
}

Result<std::vector<double>> EncodeNumericLabel(const Dataset& dataset,
                                               uint32_t col) {
  const Schema& schema = dataset.schema();
  if (col >= schema.num_columns()) {
    return Status::OutOfRange("label column index out of range");
  }
  const ColumnSpec& spec = schema.column(col);
  if (spec.type != ColumnType::kNumeric) {
    return Status::InvalidArgument("label column is not numeric");
  }
  const double mid = (spec.hi + spec.lo) / 2.0;
  const double half_width = (spec.hi - spec.lo) / 2.0;
  std::vector<double> labels(dataset.num_rows());
  const std::vector<double>& src = dataset.numeric_column(col);
  for (uint64_t row = 0; row < dataset.num_rows(); ++row) {
    labels[row] = (src[row] - mid) / half_width;
  }
  return labels;
}

Result<std::vector<double>> EncodeBinaryLabel(const Dataset& dataset,
                                              uint32_t col) {
  double mean = 0.0;
  LDP_ASSIGN_OR_RETURN(mean, dataset.ColumnMean(col));
  std::vector<double> labels(dataset.num_rows());
  const std::vector<double>& src = dataset.numeric_column(col);
  for (uint64_t row = 0; row < dataset.num_rows(); ++row) {
    labels[row] = (src[row] > mean) ? 1.0 : -1.0;
  }
  return labels;
}

}  // namespace ldp::data
