// Synthetic census generators standing in for the paper's IPUMS extracts.
//
// The paper evaluates on two census datasets: BR (Brazil, 4M tuples, 16
// attributes: 6 numeric + 10 categorical) and MX (Mexico, 4M tuples, 19
// attributes: 5 numeric + 14 categorical), with the numeric attribute
// "total_income" as the dependent variable of the regression tasks. IPUMS
// microdata cannot be redistributed, so these generators produce datasets
// with the same shape and the statistical properties the experiments depend
// on: matching attribute counts and types, realistic marginals (log-normal
// incomes, gamma-shaped ages, low-cardinality categoricals with skewed
// frequencies), and a latent socioeconomic factor that links income to
// education, hours worked and the categorical attributes — so the ERM tasks
// of Section VI-B are learnable and the LDP-vs-accuracy trade-off behaves as
// in the paper. See DESIGN.md for the substitution rationale.

#ifndef LDP_DATA_CENSUS_H_
#define LDP_DATA_CENSUS_H_

#include <cstdint>

#include "data/dataset.h"
#include "util/result.h"

namespace ldp::data {

/// Name of the income column (the regression tasks' dependent variable) in
/// both census datasets.
inline constexpr char kIncomeColumn[] = "total_income";

/// A BR-like census table: `n` rows, 16 attributes (6 numeric +
/// 10 categorical), numeric columns in native units (see the schema bounds).
/// Deterministic in `seed`.
Result<Dataset> MakeBrazilCensus(uint64_t n, uint64_t seed);

/// An MX-like census table: `n` rows, 19 attributes (5 numeric +
/// 14 categorical). Deterministic in `seed`.
Result<Dataset> MakeMexicoCensus(uint64_t n, uint64_t seed);

}  // namespace ldp::data

#endif  // LDP_DATA_CENSUS_H_
