// Schema: the column layout of a tabular dataset — names, types, and value
// domains. Numeric columns carry their native [lo, hi] range (used by the
// normalisation step that maps them into the mechanisms' canonical [-1, 1]
// domain); categorical columns carry their number of distinct values.

#ifndef LDP_DATA_SCHEMA_H_
#define LDP_DATA_SCHEMA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace ldp::data {

/// Type tag of one dataset column.
enum class ColumnType {
  kNumeric,      ///< Continuous value in [lo, hi].
  kCategorical,  ///< Discrete value in {0, ..., domain_size-1}.
};

/// Describes one column.
struct ColumnSpec {
  std::string name;
  ColumnType type = ColumnType::kNumeric;
  /// Native domain bounds; meaningful for numeric columns.
  double lo = -1.0;
  double hi = 1.0;
  /// Number of distinct values; meaningful for categorical columns.
  uint32_t domain_size = 0;

  static ColumnSpec Numeric(std::string name, double lo, double hi) {
    return {std::move(name), ColumnType::kNumeric, lo, hi, 0};
  }
  static ColumnSpec Categorical(std::string name, uint32_t domain_size) {
    return {std::move(name), ColumnType::kCategorical, 0.0, 0.0, domain_size};
  }
};

/// An immutable ordered collection of column specs.
class Schema {
 public:
  /// Validates and builds a schema: names must be unique and non-empty,
  /// numeric bounds finite with lo < hi, categorical domains >= 2.
  static Result<Schema> Create(std::vector<ColumnSpec> columns);

  /// An empty schema (no columns); useful as a default before assignment.
  Schema() = default;

  /// Number of columns.
  uint32_t num_columns() const {
    return static_cast<uint32_t>(columns_.size());
  }

  /// The spec of column `index` (must be < num_columns()).
  const ColumnSpec& column(uint32_t index) const;

  /// All column specs in order.
  const std::vector<ColumnSpec>& columns() const { return columns_; }

  /// Index of the column with the given name, or NotFound.
  Result<uint32_t> FindColumn(const std::string& name) const;

  /// Number of numeric columns.
  uint32_t NumNumericColumns() const { return num_numeric_; }

  /// Number of categorical columns.
  uint32_t NumCategoricalColumns() const { return num_categorical_; }

  /// Indices of all numeric columns, in schema order.
  std::vector<uint32_t> NumericColumnIndices() const;

  /// Indices of all categorical columns, in schema order.
  std::vector<uint32_t> CategoricalColumnIndices() const;

  /// True when both schemas have identical columns.
  bool Equals(const Schema& other) const;

 private:
  explicit Schema(std::vector<ColumnSpec> columns);

  std::vector<ColumnSpec> columns_;
  uint32_t num_numeric_ = 0;
  uint32_t num_categorical_ = 0;
};

}  // namespace ldp::data

#endif  // LDP_DATA_SCHEMA_H_
