#include "data/generators.h"

#include <cmath>
#include <string>

#include "util/check.h"

namespace ldp::data {

Schema MakeNumericSchema(uint32_t dimension) {
  std::vector<ColumnSpec> specs;
  specs.reserve(dimension);
  for (uint32_t j = 0; j < dimension; ++j) {
    specs.push_back(ColumnSpec::Numeric("x" + std::to_string(j), -1.0, 1.0));
  }
  auto schema = Schema::Create(std::move(specs));
  LDP_CHECK(schema.ok());
  return std::move(schema).value();
}

double SampleTruncatedGaussian(double mean, double stddev, Rng* rng) {
  // Rejection sampling; the callers guarantee the acceptance probability is
  // bounded away from zero (|mean| <= 3, stddev <= 10).
  for (;;) {
    const double x = rng->Gaussian(mean, stddev);
    if (x >= -1.0 && x <= 1.0) return x;
  }
}

double SamplePowerLaw(double offset, double exponent, Rng* rng) {
  // pdf(x) ∝ (x + c)^{-γ} on [-1, 1]. With γ > 1 and c > 1 the CDF inverts
  // in closed form: for u ~ U[0,1),
  //   x = (a + u (b − a))^{1/(1−γ)} − c,
  // where a = (c − 1)^{1−γ}, b = (c + 1)^{1−γ}.
  const double c = offset;
  const double gamma = exponent;
  const double one_minus_gamma = 1.0 - gamma;
  const double a = std::pow(c - 1.0, one_minus_gamma);
  const double b = std::pow(c + 1.0, one_minus_gamma);
  const double u = rng->Uniform01();
  const double x = std::pow(a + u * (b - a), 1.0 / one_minus_gamma) - c;
  // Guard against floating-point drift at the domain edges.
  return std::min(1.0, std::max(-1.0, x));
}

namespace {

/// Fills `dimension` x `n` i.i.d. coordinates using `sample`.
template <typename SampleFn>
Dataset FillIid(uint32_t dimension, uint64_t n, Rng* rng, SampleFn sample) {
  Dataset dataset(MakeNumericSchema(dimension));
  dataset.Resize(n);
  for (uint32_t col = 0; col < dimension; ++col) {
    for (uint64_t row = 0; row < n; ++row) {
      dataset.set_numeric(row, col, sample(rng));
    }
  }
  return dataset;
}

}  // namespace

Result<Dataset> MakeTruncatedGaussian(uint32_t dimension, uint64_t n,
                                      double mean, double stddev, Rng* rng) {
  if (dimension == 0) return Status::InvalidArgument("dimension must be >= 1");
  if (!(std::isfinite(mean) && std::abs(mean) <= 3.0)) {
    return Status::InvalidArgument("|mean| must be <= 3 for truncation");
  }
  if (!(stddev > 0.0 && stddev <= 10.0)) {
    return Status::InvalidArgument("stddev must be in (0, 10]");
  }
  return FillIid(dimension, n, rng, [&](Rng* r) {
    return SampleTruncatedGaussian(mean, stddev, r);
  });
}

Result<Dataset> MakeUniform(uint32_t dimension, uint64_t n, Rng* rng) {
  if (dimension == 0) return Status::InvalidArgument("dimension must be >= 1");
  return FillIid(dimension, n, rng,
                 [](Rng* r) { return r->Uniform(-1.0, 1.0); });
}

Result<Dataset> MakePowerLaw(uint32_t dimension, uint64_t n, double offset,
                             double exponent, Rng* rng) {
  if (dimension == 0) return Status::InvalidArgument("dimension must be >= 1");
  if (!(offset > 1.0)) {
    return Status::InvalidArgument("offset must be > 1");
  }
  if (!(exponent > 1.0)) {
    return Status::InvalidArgument("exponent must be > 1");
  }
  return FillIid(dimension, n, rng, [&](Rng* r) {
    return SamplePowerLaw(offset, exponent, r);
  });
}

}  // namespace ldp::data
