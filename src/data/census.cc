#include "data/census.h"

#include <cmath>
#include <cstring>
#include <vector>

#include "util/check.h"
#include "util/math.h"
#include "util/random.h"

namespace ldp::data {

namespace {

// A categorical attribute whose per-row distribution is the base weight
// vector exponentially tilted by the row's latent socioeconomic factor s:
// Pr[v] ∝ base[v] · exp(tilt[v] · s). Positive tilt makes the value more
// likely for better-off rows, which is what couples the categorical columns
// to income and makes the downstream classification tasks learnable.
struct TiltedCategorical {
  const char* name;
  std::vector<double> base;
  std::vector<double> tilt;
};

uint32_t SampleTilted(const TiltedCategorical& spec, double s, Rng* rng) {
  double total = 0.0;
  double weights[16];
  LDP_DCHECK(spec.base.size() <= 16);
  for (size_t v = 0; v < spec.base.size(); ++v) {
    weights[v] = spec.base[v] * std::exp(spec.tilt[v] * s);
    total += weights[v];
  }
  double u = rng->Uniform01() * total;
  for (size_t v = 0; v + 1 < spec.base.size(); ++v) {
    if (u < weights[v]) return static_cast<uint32_t>(v);
    u -= weights[v];
  }
  return static_cast<uint32_t>(spec.base.size() - 1);
}

// Poisson via Knuth's product method; fine for the small means used here.
uint32_t SamplePoisson(double mean, Rng* rng) {
  const double limit = std::exp(-mean);
  double product = rng->Uniform01();
  uint32_t count = 0;
  while (product > limit) {
    ++count;
    product *= rng->Uniform01();
  }
  return count;
}

// Gamma(2, scale)-shaped adult age: 16 + Exp + Exp, clamped to [16, 95].
double SampleAge(Rng* rng) {
  const double raw =
      16.0 + rng->Exponential(1.0 / 12.0) + rng->Exponential(1.0 / 12.0);
  return Clamp(raw, 16.0, 95.0);
}

struct RowCore {
  double s;          // latent socioeconomic factor, N(0, 1)
  double age;        // years
  double schooling;  // years of education
  double hours;      // weekly work hours (0 when not working)
  double children;   // number of children
  double income;     // currency units, log-normal and heavily right-skewed
  bool working;
};

RowCore SampleRowCore(double income_cap, Rng* rng) {
  RowCore row;
  row.s = rng->Gaussian();
  row.age = SampleAge(rng);
  row.schooling = Clamp(std::round(9.0 + 3.5 * row.s + rng->Gaussian(0.0, 2.0)),
                        0.0, 18.0);
  // Employment: better-off and prime-age rows are more likely to work.
  const double prime_age = (row.age >= 22.0 && row.age <= 60.0) ? 0.8 : -0.8;
  row.working = rng->Bernoulli(Sigmoid(0.9 + 0.5 * row.s + prime_age));
  row.hours = row.working
                  ? Clamp(40.0 + 4.0 * row.s + rng->Gaussian(0.0, 9.0), 1.0,
                          99.0)
                  : 0.0;
  const double fertile = (row.age >= 25.0 && row.age <= 55.0) ? 0.4 : -0.3;
  row.children = static_cast<double>(std::min<uint32_t>(
      12, SamplePoisson(std::exp(0.45 - 0.18 * row.s + fertile), rng)));
  // Log-normal income with returns to schooling/hours and an age hump.
  const double hump = (row.age - 45.0) / 30.0;
  double log_income = 7.2 + 0.85 * row.s + 0.055 * row.schooling +
                      0.008 * row.hours - 0.6 * hump * hump +
                      rng->Gaussian(0.0, 0.45);
  if (!row.working) log_income -= 1.1;
  row.income = Clamp(std::exp(log_income), 0.0, income_cap);
  return row;
}

Result<Dataset> MakeCensus(uint64_t n, uint64_t seed,
                           const std::vector<ColumnSpec>& numeric_specs,
                           const std::vector<TiltedCategorical>& categoricals,
                           double income_cap) {
  std::vector<ColumnSpec> specs = numeric_specs;
  for (const TiltedCategorical& cat : categoricals) {
    LDP_CHECK(cat.base.size() == cat.tilt.size());
    specs.push_back(ColumnSpec::Categorical(
        cat.name, static_cast<uint32_t>(cat.base.size())));
  }
  Schema schema;
  LDP_ASSIGN_OR_RETURN(schema, Schema::Create(std::move(specs)));
  Dataset dataset(std::move(schema));
  dataset.Resize(n);

  const uint32_t num_numeric = static_cast<uint32_t>(numeric_specs.size());
  Rng rng(seed);
  for (uint64_t row = 0; row < n; ++row) {
    const RowCore core = SampleRowCore(income_cap, &rng);
    // Numeric columns are matched by name so BR and MX can pick subsets.
    for (uint32_t col = 0; col < num_numeric; ++col) {
      const ColumnSpec& spec = dataset.schema().column(col);
      double value = 0.0;
      if (std::strcmp(spec.name.c_str(), "age") == 0) {
        value = core.age;
      } else if (std::strcmp(spec.name.c_str(), "years_schooling") == 0) {
        value = core.schooling;
      } else if (std::strcmp(spec.name.c_str(), "hours_per_week") == 0) {
        value = core.hours;
      } else if (std::strcmp(spec.name.c_str(), "num_children") == 0) {
        value = core.children;
      } else if (std::strcmp(spec.name.c_str(), kIncomeColumn) == 0) {
        value = core.income;
      } else if (std::strcmp(spec.name.c_str(), "rooms") == 0) {
        value = Clamp(std::round(4.0 + 1.6 * core.s + rng.Gaussian(0.0, 1.5)),
                      1.0, 20.0);
      } else {
        LDP_CHECK_MSG(false, "unknown census numeric column");
      }
      dataset.set_numeric(row, col, Clamp(value, spec.lo, spec.hi));
    }
    for (uint32_t c = 0; c < categoricals.size(); ++c) {
      dataset.set_category(row, num_numeric + c,
                           SampleTilted(categoricals[c], core.s, &rng));
    }
  }
  return dataset;
}

}  // namespace

Result<Dataset> MakeBrazilCensus(uint64_t n, uint64_t seed) {
  const std::vector<ColumnSpec> numeric_specs = {
      ColumnSpec::Numeric("age", 16.0, 95.0),
      ColumnSpec::Numeric("years_schooling", 0.0, 18.0),
      ColumnSpec::Numeric("hours_per_week", 0.0, 99.0),
      ColumnSpec::Numeric("num_children", 0.0, 12.0),
      ColumnSpec::Numeric("rooms", 1.0, 20.0),
      ColumnSpec::Numeric(kIncomeColumn, 0.0, 50000.0),
  };
  const std::vector<TiltedCategorical> categoricals = {
      {"gender", {0.49, 0.51}, {0.05, -0.05}},
      {"marital_status",
       {0.36, 0.44, 0.08, 0.07, 0.05},
       {-0.10, 0.15, 0.05, -0.20, -0.05}},
      {"race", {0.45, 0.40, 0.08, 0.05, 0.02}, {0.30, -0.15, -0.20, -0.10, 0.0}},
      {"region",
       {0.42, 0.27, 0.15, 0.09, 0.07},
       {0.20, -0.30, 0.15, -0.15, 0.05}},
      {"urban", {0.85, 0.15}, {0.25, -0.25}},
      {"employment_status",
       {0.55, 0.18, 0.09, 0.18},
       {0.35, 0.10, -0.40, -0.30}},
      {"occupation",
       {0.17, 0.15, 0.13, 0.12, 0.11, 0.09, 0.08, 0.07, 0.05, 0.03},
       {-0.35, -0.20, -0.10, 0.0, 0.10, 0.15, 0.25, 0.35, 0.45, 0.60}},
      {"owns_home", {0.70, 0.30}, {0.15, -0.15}},
      {"literacy", {0.91, 0.09}, {0.45, -0.45}},
      {"religion",
       {0.50, 0.22, 0.13, 0.08, 0.05, 0.02},
       {0.05, -0.10, 0.0, 0.10, -0.05, 0.15}},
  };
  return MakeCensus(n, seed, numeric_specs, categoricals,
                    /*income_cap=*/50000.0);
}

Result<Dataset> MakeMexicoCensus(uint64_t n, uint64_t seed) {
  const std::vector<ColumnSpec> numeric_specs = {
      ColumnSpec::Numeric("age", 16.0, 95.0),
      ColumnSpec::Numeric("years_schooling", 0.0, 18.0),
      ColumnSpec::Numeric("hours_per_week", 0.0, 99.0),
      ColumnSpec::Numeric("num_children", 0.0, 12.0),
      ColumnSpec::Numeric(kIncomeColumn, 0.0, 40000.0),
  };
  const std::vector<TiltedCategorical> categoricals = {
      {"gender", {0.49, 0.51}, {0.05, -0.05}},
      {"marital_status",
       {0.34, 0.46, 0.07, 0.08, 0.05},
       {-0.10, 0.15, 0.05, -0.20, -0.05}},
      {"religion", {0.78, 0.11, 0.08, 0.03}, {0.0, 0.05, -0.10, 0.10}},
      {"indigenous", {0.15, 0.85}, {-0.40, 0.40}},
      {"state_region",
       {0.21, 0.17, 0.15, 0.13, 0.11, 0.10, 0.08, 0.05},
       {0.25, 0.10, -0.05, -0.15, -0.20, 0.05, -0.25, 0.30}},
      {"urban", {0.79, 0.21}, {0.25, -0.25}},
      {"employment_status",
       {0.53, 0.20, 0.08, 0.19},
       {0.35, 0.10, -0.40, -0.30}},
      {"occupation",
       {0.16, 0.14, 0.12, 0.11, 0.10, 0.09, 0.08, 0.08, 0.06, 0.04, 0.02},
       {-0.35, -0.25, -0.10, 0.0, 0.05, 0.10, 0.20, 0.30, 0.40, 0.50, 0.65}},
      {"owns_home", {0.68, 0.32}, {0.15, -0.15}},
      {"literacy", {0.93, 0.07}, {0.45, -0.45}},
      {"health_insurance", {0.55, 0.35, 0.10}, {0.30, -0.20, -0.10}},
      {"internet_access", {0.52, 0.48}, {0.50, -0.50}},
      {"owns_vehicle", {0.44, 0.56}, {0.40, -0.40}},
      {"education_level",
       {0.12, 0.28, 0.26, 0.18, 0.11, 0.05},
       {-0.60, -0.25, 0.0, 0.25, 0.50, 0.80}},
  };
  return MakeCensus(n, seed, numeric_specs, categoricals,
                    /*income_cap=*/40000.0);
}

}  // namespace ldp::data
