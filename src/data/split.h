// Train/test and k-fold splitting for the cross-validation harness of the
// Section VI-B experiments (10-fold CV repeated 5 times in the paper).

#ifndef LDP_DATA_SPLIT_H_
#define LDP_DATA_SPLIT_H_

#include <cstdint>
#include <vector>

#include "util/random.h"
#include "util/result.h"

namespace ldp::data {

/// A partition of row indices into a training set and a test set.
struct Split {
  std::vector<uint64_t> train;
  std::vector<uint64_t> test;
};

/// Shuffles {0, ..., n-1} and cuts it into `num_folds` folds of (nearly)
/// equal size; fold i's test set is the i-th cut, its training set the rest.
/// Fails unless 2 <= num_folds <= n.
Result<std::vector<Split>> KFoldSplit(uint64_t n, uint32_t num_folds,
                                      Rng* rng);

/// A single random split holding out `test_fraction` of the rows. Fails
/// unless test_fraction ∈ (0, 1) and both sides end up non-empty.
Result<Split> TrainTestSplit(uint64_t n, double test_fraction, Rng* rng);

}  // namespace ldp::data

#endif  // LDP_DATA_SPLIT_H_
