#include "data/schema_text.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

namespace ldp::data {

namespace {

Status LineError(int line_number, const std::string& message) {
  return Status::InvalidArgument("schema line " +
                                 std::to_string(line_number) + ": " + message);
}

Result<double> ParseDouble(const std::string& token, int line_number) {
  char* end = nullptr;
  errno = 0;
  const double value = std::strtod(token.c_str(), &end);
  if (end == token.c_str() || *end != '\0' || errno == ERANGE ||
      !std::isfinite(value)) {
    return LineError(line_number, "bad number '" + token + "'");
  }
  return value;
}

}  // namespace

Result<Schema> ParseSchemaText(const std::string& text) {
  std::vector<ColumnSpec> specs;
  std::stringstream stream(text);
  std::string line;
  int line_number = 0;
  while (std::getline(stream, line)) {
    ++line_number;
    std::stringstream tokens(line);
    std::string kind;
    if (!(tokens >> kind) || kind[0] == '#') continue;
    std::string name;
    if (!(tokens >> name)) {
      return LineError(line_number, "missing column name");
    }
    if (kind == "numeric") {
      std::string lo_token, hi_token;
      if (!(tokens >> lo_token >> hi_token)) {
        return LineError(line_number, "numeric needs '<name> <lo> <hi>'");
      }
      double lo = 0.0, hi = 0.0;
      LDP_ASSIGN_OR_RETURN(lo, ParseDouble(lo_token, line_number));
      LDP_ASSIGN_OR_RETURN(hi, ParseDouble(hi_token, line_number));
      specs.push_back(ColumnSpec::Numeric(name, lo, hi));
    } else if (kind == "categorical") {
      std::string domain_token;
      if (!(tokens >> domain_token)) {
        return LineError(line_number,
                         "categorical needs '<name> <domain_size>'");
      }
      char* end = nullptr;
      errno = 0;
      const long domain = std::strtol(domain_token.c_str(), &end, 10);
      if (end == domain_token.c_str() || *end != '\0' || errno == ERANGE ||
          domain < 0) {
        return LineError(line_number,
                         "bad domain size '" + domain_token + "'");
      }
      specs.push_back(
          ColumnSpec::Categorical(name, static_cast<uint32_t>(domain)));
    } else {
      return LineError(line_number, "unknown column kind '" + kind +
                                        "' (want numeric|categorical)");
    }
    std::string extra;
    if (tokens >> extra) {
      return LineError(line_number, "trailing token '" + extra + "'");
    }
  }
  return Schema::Create(std::move(specs));
}

Result<Schema> ReadSchemaFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::IoError("cannot open schema file: " + path);
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  return ParseSchemaText(buffer.str());
}

std::string FormatSchemaText(const Schema& schema) {
  std::stringstream out;
  out.precision(17);
  for (uint32_t col = 0; col < schema.num_columns(); ++col) {
    const ColumnSpec& spec = schema.column(col);
    if (spec.type == ColumnType::kNumeric) {
      out << "numeric " << spec.name << ' ' << spec.lo << ' ' << spec.hi
          << '\n';
    } else {
      out << "categorical " << spec.name << ' ' << spec.domain_size << '\n';
    }
  }
  return out.str();
}

Status WriteSchemaFile(const Schema& schema, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status::IoError("cannot open for writing: " + path);
  }
  out << FormatSchemaText(schema);
  out.flush();
  if (!out) {
    return Status::IoError("write failed: " + path);
  }
  return Status::OK();
}

}  // namespace ldp::data
