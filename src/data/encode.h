// Feature encoding for collection and learning:
//  - NormalizeNumeric maps every numeric column from its native [lo, hi]
//    domain to the mechanisms' canonical [-1, 1] domain (the paper's
//    preprocessing step in Section VI).
//  - EncodeFeatures builds the design matrix of the ERM experiments
//    (Section VI-B): numeric attributes normalised to [-1, 1]; each
//    categorical attribute with k values expanded into k-1 binary {0, 1}
//    attributes (value l < k-1 sets the l-th binary attribute, the last
//    value sets none).
//  - EncodeNumericLabel / EncodeBinaryLabel extract the dependent variable
//    for regression (normalised to [-1, 1]) and classification (±1 split at
//    the column mean), respectively.

#ifndef LDP_DATA_ENCODE_H_
#define LDP_DATA_ENCODE_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "util/check.h"
#include "util/result.h"

namespace ldp::data {

/// A dense row-major matrix of encoded features.
class DesignMatrix {
 public:
  DesignMatrix(uint64_t num_rows, uint32_t num_cols)
      : num_rows_(num_rows),
        num_cols_(num_cols),
        values_(num_rows * num_cols, 0.0) {}

  uint64_t num_rows() const { return num_rows_; }
  uint32_t num_cols() const { return num_cols_; }

  double at(uint64_t row, uint32_t col) const {
    LDP_DCHECK(row < num_rows_ && col < num_cols_);
    return values_[row * num_cols_ + col];
  }
  void set(uint64_t row, uint32_t col, double value) {
    LDP_DCHECK(row < num_rows_ && col < num_cols_);
    values_[row * num_cols_ + col] = value;
  }

  /// Pointer to the first element of `row` (num_cols() contiguous doubles).
  const double* row(uint64_t r) const {
    LDP_DCHECK(r < num_rows_);
    return values_.data() + r * num_cols_;
  }

  /// The full row-major buffer.
  const std::vector<double>& values() const { return values_; }

 private:
  uint64_t num_rows_;
  uint32_t num_cols_;
  std::vector<double> values_;
};

/// Returns a copy of `dataset` with every numeric column affinely mapped
/// from its schema [lo, hi] to [-1, 1] (schema bounds updated accordingly).
/// Categorical columns are untouched.
Dataset NormalizeNumeric(const Dataset& dataset);

/// Encodes every column except `label_col` into the ERM design matrix
/// described above. Fails if `label_col` is out of range.
Result<DesignMatrix> EncodeFeatures(const Dataset& dataset, uint32_t label_col);

/// The dependent variable for linear regression: column `col` normalised to
/// [-1, 1]. Fails unless `col` is numeric.
Result<std::vector<double>> EncodeNumericLabel(const Dataset& dataset,
                                               uint32_t col);

/// The dependent variable for classification: +1 when the (numeric) value of
/// column `col` exceeds the column mean, else -1 — the paper's binarisation
/// of "total_income". Fails unless `col` is numeric and the dataset is
/// non-empty.
Result<std::vector<double>> EncodeBinaryLabel(const Dataset& dataset,
                                              uint32_t col);

/// Number of design-matrix columns produced by EncodeFeatures: numeric
/// columns count 1, categorical columns count domain_size - 1.
uint32_t EncodedFeatureCount(const Schema& schema, uint32_t label_col);

}  // namespace ldp::data

#endif  // LDP_DATA_ENCODE_H_
