// Text serialisation of Schema, used by the command-line tools so a schema
// can live in a sidecar file next to its CSV. Format: one column per line,
//
//   numeric <name> <lo> <hi>
//   categorical <name> <domain_size>
//
// Blank lines and lines starting with '#' are ignored.

#ifndef LDP_DATA_SCHEMA_TEXT_H_
#define LDP_DATA_SCHEMA_TEXT_H_

#include <string>

#include "data/schema.h"
#include "util/result.h"

namespace ldp::data {

/// Parses the textual schema format above. Returns InvalidArgument with a
/// line-numbered message on malformed input.
Result<Schema> ParseSchemaText(const std::string& text);

/// Reads and parses a schema file.
Result<Schema> ReadSchemaFile(const std::string& path);

/// Serialises a schema to the textual format (round-trips through
/// ParseSchemaText).
std::string FormatSchemaText(const Schema& schema);

/// Writes FormatSchemaText(schema) to `path`.
Status WriteSchemaFile(const Schema& schema, const std::string& path);

}  // namespace ldp::data

#endif  // LDP_DATA_SCHEMA_TEXT_H_
