#include "data/dataset.h"

#include <utility>

namespace ldp::data {

Dataset::Dataset(Schema schema) : schema_(std::move(schema)) {
  slot_of_column_.reserve(schema_.num_columns());
  for (uint32_t col = 0; col < schema_.num_columns(); ++col) {
    if (schema_.column(col).type == ColumnType::kNumeric) {
      slot_of_column_.push_back(static_cast<uint32_t>(numeric_store_.size()));
      numeric_store_.emplace_back();
    } else {
      slot_of_column_.push_back(
          static_cast<uint32_t>(categorical_store_.size()));
      categorical_store_.emplace_back();
    }
  }
}

void Dataset::Resize(uint64_t n) {
  num_rows_ = n;
  for (std::vector<double>& column : numeric_store_) column.resize(n, 0.0);
  for (std::vector<uint32_t>& column : categorical_store_) column.resize(n, 0);
}

Result<double> Dataset::ColumnMean(uint32_t col) const {
  if (col >= schema_.num_columns()) {
    return Status::OutOfRange("column index out of range");
  }
  if (schema_.column(col).type != ColumnType::kNumeric) {
    return Status::InvalidArgument("column is not numeric");
  }
  if (num_rows_ == 0) {
    return Status::FailedPrecondition("dataset is empty");
  }
  double sum = 0.0;
  for (const double v : numeric_column(col)) sum += v;
  return sum / static_cast<double>(num_rows_);
}

Result<std::vector<double>> Dataset::ColumnFrequencies(uint32_t col) const {
  if (col >= schema_.num_columns()) {
    return Status::OutOfRange("column index out of range");
  }
  if (schema_.column(col).type != ColumnType::kCategorical) {
    return Status::InvalidArgument("column is not categorical");
  }
  if (num_rows_ == 0) {
    return Status::FailedPrecondition("dataset is empty");
  }
  std::vector<double> freqs(schema_.column(col).domain_size, 0.0);
  for (const uint32_t v : categorical_column(col)) freqs[v] += 1.0;
  for (double& f : freqs) f /= static_cast<double>(num_rows_);
  return freqs;
}

Dataset Dataset::Take(const std::vector<uint64_t>& rows) const {
  Dataset out(schema_);
  out.Resize(rows.size());
  for (uint32_t col = 0; col < schema_.num_columns(); ++col) {
    if (schema_.column(col).type == ColumnType::kNumeric) {
      const std::vector<double>& src = numeric_column(col);
      for (size_t i = 0; i < rows.size(); ++i) {
        LDP_DCHECK(rows[i] < num_rows_);
        out.set_numeric(i, col, src[rows[i]]);
      }
    } else {
      const std::vector<uint32_t>& src = categorical_column(col);
      for (size_t i = 0; i < rows.size(); ++i) {
        LDP_DCHECK(rows[i] < num_rows_);
        out.set_category(i, col, src[rows[i]]);
      }
    }
  }
  return out;
}

Result<Dataset> Dataset::SelectColumns(const std::vector<uint32_t>& cols) const {
  std::vector<ColumnSpec> specs;
  specs.reserve(cols.size());
  for (const uint32_t col : cols) {
    if (col >= schema_.num_columns()) {
      return Status::OutOfRange("column index out of range");
    }
    specs.push_back(schema_.column(col));
  }
  Schema selected;
  LDP_ASSIGN_OR_RETURN(selected, Schema::Create(std::move(specs)));
  Dataset out(std::move(selected));
  out.Resize(num_rows_);
  for (uint32_t new_col = 0; new_col < cols.size(); ++new_col) {
    const uint32_t old_col = cols[new_col];
    if (schema_.column(old_col).type == ColumnType::kNumeric) {
      const std::vector<double>& src = numeric_column(old_col);
      for (uint64_t row = 0; row < num_rows_; ++row) {
        out.set_numeric(row, new_col, src[row]);
      }
    } else {
      const std::vector<uint32_t>& src = categorical_column(old_col);
      for (uint64_t row = 0; row < num_rows_; ++row) {
        out.set_category(row, new_col, src[row]);
      }
    }
  }
  return out;
}

}  // namespace ldp::data
