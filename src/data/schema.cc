#include "data/schema.h"

#include <cmath>
#include <unordered_set>

#include "util/check.h"

namespace ldp::data {

Result<Schema> Schema::Create(std::vector<ColumnSpec> columns) {
  std::unordered_set<std::string> names;
  for (const ColumnSpec& spec : columns) {
    if (spec.name.empty()) {
      return Status::InvalidArgument("column name must be non-empty");
    }
    if (!names.insert(spec.name).second) {
      return Status::InvalidArgument("duplicate column name: " + spec.name);
    }
    if (spec.type == ColumnType::kNumeric) {
      if (!(std::isfinite(spec.lo) && std::isfinite(spec.hi) &&
            spec.lo < spec.hi)) {
        return Status::InvalidArgument("column " + spec.name +
                                       ": numeric bounds must be finite with "
                                       "lo < hi");
      }
    } else {
      if (spec.domain_size < 2) {
        return Status::InvalidArgument(
            "column " + spec.name + ": categorical domain needs >= 2 values");
      }
    }
  }
  return Schema(std::move(columns));
}

Schema::Schema(std::vector<ColumnSpec> columns) : columns_(std::move(columns)) {
  for (const ColumnSpec& spec : columns_) {
    if (spec.type == ColumnType::kNumeric) {
      ++num_numeric_;
    } else {
      ++num_categorical_;
    }
  }
}

const ColumnSpec& Schema::column(uint32_t index) const {
  LDP_CHECK(index < columns_.size());
  return columns_[index];
}

Result<uint32_t> Schema::FindColumn(const std::string& name) const {
  for (uint32_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return i;
  }
  return Status::NotFound("no column named " + name);
}

std::vector<uint32_t> Schema::NumericColumnIndices() const {
  std::vector<uint32_t> indices;
  for (uint32_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].type == ColumnType::kNumeric) indices.push_back(i);
  }
  return indices;
}

std::vector<uint32_t> Schema::CategoricalColumnIndices() const {
  std::vector<uint32_t> indices;
  for (uint32_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].type == ColumnType::kCategorical) indices.push_back(i);
  }
  return indices;
}

bool Schema::Equals(const Schema& other) const {
  if (columns_.size() != other.columns_.size()) return false;
  for (size_t i = 0; i < columns_.size(); ++i) {
    const ColumnSpec& a = columns_[i];
    const ColumnSpec& b = other.columns_[i];
    if (a.name != b.name || a.type != b.type) return false;
    if (a.type == ColumnType::kNumeric) {
      if (a.lo != b.lo || a.hi != b.hi) return false;
    } else {
      if (a.domain_size != b.domain_size) return false;
    }
  }
  return true;
}

}  // namespace ldp::data
