#include "data/split.h"

#include <numeric>

#include "util/sampling.h"

namespace ldp::data {

namespace {

std::vector<uint64_t> ShuffledIndices(uint64_t n, Rng* rng) {
  std::vector<uint64_t> indices(n);
  std::iota(indices.begin(), indices.end(), 0);
  Shuffle(&indices, rng);
  return indices;
}

}  // namespace

Result<std::vector<Split>> KFoldSplit(uint64_t n, uint32_t num_folds,
                                      Rng* rng) {
  if (num_folds < 2) {
    return Status::InvalidArgument("need at least 2 folds");
  }
  if (num_folds > n) {
    return Status::InvalidArgument("more folds than rows");
  }
  const std::vector<uint64_t> indices = ShuffledIndices(n, rng);
  // Fold i covers [bounds[i], bounds[i+1]); sizes differ by at most one.
  std::vector<uint64_t> bounds(num_folds + 1);
  for (uint32_t i = 0; i <= num_folds; ++i) {
    bounds[i] = n * i / num_folds;
  }
  std::vector<Split> splits(num_folds);
  for (uint32_t i = 0; i < num_folds; ++i) {
    Split& split = splits[i];
    split.test.assign(indices.begin() + bounds[i],
                      indices.begin() + bounds[i + 1]);
    split.train.reserve(n - split.test.size());
    split.train.insert(split.train.end(), indices.begin(),
                       indices.begin() + bounds[i]);
    split.train.insert(split.train.end(), indices.begin() + bounds[i + 1],
                       indices.end());
  }
  return splits;
}

Result<Split> TrainTestSplit(uint64_t n, double test_fraction, Rng* rng) {
  if (!(test_fraction > 0.0 && test_fraction < 1.0)) {
    return Status::InvalidArgument("test_fraction must be in (0, 1)");
  }
  const uint64_t test_size =
      static_cast<uint64_t>(static_cast<double>(n) * test_fraction);
  if (test_size == 0 || test_size >= n) {
    return Status::InvalidArgument("split would leave an empty side");
  }
  const std::vector<uint64_t> indices = ShuffledIndices(n, rng);
  Split split;
  split.test.assign(indices.begin(), indices.begin() + test_size);
  split.train.assign(indices.begin() + test_size, indices.end());
  return split;
}

}  // namespace ldp::data
