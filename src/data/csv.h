// CSV import/export for Dataset: a header row of column names followed by
// one row per tuple; numeric cells as decimal literals, categorical cells as
// their integer codes. Lets users bring their own extracts (e.g. real IPUMS
// data they are licensed for) into the collection pipeline.

#ifndef LDP_DATA_CSV_H_
#define LDP_DATA_CSV_H_

#include <string>

#include "data/dataset.h"
#include "util/result.h"
#include "util/status.h"

namespace ldp::data {

/// Writes `dataset` to `path`, overwriting any existing file.
Status WriteCsv(const Dataset& dataset, const std::string& path);

/// Reads a CSV written in the format above. The file's header must match
/// `schema`'s column names exactly (order included); cells are validated
/// against the schema (numeric parseable and finite, categorical codes in
/// range).
Result<Dataset> ReadCsv(const Schema& schema, const std::string& path);

}  // namespace ldp::data

#endif  // LDP_DATA_CSV_H_
