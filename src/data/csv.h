// CSV import/export for Dataset: a header row of column names followed by
// one row per tuple; numeric cells as decimal literals, categorical cells as
// their integer codes. Lets users bring their own extracts (e.g. real IPUMS
// data they are licensed for) into the collection pipeline.
//
// Two read surfaces: ReadCsv materializes the whole table into a Dataset;
// CsvRowReader streams one validated row at a time, for pipelines that must
// not hold millions of rows in memory (tools/ldp_report privatizes each row
// as it arrives). ReadCsv is implemented over CsvRowReader, so the two can
// never diverge on what they accept.

#ifndef LDP_DATA_CSV_H_
#define LDP_DATA_CSV_H_

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "util/result.h"
#include "util/status.h"

namespace ldp::data {

/// Writes `dataset` to `path`, overwriting any existing file.
Status WriteCsv(const Dataset& dataset, const std::string& path);

/// Reads a CSV written in the format above. The file's header must match
/// `schema`'s column names exactly (order included); cells are validated
/// against the schema (numeric parseable and finite, categorical codes in
/// range).
Result<Dataset> ReadCsv(const Schema& schema, const std::string& path);

/// Counts data rows (non-empty lines after the header row) without
/// validating them — the cheap first pass the streaming tools use to fix
/// shard/chunk boundaries before the row-at-a-time privatizing pass. Fails
/// on a missing or empty file.
Result<uint64_t> CountCsvDataRows(const std::string& path);

/// Streaming row-at-a-time CSV reader over the same format and validation
/// rules as ReadCsv, with O(1) memory in the row count. Empty lines are
/// skipped, exactly as in ReadCsv.
class CsvRowReader {
 public:
  /// Opens `path` and validates its header row against `schema`; fails on a
  /// missing file, an empty file, or any header mismatch. `schema` must
  /// outlive the reader.
  static Result<CsvRowReader> Open(const Schema& schema,
                                   const std::string& path);

  /// Reads the next data row. Both output vectors are resized to one slot
  /// per schema column: a numeric column fills its `numeric` slot, a
  /// categorical column its `category` slot (the sibling slot is zeroed).
  /// Returns true when a row was read, false on clean end of file, and an
  /// error on a malformed row (reported with its data-row index, matching
  /// ReadCsv).
  Result<bool> NextRow(std::vector<double>* numeric,
                       std::vector<uint32_t>* category);

  /// Data rows successfully returned so far.
  uint64_t rows_read() const { return rows_read_; }

 private:
  CsvRowReader(const Schema* schema, std::ifstream in)
      : schema_(schema), in_(std::move(in)) {}

  const Schema* schema_;
  std::ifstream in_;
  uint64_t rows_read_ = 0;
  std::string line_;  // reused line buffer
};

}  // namespace ldp::data

#endif  // LDP_DATA_CSV_H_
