// Dataset: columnar storage for mixed numeric/categorical tabular data.
// Numeric columns are stored as contiguous double vectors and categorical
// columns as contiguous uint32 vectors, which keeps per-attribute scans
// (the dominant access pattern of collection simulations) cache-friendly.

#ifndef LDP_DATA_DATASET_H_
#define LDP_DATA_DATASET_H_

#include <cstdint>
#include <vector>

#include "data/schema.h"
#include "util/check.h"
#include "util/result.h"

namespace ldp::data {

/// A table of `num_rows` rows laid out column-major according to a Schema.
class Dataset {
 public:
  /// An empty dataset with the given schema.
  explicit Dataset(Schema schema);

  const Schema& schema() const { return schema_; }

  uint64_t num_rows() const { return num_rows_; }

  /// Grows or shrinks to exactly `n` rows; new cells are zero.
  void Resize(uint64_t n);

  /// Reads a numeric cell; `col` must be a numeric column.
  double numeric(uint64_t row, uint32_t col) const {
    LDP_DCHECK(row < num_rows_);
    return numeric_store_[numeric_slot(col)][row];
  }

  /// Writes a numeric cell; `col` must be a numeric column.
  void set_numeric(uint64_t row, uint32_t col, double value) {
    LDP_DCHECK(row < num_rows_);
    numeric_store_[numeric_slot(col)][row] = value;
  }

  /// Reads a categorical cell; `col` must be a categorical column.
  uint32_t category(uint64_t row, uint32_t col) const {
    LDP_DCHECK(row < num_rows_);
    return categorical_store_[categorical_slot(col)][row];
  }

  /// Writes a categorical cell; `col` must be a categorical column.
  void set_category(uint64_t row, uint32_t col, uint32_t value) {
    LDP_DCHECK(row < num_rows_);
    LDP_DCHECK(value < schema_.column(col).domain_size);
    categorical_store_[categorical_slot(col)][row] = value;
  }

  /// Whole-column view of a numeric column.
  const std::vector<double>& numeric_column(uint32_t col) const {
    return numeric_store_[numeric_slot(col)];
  }

  /// Whole-column view of a categorical column.
  const std::vector<uint32_t>& categorical_column(uint32_t col) const {
    return categorical_store_[categorical_slot(col)];
  }

  /// Exact mean of a numeric column (the ground truth the LDP estimates are
  /// compared against). Fails for a categorical column or an empty dataset.
  Result<double> ColumnMean(uint32_t col) const;

  /// Exact value frequencies of a categorical column (sums to 1). Fails for
  /// a numeric column or an empty dataset.
  Result<std::vector<double>> ColumnFrequencies(uint32_t col) const;

  /// A new dataset containing the given rows (in the given order); indices
  /// must be < num_rows(). Used by fold splitting and subsampling.
  Dataset Take(const std::vector<uint64_t>& rows) const;

  /// A new dataset restricted to the given columns (in the given order).
  /// Used by the dimensionality sweep (Fig. 8).
  Result<Dataset> SelectColumns(const std::vector<uint32_t>& cols) const;

 private:
  uint32_t numeric_slot(uint32_t col) const {
    LDP_DCHECK(col < schema_.num_columns());
    LDP_DCHECK(schema_.column(col).type == ColumnType::kNumeric);
    return slot_of_column_[col];
  }
  uint32_t categorical_slot(uint32_t col) const {
    LDP_DCHECK(col < schema_.num_columns());
    LDP_DCHECK(schema_.column(col).type == ColumnType::kCategorical);
    return slot_of_column_[col];
  }

  Schema schema_;
  uint64_t num_rows_ = 0;
  // slot_of_column_[col] indexes into the store matching the column's type.
  std::vector<uint32_t> slot_of_column_;
  std::vector<std::vector<double>> numeric_store_;
  std::vector<std::vector<uint32_t>> categorical_store_;
};

}  // namespace ldp::data

#endif  // LDP_DATA_DATASET_H_
