// Dependency-free SHA-256 and HMAC-SHA256 (FIPS 180-4 / RFC 2104), plus the
// constant-time comparison the authenticated-HELLO verifier needs. The wire
// layer tags HELLO frames with HMAC-SHA256 over the campaign key; nothing
// here depends on OpenSSL or any other external crypto library, keeping the
// collector edge self-contained.
//
// Test vectors: tests/hmac_test.cc pins the FIPS 180-4 SHA-256 examples and
// the RFC 4231 HMAC-SHA256 suite (including the truncated-key and
// oversized-key cases), so a transcription slip in the compression function
// fails loudly rather than producing tags nothing else can verify.

#ifndef LDP_UTIL_HMAC_H_
#define LDP_UTIL_HMAC_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace ldp::util {

/// Digest size of SHA-256 (and therefore of HMAC-SHA256 tags).
constexpr size_t kSha256DigestBytes = 32;

/// Incremental SHA-256. Usage: Update() any number of times, then Finish()
/// exactly once. Reset() returns the hasher to its initial state.
class Sha256 {
 public:
  Sha256() { Reset(); }

  void Reset();
  void Update(const void* data, size_t size);
  void Update(const std::string& data) { Update(data.data(), data.size()); }

  /// Writes the 32-byte digest to `digest` and leaves the hasher finalized
  /// (Reset() before reuse).
  void Finish(uint8_t digest[kSha256DigestBytes]);

 private:
  void Compress(const uint8_t block[64]);

  uint32_t state_[8];
  uint64_t total_bytes_ = 0;
  uint8_t buffer_[64];
  size_t buffered_ = 0;
};

/// One-shot SHA-256; returns the 32-byte digest as a binary string.
std::string Sha256Digest(const void* data, size_t size);
inline std::string Sha256Digest(const std::string& data) {
  return Sha256Digest(data.data(), data.size());
}

/// HMAC-SHA256 per RFC 2104: keys longer than the 64-byte block are hashed
/// first, shorter ones zero-padded. Returns the 32-byte tag as a binary
/// string.
std::string HmacSha256(const std::string& key, const std::string& message);

/// Constant-time equality: the comparison time depends only on the lengths,
/// never on where the first mismatching byte sits, so a verifier cannot be
/// timed into leaking tag prefixes. Unequal lengths return false (length is
/// public — tags are fixed-size).
bool ConstantTimeEqual(const std::string& a, const std::string& b);

}  // namespace ldp::util

#endif  // LDP_UTIL_HMAC_H_
