// Result<T>: a Status or a value (the StatusOr / rocksdb-style pairing of
// Status with a payload).

#ifndef LDP_UTIL_RESULT_H_
#define LDP_UTIL_RESULT_H_

#include <optional>
#include <utility>

#include "util/check.h"
#include "util/status.h"

namespace ldp {

/// Holds either an OK status and a T, or a non-OK status and no value.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (OK result).
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}  // NOLINT

  /// Implicit construction from a non-OK status.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    LDP_CHECK_MSG(!status_.ok(), "Result constructed from OK status without value");
  }

  /// True iff a value is present.
  bool ok() const { return status_.ok(); }

  /// The status (OK when a value is present).
  const Status& status() const { return status_; }

  /// The contained value; must only be called when ok().
  const T& value() const& {
    LDP_CHECK_MSG(ok(), status_.ToString().c_str());
    return *value_;
  }
  T& value() & {
    LDP_CHECK_MSG(ok(), status_.ToString().c_str());
    return *value_;
  }
  T&& value() && {
    LDP_CHECK_MSG(ok(), status_.ToString().c_str());
    return std::move(*value_);
  }

  /// Returns the value, or `fallback` when this holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace ldp

/// Evaluates a Result expression; on error, propagates the Status, otherwise
/// assigns the value into `lhs` (which must already be declared).
#define LDP_ASSIGN_OR_RETURN(lhs, expr)                 \
  do {                                                  \
    auto _ldp_result = (expr);                          \
    if (!_ldp_result.ok()) return _ldp_result.status(); \
    lhs = std::move(_ldp_result).value();               \
  } while (0)

#endif  // LDP_UTIL_RESULT_H_
