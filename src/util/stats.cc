#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace ldp {

void RunningStats::Add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::PopulationVariance() const {
  if (count_ < 1) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double RunningStats::SampleVariance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::StdDev() const { return std::sqrt(SampleVariance()); }

double RunningStats::StdError() const {
  if (count_ == 0) return 0.0;
  return StdDev() / std::sqrt(static_cast<double>(count_));
}

double MeanOf(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double MeanSquaredError(const std::vector<double>& a,
                        const std::vector<double>& b) {
  LDP_CHECK(a.size() == b.size());
  if (a.empty()) return 0.0;
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return sum / static_cast<double>(a.size());
}

double MeanAbsoluteError(const std::vector<double>& a,
                         const std::vector<double>& b) {
  LDP_CHECK(a.size() == b.size());
  if (a.empty()) return 0.0;
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) sum += std::fabs(a[i] - b[i]);
  return sum / static_cast<double>(a.size());
}

double MaxAbsoluteError(const std::vector<double>& a,
                        const std::vector<double>& b) {
  LDP_CHECK(a.size() == b.size());
  double worst = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::fabs(a[i] - b[i]));
  }
  return worst;
}

}  // namespace ldp
