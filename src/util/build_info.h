// Build provenance embedded in every binary: git revision, compiler,
// flags, build type. The five CLI tools print it under --version and the
// bench harnesses stamp it into their BENCH_*.json artifacts, so every
// point on the perf trajectory is attributable to an exact build.
//
// The values arrive as compile definitions on build_info.cc (CMake runs
// `git rev-parse` at configure time); building outside git, or outside
// CMake, degrades gracefully to "unknown" rather than failing.

#ifndef LDP_UTIL_BUILD_INFO_H_
#define LDP_UTIL_BUILD_INFO_H_

#include <string>

namespace ldp {

struct BuildInfo {
  const char* git_hash;    ///< Short revision, or "unknown".
  const char* compiler;    ///< e.g. "gcc 13.2.0" / "clang 18.1.3".
  const char* flags;       ///< CMAKE_CXX_FLAGS at configure time.
  const char* build_type;  ///< CMAKE_BUILD_TYPE, or "unknown".
};

const BuildInfo& GetBuildInfo();

/// One-line human form: `NAME version GIT (COMPILER, TYPE)`.
std::string BuildInfoVersionLine(const std::string& tool_name);

/// JSON object for stamping artifacts:
/// {"git_hash":"...","compiler":"...","flags":"...","build_type":"..."}
std::string BuildInfoJson();

}  // namespace ldp

#endif  // LDP_UTIL_BUILD_INFO_H_
