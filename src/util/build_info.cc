#include "util/build_info.h"

#ifndef LDP_GIT_HASH
#define LDP_GIT_HASH "unknown"
#endif
#ifndef LDP_BUILD_FLAGS
#define LDP_BUILD_FLAGS ""
#endif
#ifndef LDP_BUILD_TYPE
#define LDP_BUILD_TYPE "unknown"
#endif

#if defined(__clang__)
#define LDP_COMPILER "clang " __clang_version__
#elif defined(__GNUC__)
#define LDP_COMPILER "gcc " __VERSION__
#else
#define LDP_COMPILER "unknown"
#endif

namespace ldp {

namespace {

// Minimal JSON string escaping (quotes/backslashes/control bytes); the
// inputs are compiler- and CMake-produced text, not user data.
std::string Escape(const char* text) {
  std::string out;
  for (const char* p = text; *p != '\0'; ++p) {
    const char c = *p;
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

const BuildInfo& GetBuildInfo() {
  static const BuildInfo info = {LDP_GIT_HASH, LDP_COMPILER, LDP_BUILD_FLAGS,
                                 LDP_BUILD_TYPE};
  return info;
}

std::string BuildInfoVersionLine(const std::string& tool_name) {
  const BuildInfo& info = GetBuildInfo();
  return tool_name + " version " + info.git_hash + " (" + info.compiler +
         ", " + info.build_type + ")";
}

std::string BuildInfoJson() {
  const BuildInfo& info = GetBuildInfo();
  return std::string("{\"git_hash\":\"") + Escape(info.git_hash) +
         "\",\"compiler\":\"" + Escape(info.compiler) + "\",\"flags\":\"" +
         Escape(info.flags) + "\",\"build_type\":\"" +
         Escape(info.build_type) + "\"}";
}

}  // namespace ldp
