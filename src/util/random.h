// Deterministic random number generation.
//
// All randomness in the library flows through Rng so that every experiment,
// test and benchmark is exactly reproducible from a 64-bit seed. The core
// generator is xoshiro256++ (Blackman & Vigna), seeded via SplitMix64; the
// variate transforms (uniform, Bernoulli, Laplace, Gaussian, exponential,
// geometric) are implemented here rather than with <random> distributions so
// that streams are stable across standard-library implementations.

#ifndef LDP_UTIL_RANDOM_H_
#define LDP_UTIL_RANDOM_H_

#include <cstdint>
#include <limits>

#include "util/check.h"

namespace ldp {

/// A small, fast, deterministic pseudo-random generator (xoshiro256++).
///
/// Satisfies the C++ UniformRandomBitGenerator concept, so it can also be
/// plugged into <random> distributions when stream stability is not needed.
class Rng {
 public:
  using result_type = uint64_t;

  /// Constructs a generator from a 64-bit seed; equal seeds give equal streams.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<uint64_t>::max();
  }

  /// Next raw 64 random bits.
  uint64_t operator()() { return Next(); }

  /// Next raw 64 random bits.
  uint64_t Next();

  /// Forks an independent child generator; used to give each worker thread or
  /// simulated user its own stream while staying reproducible.
  Rng Fork();

  /// Uniform double in [0, 1) with 53 bits of precision.
  double Uniform01();

  /// Uniform double in [lo, hi). Requires lo < hi.
  double Uniform(double lo, double hi);

  /// Uniform integer in the inclusive range [lo, hi].
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform index in [0, n). Requires n > 0.
  uint64_t UniformIndex(uint64_t n);

  /// Bernoulli trial: true with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Standard normal variate (Marsaglia polar method).
  double Gaussian();

  /// Normal variate with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// Exponential variate with rate `lambda` (mean 1/lambda).
  double Exponential(double lambda);

  /// Laplace variate centred at 0 with scale b (variance 2 b^2).
  double Laplace(double scale);

  /// Geometric variate: number of failures before the first success for a
  /// trial with success probability p in (0, 1].
  uint64_t Geometric(double p);

 private:
  uint64_t state_[4];
  double spare_gaussian_ = 0.0;
  bool has_spare_gaussian_ = false;
};

}  // namespace ldp

#endif  // LDP_UTIL_RANDOM_H_
