#include "util/sampling.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "util/check.h"

namespace ldp {

std::vector<uint32_t> SampleWithoutReplacement(uint32_t n, uint32_t k,
                                               Rng* rng) {
  LDP_CHECK(k <= n);
  std::vector<uint32_t> out;
  out.reserve(k);
  std::unordered_set<uint32_t> chosen;
  chosen.reserve(k * 2);
  // Robert Floyd: for j = n-k .. n-1, pick t in [0, j]; insert t unless taken,
  // in which case insert j. Every k-subset is equally likely.
  for (uint32_t j = n - k; j < n; ++j) {
    const auto t = static_cast<uint32_t>(rng->UniformIndex(j + 1));
    if (chosen.insert(t).second) {
      out.push_back(t);
    } else {
      chosen.insert(j);
      out.push_back(j);
    }
  }
  return out;
}

AliasSampler::AliasSampler(const std::vector<double>& weights) {
  LDP_CHECK(!weights.empty());
  const size_t n = weights.size();
  double total = 0.0;
  for (double w : weights) {
    LDP_CHECK(std::isfinite(w) && w >= 0.0);
    total += w;
  }
  LDP_CHECK(total > 0.0);

  normalized_.resize(n);
  for (size_t i = 0; i < n; ++i) normalized_[i] = weights[i] / total;

  prob_.assign(n, 0.0);
  alias_.assign(n, 0);
  std::vector<double> scaled(n);
  for (size_t i = 0; i < n; ++i) scaled[i] = normalized_[i] * static_cast<double>(n);

  std::vector<uint32_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const uint32_t s = small.back();
    small.pop_back();
    const uint32_t l = large.back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  for (uint32_t i : large) prob_[i] = 1.0;
  for (uint32_t i : small) prob_[i] = 1.0;  // numerical leftovers
}

uint32_t AliasSampler::Sample(Rng* rng) const {
  const auto bucket = static_cast<uint32_t>(rng->UniformIndex(prob_.size()));
  return rng->Uniform01() < prob_[bucket] ? bucket : alias_[bucket];
}

double UniformFromTwoIntervals(double a1, double b1, double a2, double b2,
                               Rng* rng) {
  const double len1 = std::max(0.0, b1 - a1);
  const double len2 = std::max(0.0, b2 - a2);
  LDP_CHECK(len1 + len2 > 0.0);
  const double u = rng->Uniform01() * (len1 + len2);
  if (u < len1) return a1 + u;
  return a2 + (u - len1);
}

}  // namespace ldp
