#include "util/hmac.h"

#include <algorithm>
#include <cstring>

namespace ldp::util {

namespace {

constexpr size_t kBlockBytes = 64;

// FIPS 180-4 section 4.2.2: the first 32 bits of the fractional parts of
// the cube roots of the first 64 primes.
constexpr uint32_t kRoundConstants[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

inline uint32_t RotR(uint32_t x, unsigned n) {
  return (x >> n) | (x << (32 - n));
}

}  // namespace

void Sha256::Reset() {
  // First 32 bits of the fractional parts of the square roots of the first
  // eight primes (FIPS 180-4 section 5.3.3).
  state_[0] = 0x6a09e667;
  state_[1] = 0xbb67ae85;
  state_[2] = 0x3c6ef372;
  state_[3] = 0xa54ff53a;
  state_[4] = 0x510e527f;
  state_[5] = 0x9b05688c;
  state_[6] = 0x1f83d9ab;
  state_[7] = 0x5be0cd19;
  total_bytes_ = 0;
  buffered_ = 0;
}

void Sha256::Compress(const uint8_t block[64]) {
  uint32_t w[64];
  for (int t = 0; t < 16; ++t) {
    w[t] = (static_cast<uint32_t>(block[t * 4]) << 24) |
           (static_cast<uint32_t>(block[t * 4 + 1]) << 16) |
           (static_cast<uint32_t>(block[t * 4 + 2]) << 8) |
           static_cast<uint32_t>(block[t * 4 + 3]);
  }
  for (int t = 16; t < 64; ++t) {
    const uint32_t s0 =
        RotR(w[t - 15], 7) ^ RotR(w[t - 15], 18) ^ (w[t - 15] >> 3);
    const uint32_t s1 =
        RotR(w[t - 2], 17) ^ RotR(w[t - 2], 19) ^ (w[t - 2] >> 10);
    w[t] = w[t - 16] + s0 + w[t - 7] + s1;
  }
  uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3];
  uint32_t e = state_[4], f = state_[5], g = state_[6], h = state_[7];
  for (int t = 0; t < 64; ++t) {
    const uint32_t sigma1 = RotR(e, 6) ^ RotR(e, 11) ^ RotR(e, 25);
    const uint32_t ch = (e & f) ^ (~e & g);
    const uint32_t temp1 = h + sigma1 + ch + kRoundConstants[t] + w[t];
    const uint32_t sigma0 = RotR(a, 2) ^ RotR(a, 13) ^ RotR(a, 22);
    const uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
    const uint32_t temp2 = sigma0 + maj;
    h = g;
    g = f;
    f = e;
    e = d + temp1;
    d = c;
    c = b;
    b = a;
    a = temp1 + temp2;
  }
  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
  state_[5] += f;
  state_[6] += g;
  state_[7] += h;
}

void Sha256::Update(const void* data, size_t size) {
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  total_bytes_ += size;
  if (buffered_ > 0) {
    const size_t take = std::min(size, kBlockBytes - buffered_);
    std::memcpy(buffer_ + buffered_, bytes, take);
    buffered_ += take;
    bytes += take;
    size -= take;
    if (buffered_ < kBlockBytes) return;
    Compress(buffer_);
    buffered_ = 0;
  }
  while (size >= kBlockBytes) {
    Compress(bytes);
    bytes += kBlockBytes;
    size -= kBlockBytes;
  }
  if (size > 0) {
    std::memcpy(buffer_, bytes, size);
    buffered_ = size;
  }
}

void Sha256::Finish(uint8_t digest[kSha256DigestBytes]) {
  const uint64_t bit_length = total_bytes_ * 8;
  // Pad: 0x80, zeros to 56 mod 64, then the 64-bit big-endian bit length.
  uint8_t pad = 0x80;
  Update(&pad, 1);
  const uint8_t zero = 0;
  while (buffered_ != 56) Update(&zero, 1);
  uint8_t length_bytes[8];
  for (int i = 0; i < 8; ++i) {
    length_bytes[i] = static_cast<uint8_t>(bit_length >> (56 - 8 * i));
  }
  Update(length_bytes, 8);
  for (int i = 0; i < 8; ++i) {
    digest[i * 4] = static_cast<uint8_t>(state_[i] >> 24);
    digest[i * 4 + 1] = static_cast<uint8_t>(state_[i] >> 16);
    digest[i * 4 + 2] = static_cast<uint8_t>(state_[i] >> 8);
    digest[i * 4 + 3] = static_cast<uint8_t>(state_[i]);
  }
}

std::string Sha256Digest(const void* data, size_t size) {
  Sha256 hasher;
  hasher.Update(data, size);
  uint8_t digest[kSha256DigestBytes];
  hasher.Finish(digest);
  return std::string(reinterpret_cast<const char*>(digest),
                     kSha256DigestBytes);
}

std::string HmacSha256(const std::string& key, const std::string& message) {
  uint8_t key_block[kBlockBytes] = {0};
  if (key.size() > kBlockBytes) {
    const std::string hashed = Sha256Digest(key);
    std::memcpy(key_block, hashed.data(), hashed.size());
  } else {
    std::memcpy(key_block, key.data(), key.size());
  }
  uint8_t inner_pad[kBlockBytes];
  uint8_t outer_pad[kBlockBytes];
  for (size_t i = 0; i < kBlockBytes; ++i) {
    inner_pad[i] = key_block[i] ^ 0x36;
    outer_pad[i] = key_block[i] ^ 0x5c;
  }
  Sha256 inner;
  inner.Update(inner_pad, kBlockBytes);
  inner.Update(message.data(), message.size());
  uint8_t inner_digest[kSha256DigestBytes];
  inner.Finish(inner_digest);

  Sha256 outer;
  outer.Update(outer_pad, kBlockBytes);
  outer.Update(inner_digest, kSha256DigestBytes);
  uint8_t tag[kSha256DigestBytes];
  outer.Finish(tag);
  return std::string(reinterpret_cast<const char*>(tag), kSha256DigestBytes);
}

bool ConstantTimeEqual(const std::string& a, const std::string& b) {
  if (a.size() != b.size()) return false;
  unsigned char acc = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    acc = static_cast<unsigned char>(
        acc | (static_cast<unsigned char>(a[i]) ^
               static_cast<unsigned char>(b[i])));
  }
  return acc == 0;
}

}  // namespace ldp::util
