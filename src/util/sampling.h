// Sampling utilities built on Rng: subset sampling without replacement,
// O(1) categorical sampling (Walker alias method), and shuffling.

#ifndef LDP_UTIL_SAMPLING_H_
#define LDP_UTIL_SAMPLING_H_

#include <cstdint>
#include <vector>

#include "util/random.h"

namespace ldp {

/// Samples `k` distinct indices uniformly from {0, ..., n-1} using Robert
/// Floyd's algorithm (O(k) expected time, no O(n) scratch). The returned
/// order is not uniform over permutations; callers that need a uniformly
/// random *sequence* should shuffle the result.
std::vector<uint32_t> SampleWithoutReplacement(uint32_t n, uint32_t k, Rng* rng);

/// In-place Fisher-Yates shuffle.
template <typename T>
void Shuffle(std::vector<T>* items, Rng* rng) {
  for (size_t i = items->size(); i > 1; --i) {
    const size_t j = rng->UniformIndex(i);
    std::swap((*items)[i - 1], (*items)[j]);
  }
}

/// Samples indices from a fixed discrete distribution in O(1) per draw
/// (Walker/Vose alias method). Weights need not be normalised.
class AliasSampler {
 public:
  /// Builds the alias table; `weights` must be non-empty, finite, non-negative
  /// and have a positive sum.
  explicit AliasSampler(const std::vector<double>& weights);

  /// Draws one index with probability proportional to its weight.
  uint32_t Sample(Rng* rng) const;

  /// Number of categories.
  size_t size() const { return prob_.size(); }

  /// Normalised probability of category i (for inspection/testing).
  double Probability(uint32_t i) const { return normalized_[i]; }

 private:
  std::vector<double> prob_;       // acceptance probability per bucket
  std::vector<uint32_t> alias_;    // fallback category per bucket
  std::vector<double> normalized_; // normalised input weights
};

/// Draws a uniformly random point from the union of two disjoint intervals
/// [a1, b1] and [a2, b2] (either may be empty/degenerate). Used by mechanisms
/// whose output density is piecewise-uniform on a split support.
double UniformFromTwoIntervals(double a1, double b1, double a2, double b2,
                               Rng* rng);

}  // namespace ldp

#endif  // LDP_UTIL_SAMPLING_H_
