// A small fixed-size thread pool with a ParallelFor helper. Used by the
// simulation harnesses to perturb large user populations concurrently; each
// chunk receives its own forked Rng so results stay deterministic for a fixed
// seed and thread count.

#ifndef LDP_UTIL_THREADPOOL_H_
#define LDP_UTIL_THREADPOOL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace ldp {

/// Fixed-size worker pool executing submitted closures FIFO.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(unsigned num_threads);

  /// Drains outstanding work and joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();

  /// Number of worker threads.
  unsigned num_threads() const { return static_cast<unsigned>(workers_.size()); }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  uint64_t in_flight_ = 0;
  bool shutting_down_ = false;
};

/// Splits [0, n) into roughly equal chunks and runs
/// `body(chunk_index, begin, end)` across `pool`'s workers, blocking until all
/// chunks finish. With a null pool the body runs inline (single chunk).
void ParallelFor(ThreadPool* pool, uint64_t n,
                 const std::function<void(unsigned, uint64_t, uint64_t)>& body);

}  // namespace ldp

#endif  // LDP_UTIL_THREADPOOL_H_
