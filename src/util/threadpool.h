// A small fixed-size thread pool with a ParallelFor helper. Used by the
// simulation harnesses to perturb large user populations concurrently; each
// chunk receives its own forked Rng so results stay deterministic for a fixed
// seed and thread count.
//
// Besides the plain FIFO queue, the pool offers keyed *serial queues*
// (SubmitSerial / WaitSerial): tasks sharing a key run one at a time in
// submission order, while tasks under different keys run concurrently. This
// is the primitive behind concurrent intra-epoch shard ingestion — each open
// shard of an api::ServerSession is a serial queue keyed by its shard id, so
// per-shard byte order (and therefore the decoded stream) is preserved no
// matter how many workers the pool runs.

#ifndef LDP_UTIL_THREADPOOL_H_
#define LDP_UTIL_THREADPOOL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"

namespace ldp {

/// Fixed-size worker pool executing submitted closures FIFO.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(unsigned num_threads)
      : ThreadPool(num_threads, obs::PoolMetrics()) {}

  /// Instrumented pool: `metrics` (obs/metrics.h) tracks queue depth, task
  /// count, and task service time. Submitted closures are wrapped with the
  /// timing probe at submit time, so an un-instrumented pool pays nothing.
  ThreadPool(unsigned num_threads, const obs::PoolMetrics& metrics);

  /// Drains outstanding work and joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution.
  void Submit(std::function<void()> task);

  /// Enqueues a task on the serial queue `key`: tasks under one key execute
  /// one at a time in submission order (FIFO), tasks under different keys
  /// execute concurrently. A serial queue occupies at most one worker at a
  /// time, so long-running queues cannot starve each other as long as keys
  /// do not outnumber workers.
  void SubmitSerial(uint64_t key, std::function<void()> task);

  /// Blocks until every task submitted on serial queue `key` has finished.
  /// Returns immediately for keys that were never used. New SubmitSerial
  /// calls on `key` from other threads during the wait postpone the return.
  void WaitSerial(uint64_t key);

  /// Blocks until every submitted task has finished (serial queues
  /// included).
  void Wait();

  /// Number of worker threads.
  unsigned num_threads() const { return static_cast<unsigned>(workers_.size()); }

 private:
  /// Wraps `task` with the queue-depth decrement and service-time probe
  /// (identity when the pool is un-instrumented). Applied to user tasks
  /// only — serial-queue drainers are bookkeeping, not work.
  std::function<void()> Instrument(std::function<void()> task);

  /// Runs serial queue `key` until it is momentarily empty. Executes on a
  /// worker; at most one drainer per key is ever in flight.
  void DrainSerial(uint64_t key);

  void WorkerLoop();

  /// One keyed serial queue: its pending tasks, and whether a drainer task
  /// is currently claiming a worker for it.
  struct SerialQueue {
    std::queue<std::function<void()>> pending;
    bool running = false;
  };

  obs::PoolMetrics metrics_;
  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::unordered_map<uint64_t, SerialQueue> serial_;
  std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  std::condition_variable serial_done_;
  uint64_t in_flight_ = 0;
  bool shutting_down_ = false;
};

/// A half-open index range [begin, end).
struct IndexRange {
  uint64_t begin = 0;
  uint64_t end = 0;
};

/// Splits [0, n) into at most `max_chunks` contiguous, roughly equal,
/// non-empty ranges in ascending order. This is the canonical chunking used
/// by ParallelFor and by the stream sharding tools: producing shards with
/// SplitRange boundaries and reducing them in order reproduces a pooled
/// single-process run bit for bit.
std::vector<IndexRange> SplitRange(uint64_t n, uint64_t max_chunks);

/// The number of chunks ParallelFor will use for `n` items on `pool` (1 for
/// a null or single-threaded pool).
uint64_t ParallelForChunkCount(const ThreadPool* pool, uint64_t n);

/// Splits [0, n) into SplitRange(n, ParallelForChunkCount(...)) chunks and
/// runs `body(chunk_index, begin, end)` across `pool`'s workers, blocking
/// until all chunks finish. With a null pool the body runs inline (single
/// chunk). Chunk indices are dense: 0 .. ParallelForChunkCount(...)-1.
void ParallelFor(ThreadPool* pool, uint64_t n,
                 const std::function<void(unsigned, uint64_t, uint64_t)>& body);

}  // namespace ldp

#endif  // LDP_UTIL_THREADPOOL_H_
