// Lightweight invariant-checking macros (RocksDB/Arrow style).
//
// LDP_CHECK fires in all build types and is reserved for preconditions whose
// violation would make continuing meaningless (programmer error). Library code
// that can fail for data-dependent reasons returns ldp::Status instead.

#ifndef LDP_UTIL_CHECK_H_
#define LDP_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

#define LDP_CHECK(cond)                                                      \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "LDP_CHECK failed at %s:%d: %s\n", __FILE__,      \
                   __LINE__, #cond);                                         \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#define LDP_CHECK_MSG(cond, msg)                                             \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "LDP_CHECK failed at %s:%d: %s (%s)\n", __FILE__, \
                   __LINE__, #cond, msg);                                    \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#ifdef NDEBUG
#define LDP_DCHECK(cond) \
  do {                   \
  } while (0)
#else
#define LDP_DCHECK(cond) LDP_CHECK(cond)
#endif

#endif  // LDP_UTIL_CHECK_H_
