// Numeric helpers shared across the library: stable binomial coefficients,
// the paper's closed-form privacy-budget thresholds, and a bisection root
// finder used to cross-check those closed forms.

#ifndef LDP_UTIL_MATH_H_
#define LDP_UTIL_MATH_H_

#include <cstdint>
#include <functional>

namespace ldp {

/// log(n choose k) computed via lgamma; exact enough for n up to millions.
double LogBinomial(uint64_t n, uint64_t k);

/// (n choose k) as a long double; overflows to +inf for very large n — use
/// LogBinomial for ratios in that regime.
long double BinomialCoefficient(uint64_t n, uint64_t k);

/// The paper's ε* (Eq. 6): below this budget the Hybrid Mechanism degenerates
/// to Duchi et al.'s mechanism (α = 0). Closed form
/// ln((−5 + 2·∛(6353 − 405√241) + 2·∛(6353 + 405√241)) / 27) ≈ 0.610986.
double EpsilonStar();

/// The paper's ε# (Table I): the budget at which PM's and Duchi et al.'s
/// worst-case 1-D variances cross. Closed form
/// ln((7 + 4√7 + 2√(20 + 14√7)) / 9) ≈ 1.29.
double EpsilonSharp();

/// Logistic sigmoid 1/(1+e^{-x}) with guards against overflow.
double Sigmoid(double x);

/// Clamps x into [lo, hi].
double Clamp(double x, double lo, double hi);

/// Finds a root of `f` in [lo, hi] by bisection; requires f(lo) and f(hi) to
/// have opposite signs. `tol` bounds the width of the final bracket.
double Bisect(const std::function<double(double)>& f, double lo, double hi,
              double tol = 1e-12, int max_iter = 200);

}  // namespace ldp

#endif  // LDP_UTIL_MATH_H_
