#include "util/random.h"

#include <cmath>

namespace ldp {

namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// SplitMix64: used only to expand the user seed into the xoshiro state.
inline uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : state_) word = SplitMix64(&sm);
  // An all-zero state would be a fixed point; SplitMix64 cannot emit four
  // zeros from any seed, but keep the guard for safety.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

Rng Rng::Fork() { return Rng(Next()); }

double Rng::Uniform01() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  LDP_DCHECK(lo < hi);
  return lo + (hi - lo) * Uniform01();
}

uint64_t Rng::UniformIndex(uint64_t n) {
  LDP_DCHECK(n > 0);
  // Lemire's nearly-divisionless bounded sampling.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
  auto low = static_cast<uint64_t>(m);
  if (low < n) {
    const uint64_t threshold = -n % n;
    while (low < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  LDP_DCHECK(lo <= hi);
  const uint64_t span =
      static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  return lo + static_cast<int64_t>(UniformIndex(span));
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return Uniform01() < p;
}

double Rng::Gaussian() {
  if (has_spare_gaussian_) {
    has_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  double u, v, s;
  do {
    u = Uniform(-1.0, 1.0);
    v = Uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double scale = std::sqrt(-2.0 * std::log(s) / s);
  spare_gaussian_ = v * scale;
  has_spare_gaussian_ = true;
  return u * scale;
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

double Rng::Exponential(double lambda) {
  LDP_DCHECK(lambda > 0.0);
  // 1 - Uniform01() is in (0, 1], so the log argument is never zero.
  return -std::log(1.0 - Uniform01()) / lambda;
}

double Rng::Laplace(double scale) {
  LDP_DCHECK(scale > 0.0);
  const double u = Uniform01() - 0.5;
  const double sign = u < 0.0 ? -1.0 : 1.0;
  return -scale * sign * std::log(1.0 - 2.0 * std::fabs(u));
}

uint64_t Rng::Geometric(double p) {
  LDP_DCHECK(p > 0.0 && p <= 1.0);
  if (p >= 1.0) return 0;
  const double u = 1.0 - Uniform01();  // in (0, 1]
  const double failures = std::floor(std::log(u) / std::log1p(-p));
  // Clamp before converting: for tiny p the tail can exceed the uint64
  // range, and double->uint64 conversion of an out-of-range value is UB.
  constexpr double kMax = 9007199254740992.0;  // 2^53
  return failures < kMax ? static_cast<uint64_t>(failures)
                         : static_cast<uint64_t>(kMax);
}

}  // namespace ldp
