#include "util/threadpool.h"

#include <algorithm>

#include "util/check.h"

namespace ldp {

ThreadPool::ThreadPool(unsigned num_threads) {
  num_threads = std::max(1u, num_threads);
  workers_.reserve(num_threads);
  for (unsigned i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  task_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    LDP_CHECK_MSG(!shutting_down_, "Submit after shutdown");
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_available_.wait(lock,
                           [this] { return shutting_down_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // shutting down
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void ParallelFor(ThreadPool* pool, uint64_t n,
                 const std::function<void(unsigned, uint64_t, uint64_t)>& body) {
  if (n == 0) return;
  if (pool == nullptr || pool->num_threads() <= 1) {
    body(0, 0, n);
    return;
  }
  const uint64_t chunks = std::min<uint64_t>(pool->num_threads() * 4, n);
  const uint64_t chunk_size = (n + chunks - 1) / chunks;
  for (uint64_t c = 0, begin = 0; begin < n; ++c, begin += chunk_size) {
    const uint64_t end = std::min(n, begin + chunk_size);
    pool->Submit([c, begin, end, &body] {
      body(static_cast<unsigned>(c), begin, end);
    });
  }
  pool->Wait();
}

}  // namespace ldp
