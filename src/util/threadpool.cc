#include "util/threadpool.h"

#include <algorithm>

#include "util/check.h"

namespace ldp {

ThreadPool::ThreadPool(unsigned num_threads, const obs::PoolMetrics& metrics)
    : metrics_(metrics) {
  num_threads = std::max(1u, num_threads);
  workers_.reserve(num_threads);
  for (unsigned i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

std::function<void()> ThreadPool::Instrument(std::function<void()> task) {
  if (!metrics_.enabled()) return task;
  metrics_.tasks->Increment();
  if (metrics_.queue_depth != nullptr) metrics_.queue_depth->Add(1.0);
  return [this, task = std::move(task)] {
    if (metrics_.queue_depth != nullptr) metrics_.queue_depth->Add(-1.0);
    const uint64_t started_ns = obs::SteadyNowNs();
    task();
    if (metrics_.task_us != nullptr) {
      metrics_.task_us->Observe((obs::SteadyNowNs() - started_ns) / 1000);
    }
  };
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  task_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  task = Instrument(std::move(task));
  {
    std::unique_lock<std::mutex> lock(mutex_);
    LDP_CHECK_MSG(!shutting_down_, "Submit after shutdown");
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
}

void ThreadPool::SubmitSerial(uint64_t key, std::function<void()> task) {
  task = Instrument(std::move(task));
  bool spawn_drainer = false;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    LDP_CHECK_MSG(!shutting_down_, "SubmitSerial after shutdown");
    SerialQueue& queue = serial_[key];
    queue.pending.push(std::move(task));
    if (!queue.running) {
      queue.running = true;
      spawn_drainer = true;
      // The drainer is one ordinary pool task that works the key's queue
      // until empty; it counts toward in_flight_ for the whole time, so
      // Wait() covers serial work too. Enqueued in the SAME critical
      // section as the push: a concurrent Wait() must never observe the
      // serial task without its drainer in flight.
      tasks_.push([this, key] { DrainSerial(key); });
      ++in_flight_;
    }
  }
  if (spawn_drainer) task_available_.notify_one();
}

void ThreadPool::DrainSerial(uint64_t key) {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      const auto it = serial_.find(key);
      LDP_CHECK(it != serial_.end());
      if (it->second.pending.empty()) {
        // Erasing the drained entry keeps the map bounded by the number of
        // *active* keys (shard ids grow without bound across epochs).
        serial_.erase(it);
        serial_done_.notify_all();
        return;
      }
      task = std::move(it->second.pending.front());
      it->second.pending.pop();
    }
    task();
  }
}

void ThreadPool::WaitSerial(uint64_t key) {
  std::unique_lock<std::mutex> lock(mutex_);
  serial_done_.wait(lock,
                    [this, key] { return serial_.count(key) == 0; });
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_available_.wait(lock,
                           [this] { return shutting_down_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // shutting down
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

std::vector<IndexRange> SplitRange(uint64_t n, uint64_t max_chunks) {
  std::vector<IndexRange> ranges;
  if (n == 0) return ranges;
  const uint64_t chunks = std::max<uint64_t>(1, std::min(max_chunks, n));
  const uint64_t chunk_size = (n + chunks - 1) / chunks;
  ranges.reserve(chunks);
  for (uint64_t begin = 0; begin < n; begin += chunk_size) {
    ranges.push_back({begin, std::min(n, begin + chunk_size)});
  }
  return ranges;
}

uint64_t ParallelForChunkCount(const ThreadPool* pool, uint64_t n) {
  if (n == 0) return 0;
  if (pool == nullptr || pool->num_threads() <= 1) return 1;
  return SplitRange(n, pool->num_threads() * 4).size();
}

void ParallelFor(ThreadPool* pool, uint64_t n,
                 const std::function<void(unsigned, uint64_t, uint64_t)>& body) {
  if (n == 0) return;
  if (pool == nullptr || pool->num_threads() <= 1) {
    body(0, 0, n);
    return;
  }
  const std::vector<IndexRange> ranges = SplitRange(n, pool->num_threads() * 4);
  for (uint64_t c = 0; c < ranges.size(); ++c) {
    const IndexRange range = ranges[c];
    pool->Submit([c, range, &body] {
      body(static_cast<unsigned>(c), range.begin, range.end);
    });
  }
  pool->Wait();
}

}  // namespace ldp
