// A power-of-two byte ring buffer for staging partially received wire items.
//
// The streaming ingester (stream/shard_ingester.h) decodes complete frames
// directly from the caller's buffer; only the partial item straddling a Feed
// boundary is staged here. Consuming bytes advances the read head — nothing
// is ever memmoved, unlike std::string::erase(0, n) — so the staging cost is
// proportional to the bytes staged, not to the bytes retained. Reads that
// wrap the physical end of the buffer are assembled into a caller-owned
// scratch string (reused across calls, so steady-state reads allocate
// nothing); contiguous reads return a pointer straight into the buffer.
//
// Not thread-safe; one ring per stream, like the ingester that owns it.

#ifndef LDP_UTIL_RINGBUF_H_
#define LDP_UTIL_RINGBUF_H_

#include <cstddef>
#include <cstring>
#include <memory>
#include <string>

#include "util/check.h"

namespace ldp {

/// A growable byte FIFO with power-of-two capacity and O(1) consume.
class RingBuffer {
 public:
  RingBuffer() = default;

  /// Pre-sizes the buffer to the smallest power of two >= `min_capacity`.
  explicit RingBuffer(size_t min_capacity) { Grow(min_capacity); }

  /// Bytes currently stored.
  size_t size() const { return size_; }

  bool empty() const { return size_ == 0; }

  /// Current physical capacity (always zero or a power of two).
  size_t capacity() const { return capacity_; }

  /// Appends `size` bytes, growing (and linearising) the buffer if needed.
  void Append(const char* data, size_t size) {
    if (size == 0) return;
    if (size_ + size > capacity_) Grow(size_ + size);
    const size_t write = (head_ + size_) & mask_;
    const size_t first = capacity_ - write < size ? capacity_ - write : size;
    std::memcpy(data_.get() + write, data, first);
    std::memcpy(data_.get(), data + first, size - first);
    size_ += size;
  }

  /// Discards `count` bytes from the front (count <= size()). The read head
  /// advances modulo capacity; no bytes move.
  void Consume(size_t count) {
    LDP_DCHECK(count <= size_);
    head_ = (head_ + count) & mask_;
    size_ -= count;
  }

  /// Drops all stored bytes (capacity is retained).
  void Clear() {
    head_ = 0;
    size_ = 0;
  }

  /// Returns a pointer to the first `count` stored bytes (count <= size()).
  /// When they are physically contiguous the pointer aims straight into the
  /// ring; when the range wraps, the bytes are assembled into `scratch` and
  /// scratch->data() is returned. The pointer is invalidated by the next
  /// non-const call.
  const char* Contiguous(size_t count, std::string* scratch) const {
    LDP_DCHECK(count <= size_);
    if (count == 0) return data_.get();
    if (head_ + count <= capacity_) return data_.get() + head_;
    const size_t first = capacity_ - head_;
    scratch->clear();
    scratch->append(data_.get() + head_, first);
    scratch->append(data_.get(), count - first);
    return scratch->data();
  }

  /// The stored bytes as (at most) two contiguous spans, front first. The
  /// second span is non-empty only when the data wraps the physical end.
  struct Span {
    const char* data = nullptr;
    size_t size = 0;
  };
  Span FirstSpan() const {
    const size_t first = capacity_ - head_ < size_ ? capacity_ - head_ : size_;
    return {data_.get() + head_, first};
  }
  Span SecondSpan() const {
    const size_t first = capacity_ - head_ < size_ ? capacity_ - head_ : size_;
    return {data_.get(), size_ - first};
  }

 private:
  void Grow(size_t min_capacity) {
    size_t capacity = capacity_ == 0 ? 64 : capacity_;
    while (capacity < min_capacity) capacity *= 2;
    auto grown = std::make_unique<char[]>(capacity);
    if (size_ > 0) {
      const Span a = FirstSpan();
      const Span b = SecondSpan();
      std::memcpy(grown.get(), a.data, a.size);
      std::memcpy(grown.get() + a.size, b.data, b.size);
    }
    data_ = std::move(grown);
    capacity_ = capacity;
    mask_ = capacity - 1;
    head_ = 0;
  }

  std::unique_ptr<char[]> data_;
  size_t capacity_ = 0;
  size_t mask_ = 0;
  size_t head_ = 0;
  size_t size_ = 0;
};

}  // namespace ldp

#endif  // LDP_UTIL_RINGBUF_H_
