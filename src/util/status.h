// Status: value-semantic error signalling for fallible APIs (RocksDB idiom).
//
// Library code never throws. Operations that can fail for data-dependent
// reasons (parsing, validation, I/O) return Status, or Result<T> when they
// also produce a value.

#ifndef LDP_UTIL_STATUS_H_
#define LDP_UTIL_STATUS_H_

#include <string>
#include <utility>

namespace ldp {

/// Error category attached to a non-OK Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kIoError,
  kInternal,
  kDeadlineExceeded,
};

/// Human-readable name of a StatusCode ("InvalidArgument", ...).
const char* StatusCodeToString(StatusCode code);

/// A success-or-error value. Cheap to copy when OK (no allocation).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Named constructors, one per error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  /// True iff this status represents success.
  bool ok() const { return code_ == StatusCode::kOk; }

  /// The error category (kOk when ok()).
  StatusCode code() const { return code_; }

  /// The error message (empty when ok()).
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

}  // namespace ldp

/// Propagates a non-OK Status to the caller.
#define LDP_RETURN_IF_ERROR(expr)            \
  do {                                       \
    ::ldp::Status _ldp_status = (expr);      \
    if (!_ldp_status.ok()) return _ldp_status; \
  } while (0)

#endif  // LDP_UTIL_STATUS_H_
