#include "util/math.h"

#include <cmath>

#include "util/check.h"

namespace ldp {

double LogBinomial(uint64_t n, uint64_t k) {
  LDP_CHECK(k <= n);
  return std::lgamma(static_cast<double>(n) + 1.0) -
         std::lgamma(static_cast<double>(k) + 1.0) -
         std::lgamma(static_cast<double>(n - k) + 1.0);
}

long double BinomialCoefficient(uint64_t n, uint64_t k) {
  LDP_CHECK(k <= n);
  if (k > n - k) k = n - k;
  long double result = 1.0L;
  for (uint64_t i = 1; i <= k; ++i) {
    result *= static_cast<long double>(n - k + i);
    result /= static_cast<long double>(i);
  }
  return result;
}

double EpsilonStar() {
  const double s = std::sqrt(241.0);
  const double inner =
      (-5.0 + 2.0 * std::cbrt(6353.0 - 405.0 * s) +
       2.0 * std::cbrt(6353.0 + 405.0 * s)) /
      27.0;
  return std::log(inner);
}

double EpsilonSharp() {
  const double s7 = std::sqrt(7.0);
  const double inner =
      (7.0 + 4.0 * s7 + 2.0 * std::sqrt(20.0 + 14.0 * s7)) / 9.0;
  return std::log(inner);
}

double Sigmoid(double x) {
  if (x >= 0.0) {
    const double z = std::exp(-x);
    return 1.0 / (1.0 + z);
  }
  const double z = std::exp(x);
  return z / (1.0 + z);
}

double Clamp(double x, double lo, double hi) {
  LDP_DCHECK(lo <= hi);
  if (x < lo) return lo;
  if (x > hi) return hi;
  return x;
}

double Bisect(const std::function<double(double)>& f, double lo, double hi,
              double tol, int max_iter) {
  double flo = f(lo);
  double fhi = f(hi);
  LDP_CHECK_MSG(flo == 0.0 || fhi == 0.0 || (flo < 0.0) != (fhi < 0.0),
                "Bisect requires a sign change on [lo, hi]");
  if (flo == 0.0) return lo;
  if (fhi == 0.0) return hi;
  for (int i = 0; i < max_iter && (hi - lo) > tol; ++i) {
    const double mid = 0.5 * (lo + hi);
    const double fmid = f(mid);
    if (fmid == 0.0) return mid;
    if ((fmid < 0.0) == (flo < 0.0)) {
      lo = mid;
      flo = fmid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace ldp
