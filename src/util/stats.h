// Streaming statistics (Welford) and error metrics used throughout tests,
// benchmarks and the aggregation pipeline.

#ifndef LDP_UTIL_STATS_H_
#define LDP_UTIL_STATS_H_

#include <cstdint>
#include <limits>
#include <vector>

namespace ldp {

/// Numerically stable streaming mean/variance accumulator.
class RunningStats {
 public:
  /// Adds one observation.
  void Add(double x);

  /// Merges another accumulator into this one (parallel-friendly).
  void Merge(const RunningStats& other);

  /// Number of observations added.
  uint64_t count() const { return count_; }

  /// Sample mean (0 when empty).
  double Mean() const { return mean_; }

  /// Population variance (divides by n; 0 when n < 1).
  double PopulationVariance() const;

  /// Sample variance (divides by n-1; 0 when n < 2).
  double SampleVariance() const;

  /// Sample standard deviation.
  double StdDev() const;

  /// Standard error of the mean: stddev / sqrt(n).
  double StdError() const;

  /// Smallest observation (+inf when empty).
  double Min() const { return min_; }

  /// Largest observation (-inf when empty).
  double Max() const { return max_; }

 private:
  uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Arithmetic mean of a vector (0 for empty input).
double MeanOf(const std::vector<double>& xs);

/// Mean squared error between two equal-length vectors.
double MeanSquaredError(const std::vector<double>& a,
                        const std::vector<double>& b);

/// Mean absolute error between two equal-length vectors.
double MeanAbsoluteError(const std::vector<double>& a,
                         const std::vector<double>& b);

/// Largest absolute componentwise difference.
double MaxAbsoluteError(const std::vector<double>& a,
                        const std::vector<double>& b);

}  // namespace ldp

#endif  // LDP_UTIL_STATS_H_
