// Fig. 4: MSE of mean estimation (numeric attributes) and frequency
// estimation (categorical attributes) on the BR-like and MX-like census
// datasets, for ε ∈ {0.5, 1, 2, 4}. Panels (a)/(b) compare the numeric
// methods (the paper shows Staircase on BR and SCDF on MX); panels (c)/(d)
// compare per-attribute OUE against the proposed mixed collector.

#include <cstdio>

#include "bench_util.h"
#include "collection_bench.h"
#include "data/census.h"
#include "data/encode.h"

int main() {
  const ldp::bench::BenchConfig config = ldp::bench::ResolveConfig();
  ldp::bench::PrintHeader(
      "Fig. 4: mean/frequency estimation MSE on census data", config);
  const std::vector<double> epsilons = ldp::bench::PaperEpsilons();

  auto br = ldp::data::MakeBrazilCensus(config.users, 11);
  auto mx = ldp::data::MakeMexicoCensus(config.users, 12);
  if (!br.ok() || !mx.ok()) {
    std::fprintf(stderr, "census generation failed\n");
    return 1;
  }
  const ldp::data::Dataset br_norm = ldp::data::NormalizeNumeric(br.value());
  const ldp::data::Dataset mx_norm = ldp::data::NormalizeNumeric(mx.value());

  std::printf("--- (a) BR numeric ---\n");
  ldp::bench::PrintNumericComparison(br_norm, epsilons, config,
                                     /*include_staircase=*/true);
  std::printf("\n--- (b) MX numeric ---\n");
  ldp::bench::PrintNumericComparison(mx_norm, epsilons, config);
  std::printf("\n--- (c) BR categorical ---\n");
  ldp::bench::PrintCategoricalComparison(br_norm, epsilons, config);
  std::printf("\n--- (d) MX categorical ---\n");
  ldp::bench::PrintCategoricalComparison(mx_norm, epsilons, config);

  std::printf(
      "\nexpected shape: PM/HM < Duchi < Laplace/SCDF/Staircase on numeric; "
      "Proposed < OUE on categorical; all series fall as eps grows.\n");
  return 0;
}
