// Table I: the regime classification of worst-case noise variances of HM,
// PM and Duchi et al.'s solution, for d = 1 across the ε thresholds
// ε* ≈ 0.61 and ε# ≈ 1.29, and for d > 1 (where HM < PM < Duchi always).
// Prints the analytic worst-case variances, the regime the implementation
// reports, and a Monte-Carlo confirmation of each ordering.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/hybrid.h"
#include "core/mechanism.h"
#include "core/piecewise.h"
#include "core/sampled_numeric.h"
#include "core/variance.h"
#include "util/math.h"
#include "util/random.h"
#include "util/stats.h"

namespace {

using namespace ldp;  // NOLINT: experiment binary

// Empirical worst-case variance over a grid of inputs.
double EmpiricalWorstCase(const ScalarMechanism& mech, uint64_t samples,
                          Rng* rng) {
  double worst = 0.0;
  for (const double t : {0.0, 0.5, 1.0}) {
    RunningStats stats;
    for (uint64_t i = 0; i < samples; ++i) stats.Add(mech.Perturb(t, rng));
    worst = std::max(worst, stats.SampleVariance());
  }
  return worst;
}

}  // namespace

int main() {
  const ldp::bench::BenchConfig config = ldp::bench::ResolveConfig();
  ldp::bench::PrintHeader(
      "Table I: worst-case noise variance regimes (analytic + Monte Carlo)",
      config);

  std::printf("thresholds: eps* = %.6f, eps# = %.6f\n\n", EpsilonStar(),
              EpsilonSharp());

  std::printf("--- d = 1 ---\n");
  std::printf("%-8s %12s %12s %12s   %-18s %s\n", "eps", "MaxVarHM",
              "MaxVarPM", "MaxVarDuchi", "regime", "MC check");
  Rng rng(1);
  for (const double eps :
       {0.3, 0.5, EpsilonStar(), 0.8, 1.0, EpsilonSharp(), 1.5, 2.0, 4.0}) {
    const double hm = HybridWorstCaseVariance(eps);
    const double pm = PiecewiseWorstCaseVariance(eps);
    const double duchi = DuchiWorstCaseVariance(eps);
    const HybridMechanism hm_mech(eps);
    const PiecewiseMechanism pm_mech(eps);
    const DuchiOneDimMechanism duchi_mech(eps);
    const uint64_t samples = config.users / 4;
    const double hm_mc = EmpiricalWorstCase(hm_mech, samples, &rng);
    const double pm_mc = EmpiricalWorstCase(pm_mech, samples, &rng);
    const double duchi_mc = EmpiricalWorstCase(duchi_mech, samples, &rng);
    const bool mc_agrees =
        (hm <= pm * 1.05 || hm_mc <= pm_mc * 1.05) &&
        (hm <= duchi * 1.05 || hm_mc <= duchi_mc * 1.05);
    std::printf("%-8.4f %12.5f %12.5f %12.5f   %-18s %s\n", eps, hm, pm,
                duchi, TableOneRegime(eps, 1).c_str(),
                mc_agrees ? "ok" : "MISMATCH");
  }

  std::printf("\n--- d > 1 (Corollary 2: HM < PM < Duchi for all eps) ---\n");
  std::printf("%-6s %-8s %12s %12s %12s   %s\n", "d", "eps", "MaxVarHM",
              "MaxVarPM", "MaxVarDuchi", "regime");
  for (const uint32_t d : {5u, 10u, 20u, 40u}) {
    for (const double eps : {0.5, 1.0, 2.0, 4.0}) {
      std::printf("%-6u %-8.2f %12.4f %12.4f %12.4f   %s\n", d, eps,
                  SampledHybridWorstCaseVariance(eps, d),
                  SampledPiecewiseWorstCaseVariance(eps, d),
                  DuchiMultiWorstCaseVariance(eps, d),
                  TableOneRegime(eps, d).c_str());
    }
  }
  return 0;
}
