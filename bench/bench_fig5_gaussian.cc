// Fig. 5: numeric-attribute MSE on synthetic 16-dimensional datasets whose
// coordinates follow N(µ, (1/4)²) truncated to [-1, 1], for
// µ ∈ {0, 1/3, 2/3, 1} and ε ∈ {0.5, 1, 2, 4}. PM/HM should beat Duchi in
// every panel, with the gap growing slightly with ε.

#include <cstdio>

#include "bench_util.h"
#include "collection_bench.h"
#include "data/generators.h"

int main() {
  const ldp::bench::BenchConfig config = ldp::bench::ResolveConfig();
  ldp::bench::PrintHeader(
      "Fig. 5: MSE on 16-dim truncated Gaussian data (stddev 1/4)", config);
  const std::vector<double> epsilons = ldp::bench::PaperEpsilons();

  const double means[] = {0.0, 1.0 / 3.0, 2.0 / 3.0, 1.0};
  const char* labels[] = {"mu = 0", "mu = 1/3", "mu = 2/3", "mu = 1"};
  for (int panel = 0; panel < 4; ++panel) {
    ldp::Rng rng(200 + panel);
    auto dataset =
        ldp::data::MakeTruncatedGaussian(16, config.users, means[panel],
                                         0.25, &rng);
    if (!dataset.ok()) {
      std::fprintf(stderr, "generation failed\n");
      return 1;
    }
    std::printf("--- (%c) %s ---\n", 'a' + panel, labels[panel]);
    ldp::bench::PrintNumericComparison(dataset.value(), epsilons, config);
    std::printf("\n");
  }
  std::printf(
      "expected shape: PM and HM below Duchi in every panel; Laplace/SCDF "
      "worst at small eps.\n");
  return 0;
}
