// Fig. 3: the worst-case per-coordinate variance of Algorithm 4 with PM
// (resp. HM) as a fraction of Duchi et al.'s d-dimensional mechanism, for
// d ∈ {5, 10, 20, 40} over an ε grid. The paper reports HM at <= ~0.77 of
// Duchi everywhere and PM strictly below 1.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/variance.h"

int main() {
  const ldp::bench::BenchConfig config = ldp::bench::ResolveConfig();
  ldp::bench::PrintHeader(
      "Fig. 3: worst-case variance of PM/HM as a fraction of Duchi's",
      config);

  for (const uint32_t d : {5u, 10u, 20u, 40u}) {
    std::printf("--- d = %u ---\n", d);
    std::printf("%-8s %12s %12s\n", "eps", "PM/Duchi", "HM/Duchi");
    double worst_hm_ratio = 0.0;
    for (double eps = 0.25; eps <= 8.0001; eps += 0.25) {
      const double duchi = ldp::DuchiMultiWorstCaseVariance(eps, d);
      const double pm_ratio =
          ldp::SampledPiecewiseWorstCaseVariance(eps, d) / duchi;
      const double hm_ratio =
          ldp::SampledHybridWorstCaseVariance(eps, d) / duchi;
      worst_hm_ratio = std::max(worst_hm_ratio, hm_ratio);
      std::printf("%-8.2f %12.5f %12.5f\n", eps, pm_ratio, hm_ratio);
    }
    std::printf("max HM/Duchi over the grid: %.4f (paper: <= ~0.77)\n\n",
                worst_hm_ratio);
  }
  return 0;
}
