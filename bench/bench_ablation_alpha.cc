// Ablation A2 — the Hybrid Mechanism's mixing weight α (Lemma 3 sets
// α = 1 − e^{−ε/2} above ε* ≈ 0.61, else 0): sweeps α over [0, 1] at
// several budgets, printing the worst-case variance of the resulting
// mixture plus Monte-Carlo confirmation at t = 0 and |t| = 1. The closed-
// form α should sit at the sweep minimum.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/hybrid.h"
#include "util/math.h"
#include "util/random.h"
#include "util/stats.h"

int main() {
  const ldp::bench::BenchConfig config = ldp::bench::ResolveConfig();
  ldp::bench::PrintHeader(
      "Ablation: HM mixing weight alpha vs Lemma 3's optimum", config);

  ldp::Rng rng(1);
  for (const double eps : {0.4, 0.8, 1.5, 3.0, 6.0}) {
    const double optimal = ldp::HybridMechanism::OptimalAlpha(eps);
    std::printf("--- eps = %.1f (Lemma 3 optimum: alpha = %.4f) ---\n", eps,
                optimal);
    std::printf("%-8s %16s %16s\n", "alpha", "analytic worst",
                "empirical worst");
    double best_var = 1e300, best_alpha = 0.0;
    for (double alpha = 0.0; alpha <= 1.0001; alpha += 0.1) {
      const ldp::HybridMechanism mech(eps, alpha);
      const double analytic = mech.WorstCaseVariance();
      // Empirical worst over t in {0, 1}.
      double empirical = 0.0;
      for (const double t : {0.0, 1.0}) {
        ldp::RunningStats stats;
        for (uint64_t i = 0; i < config.users; ++i) {
          stats.Add(mech.Perturb(t, &rng));
        }
        empirical = std::max(empirical, stats.SampleVariance());
      }
      if (analytic < best_var) {
        best_var = analytic;
        best_alpha = alpha;
      }
      std::printf("%-8.2f %16.5f %16.5f\n", alpha, analytic, empirical);
    }
    const double chosen_var = ldp::HybridMechanism(eps).WorstCaseVariance();
    std::printf("sweep minimum at alpha = %.2f (%.5f); closed form gives "
                "%.4f (%.5f)\n\n",
                best_alpha, best_var, optimal, chosen_var);
  }
  std::printf("expected: the closed-form alpha matches the sweep minimum "
              "within grid resolution at every eps.\n");
  return 0;
}
