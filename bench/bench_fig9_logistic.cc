// Fig. 9: misclassification rate of logistic regression trained by LDP-SGD
// on the BR-like and MX-like census data ("total_income" binarised at its
// mean), for ε ∈ {0.5, 1, 2, 4}, against the non-private reference.

#include <cstdio>

#include "erm_bench.h"

int main() {
  const ldp::bench::BenchConfig config = ldp::bench::ResolveConfig();
  ldp::bench::PrintHeader("Fig. 9: logistic regression misclassification rate",
                          config);

  auto br = ldp::data::MakeBrazilCensus(config.users, 21);
  auto mx = ldp::data::MakeMexicoCensus(config.users, 22);
  if (!br.ok() || !mx.ok()) {
    std::fprintf(stderr, "census generation failed\n");
    return 1;
  }
  std::printf("--- (a) BR ---\n");
  ldp::bench::RunErmPanel(br.value(), ldp::ml::LossKind::kLogistic,
                          ldp::ml::EvalMetric::kMisclassification, config);
  std::printf("\n--- (b) MX ---\n");
  ldp::bench::RunErmPanel(mx.value(), ldp::ml::LossKind::kLogistic,
                          ldp::ml::EvalMetric::kMisclassification, config);
  std::printf(
      "\nexpected shape: Laplace worst; PM/HM below Duchi and approaching "
      "the non-private rate as eps grows.\n");
  return 0;
}
