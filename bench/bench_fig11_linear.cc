// Fig. 11: test MSE of linear regression trained by LDP-SGD on the BR-like
// and MX-like census data (normalised "total_income" as the target), for
// ε ∈ {0.5, 1, 2, 4}. The paper omits Laplace from this figure (its error
// is off the chart); it is printed here anyway for completeness.

#include <cstdio>

#include "erm_bench.h"

int main() {
  const ldp::bench::BenchConfig config = ldp::bench::ResolveConfig();
  ldp::bench::PrintHeader("Fig. 11: linear regression MSE", config);

  auto br = ldp::data::MakeBrazilCensus(config.users, 41);
  auto mx = ldp::data::MakeMexicoCensus(config.users, 42);
  if (!br.ok() || !mx.ok()) {
    std::fprintf(stderr, "census generation failed\n");
    return 1;
  }
  std::printf("--- (a) BR ---\n");
  ldp::bench::RunErmPanel(br.value(), ldp::ml::LossKind::kSquared,
                          ldp::ml::EvalMetric::kMse, config);
  std::printf("\n--- (b) MX ---\n");
  ldp::bench::RunErmPanel(mx.value(), ldp::ml::LossKind::kSquared,
                          ldp::ml::EvalMetric::kMse, config);
  std::printf(
      "\nexpected shape: PM/HM below Duchi at every eps, converging toward "
      "the non-private MSE; Laplace far above all.\n");
  return 0;
}
