// Streaming-ingestion throughput: how fast the server half decodes framed
// shard streams and folds reports into the aggregator. This is the paper's
// deployment story at scale — millions of users send one wire report each;
// the aggregator must keep up at line rate.
//
// Sweeps both stream kinds the server speaks: mixed streams across oracle
// kinds (GRR / SUE / OUE / OLH / HE — the payload encodings differ by
// orders of magnitude in bytes/report) and the Algorithm-4 numeric stream
// kind, × shard counts (1 shard = the single-core hot loop; more shards
// exercise the parallel ordered reduction). Measures the full server path
// (frame scan → zero-copy wire decode → validation → aggregator
// accumulation → ordered shard merge) over pre-encoded in-memory shards, so
// client-side perturbation cost is excluded.
//
//   LDP_BENCH_USERS   total reports across shards (default 1000000)
//   LDP_BENCH_FAST=1  shrink for smoke runs (100000)
//
// Emits one BENCH_stream_ingest.json next to the binary for trend tracking.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "api/pipeline.h"
#include "api/server_session.h"
#include "bench_util.h"
#include "core/sampled_numeric.h"
#include "obs/metrics.h"
#include "stream/aggregator_handle.h"
#include "stream/parallel_ingest.h"
#include "stream/report_stream.h"
#include "util/build_info.h"
#include "util/random.h"
#include "util/threadpool.h"

namespace {

using namespace ldp;  // NOLINT: benchmark binary

// A census-like 8-attribute mixed schema; `oracle` picks the categorical
// frequency oracle under sweep.
MixedTupleCollector MakeCollector(FrequencyOracleKind oracle) {
  auto collector = MixedTupleCollector::Create(
      {MixedAttribute::Numeric(), MixedAttribute::Categorical(8),
       MixedAttribute::Numeric(), MixedAttribute::Categorical(16),
       MixedAttribute::Numeric(), MixedAttribute::Categorical(4),
       MixedAttribute::Numeric(), MixedAttribute::Categorical(32)},
      4.0, MechanismKind::kHybrid, oracle);
  if (!collector.ok()) {
    std::fprintf(stderr, "%s\n", collector.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(collector).value();
}

std::vector<std::string> EncodeShards(const MixedTupleCollector& collector,
                                      uint64_t reports, size_t num_shards) {
  MixedTuple tuple(collector.dimension());
  for (uint32_t j = 0; j < collector.dimension(); ++j) {
    if (collector.schema()[j].type == AttributeType::kNumeric) {
      tuple[j] = AttributeValue::Numeric(0.25);
    } else {
      tuple[j] =
          AttributeValue::Categorical(j % collector.schema()[j].domain_size);
    }
  }
  std::vector<std::string> shards;
  const std::vector<IndexRange> ranges = SplitRange(reports, num_shards);
  for (size_t s = 0; s < ranges.size(); ++s) {
    std::ostringstream out;
    stream::ReportStreamWriter writer(
        &out, stream::MakeMixedStreamHeader(collector));
    Rng rng(1000 + s);
    for (uint64_t i = ranges[s].begin; i < ranges[s].end; ++i) {
      if (!writer.WriteMixedReport(collector.Perturb(tuple, &rng), collector)
               .ok()) {
        std::fprintf(stderr, "encode failed\n");
        std::exit(1);
      }
    }
    shards.push_back(out.str());
  }
  return shards;
}

// An 8-attribute all-numeric schema at the same ε, exercising the
// Algorithm-4 numeric stream kind end to end.
std::vector<std::string> EncodeNumericShards(
    const SampledNumericMechanism& mechanism, uint64_t reports,
    size_t num_shards) {
  std::vector<double> tuple(mechanism.dimension());
  for (uint32_t j = 0; j < mechanism.dimension(); ++j) {
    tuple[j] = (j % 2 == 0) ? 0.25 : -0.5;
  }
  std::vector<std::string> shards;
  const std::vector<IndexRange> ranges = SplitRange(reports, num_shards);
  for (size_t s = 0; s < ranges.size(); ++s) {
    std::ostringstream out;
    stream::ReportStreamWriter writer(
        &out,
        stream::MakeNumericStreamHeader(mechanism, MechanismKind::kHybrid));
    Rng rng(1000 + s);
    for (uint64_t i = ranges[s].begin; i < ranges[s].end; ++i) {
      if (!writer.WriteNumericReport(mechanism.Perturb(tuple, &rng)).ok()) {
        std::fprintf(stderr, "encode failed\n");
        std::exit(1);
      }
    }
    shards.push_back(out.str());
  }
  return shards;
}

struct SweepResult {
  const char* kind = "mixed";
  const char* oracle = "";
  size_t shards = 0;
  unsigned threads = 0;
  double bytes_per_report = 0.0;
  double seconds = 0.0;
  double reports_per_sec = 0.0;
  double mib_per_sec = 0.0;
  /// Telemetry sweep only: metrics-on slowdown vs the metrics-off row, in
  /// percent (0 everywhere else).
  double overhead_pct = 0.0;
};

}  // namespace

int main() {
  bench::BenchConfig config = bench::ResolveConfig();
  // This harness defaults to paper scale: 1M reports even without
  // LDP_BENCH_USERS (the figure harnesses default to 50k).
  uint64_t reports = 1000000;
  if (std::getenv("LDP_BENCH_USERS") != nullptr) reports = config.users;
  if (const char* fast = std::getenv("LDP_BENCH_FAST");
      fast != nullptr && std::string(fast) == "1" &&
      std::getenv("LDP_BENCH_USERS") == nullptr) {
    reports = 100000;
  }

  const unsigned hardware = std::thread::hardware_concurrency();
  std::vector<size_t> shard_counts = {1, 4};
  if (hardware > 4) shard_counts.push_back(hardware);

  const struct {
    FrequencyOracleKind kind;
    const char* name;
  } kOracles[] = {
      {FrequencyOracleKind::kOue, "OUE"}, {FrequencyOracleKind::kGrr, "GRR"},
      {FrequencyOracleKind::kSue, "SUE"}, {FrequencyOracleKind::kOlh, "OLH"},
      {FrequencyOracleKind::kHe, "HE"},
  };

  std::printf("=== Streaming shard ingestion: oracle x shard sweep ===\n");
  std::printf("(reports: %llu, schema: 8 attributes, eps = 4)\n\n",
              static_cast<unsigned long long>(reports));
  std::printf("%-8s %8s %8s %10s %10s %14s %10s\n", "oracle", "shards",
              "threads", "B/report", "seconds", "reports/s", "MiB/s");

  std::vector<SweepResult> results;
  for (const auto& oracle : kOracles) {
    const MixedTupleCollector collector = MakeCollector(oracle.kind);
    for (const size_t num_shards : shard_counts) {
      const std::vector<std::string> shards =
          EncodeShards(collector, reports, num_shards);
      uint64_t total_bytes = 0;
      for (const std::string& shard : shards) total_bytes += shard.size();

      const unsigned threads = std::min(static_cast<unsigned>(num_shards),
                                        std::max(hardware, 1u));
      std::unique_ptr<ThreadPool> pool;
      if (threads > 1) pool = std::make_unique<ThreadPool>(threads);

      const auto started = std::chrono::steady_clock::now();
      auto total = stream::IngestShardBuffers(collector, shards, pool.get());
      const double seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        started)
              .count();
      if (!total.ok()) {
        std::fprintf(stderr, "ingest failed: %s\n",
                     total.status().ToString().c_str());
        return 1;
      }
      if (total.value().num_reports() != reports) {
        std::fprintf(stderr,
                     "ingest dropped reports: expected %llu, got %llu\n",
                     static_cast<unsigned long long>(reports),
                     static_cast<unsigned long long>(
                         total.value().num_reports()));
        return 1;
      }

      SweepResult result;
      result.oracle = oracle.name;
      result.shards = num_shards;
      result.threads = threads;
      result.bytes_per_report =
          static_cast<double>(total_bytes) / static_cast<double>(reports);
      result.seconds = seconds;
      result.reports_per_sec = static_cast<double>(reports) / seconds;
      result.mib_per_sec =
          static_cast<double>(total_bytes) / seconds / (1024.0 * 1024.0);
      results.push_back(result);
      std::printf("%-8s %8zu %8u %10.1f %10.3f %14.0f %10.1f\n", result.oracle,
                  result.shards, result.threads, result.bytes_per_report,
                  result.seconds, result.reports_per_sec, result.mib_per_sec);
    }
  }

  // Algorithm-4 numeric stream kind over the same shard sweep.
  auto mechanism = SampledNumericMechanism::Create(MechanismKind::kHybrid,
                                                   4.0, 8);
  if (!mechanism.ok()) {
    std::fprintf(stderr, "%s\n", mechanism.status().ToString().c_str());
    return 1;
  }
  const stream::NumericAggregatorHandle prototype(&mechanism.value(),
                                                  MechanismKind::kHybrid);
  for (const size_t num_shards : shard_counts) {
    const std::vector<std::string> shards =
        EncodeNumericShards(mechanism.value(), reports, num_shards);
    uint64_t total_bytes = 0;
    for (const std::string& shard : shards) total_bytes += shard.size();

    const unsigned threads = std::min(static_cast<unsigned>(num_shards),
                                      std::max(hardware, 1u));
    std::unique_ptr<ThreadPool> pool;
    if (threads > 1) pool = std::make_unique<ThreadPool>(threads);
    std::vector<stream::HandleShardSource> sources;
    for (size_t s = 0; s < shards.size(); ++s) {
      sources.push_back(stream::HandleStreamBufferSource(
          prototype, "shard " + std::to_string(s), &shards[s],
          stream::ShardIngester::Options()));
    }

    const auto started = std::chrono::steady_clock::now();
    auto total = stream::IngestHandleSources(prototype, sources, pool.get());
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      started)
            .count();
    if (!total.ok()) {
      std::fprintf(stderr, "numeric ingest failed: %s\n",
                   total.status().ToString().c_str());
      return 1;
    }
    if (total.value()->num_reports() != reports) {
      std::fprintf(stderr, "numeric ingest dropped reports\n");
      return 1;
    }

    SweepResult result;
    result.kind = "numeric";
    result.oracle = "-";
    result.shards = num_shards;
    result.threads = threads;
    result.bytes_per_report =
        static_cast<double>(total_bytes) / static_cast<double>(reports);
    result.seconds = seconds;
    result.reports_per_sec = static_cast<double>(reports) / seconds;
    result.mib_per_sec =
        static_cast<double>(total_bytes) / seconds / (1024.0 * 1024.0);
    results.push_back(result);
    std::printf("%-8s %8zu %8u %10.1f %10.3f %14.0f %10.1f\n", "NUMERIC",
                result.shards, result.threads, result.bytes_per_report,
                result.seconds, result.reports_per_sec, result.mib_per_sec);
  }

  // Concurrent ServerSession sweep: the same mixed shards pushed through
  // api::ServerSession::Feed with a session-owned ingest pool, chunked and
  // interleaved across shards the way a network frontend would deliver
  // them. Tracks reports/sec of the full session path (enqueue -> strand
  // decode -> drain -> ordered merge) as session_threads grows.
  {
    const MixedTupleCollector collector =
        MakeCollector(FrequencyOracleKind::kOue);
    auto config = api::PipelineConfig{};
    config.attributes = collector.schema();
    config.epsilon = 4.0;
    auto pipeline = api::Pipeline::Create(std::move(config));
    if (!pipeline.ok()) {
      std::fprintf(stderr, "%s\n", pipeline.status().ToString().c_str());
      return 1;
    }
    constexpr size_t kSessionShards = 8;
    constexpr size_t kChunkBytes = 256 * 1024;
    const std::vector<std::string> shards =
        EncodeShards(collector, reports, kSessionShards);
    uint64_t total_bytes = 0;
    for (const std::string& shard : shards) total_bytes += shard.size();

    std::vector<unsigned> thread_sweep = {1, 2, 4};
    if (hardware >= 8) thread_sweep.push_back(8);
    for (const unsigned session_threads : thread_sweep) {
      api::ServerSessionOptions options;
      options.ingest_threads = session_threads;
      auto server = pipeline.value().NewServer(options);
      if (!server.ok()) {
        std::fprintf(stderr, "%s\n", server.status().ToString().c_str());
        return 1;
      }
      api::ServerSession& session = server.value();

      const auto started = std::chrono::steady_clock::now();
      std::vector<size_t> ids;
      std::vector<size_t> offsets(shards.size(), 0);
      ids.reserve(shards.size());
      for (size_t s = 0; s < shards.size(); ++s) {
        ids.push_back(session.OpenShard());
      }
      for (bool fed = true; fed;) {
        fed = false;
        for (size_t s = 0; s < shards.size(); ++s) {
          const size_t left = shards[s].size() - offsets[s];
          if (left == 0) continue;
          const size_t take = std::min(kChunkBytes, left);
          if (!session.Feed(ids[s], shards[s].data() + offsets[s], take)
                   .ok()) {
            std::fprintf(stderr, "session feed failed\n");
            return 1;
          }
          offsets[s] += take;
          fed = true;
        }
      }
      for (const size_t id : ids) {
        if (!session.CloseShard(id).ok()) {
          std::fprintf(stderr, "session close failed\n");
          return 1;
        }
      }
      const double seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        started)
              .count();
      auto ingested = session.num_reports(0);
      if (!ingested.ok() || ingested.value() != reports) {
        std::fprintf(stderr, "session ingest dropped reports\n");
        return 1;
      }

      SweepResult result;
      result.kind = "session";
      result.oracle = "OUE";
      result.shards = kSessionShards;
      result.threads = session_threads;
      result.bytes_per_report =
          static_cast<double>(total_bytes) / static_cast<double>(reports);
      result.seconds = seconds;
      result.reports_per_sec = static_cast<double>(reports) / seconds;
      result.mib_per_sec =
          static_cast<double>(total_bytes) / seconds / (1024.0 * 1024.0);
      results.push_back(result);
      std::printf("%-8s %8zu %8u %10.1f %10.3f %14.0f %10.1f\n", "SESSION",
                  result.shards, result.threads, result.bytes_per_report,
                  result.seconds, result.reports_per_sec, result.mib_per_sec);
    }
  }

  // Telemetry overhead: the single-shard OUE hot loop with IngestMetrics
  // off vs on over the same pre-encoded buffer, min of repeats. The
  // per-thread-sharded counters are flushed as deltas once per Feed chunk,
  // so the on-row should sit within the ISSUE's <2% budget of the off-row.
  {
    const MixedTupleCollector collector =
        MakeCollector(FrequencyOracleKind::kOue);
    const std::vector<std::string> shards = EncodeShards(collector, reports, 1);
    uint64_t total_bytes = 0;
    for (const std::string& shard : shards) total_bytes += shard.size();

    constexpr int kRepeats = 3;
    auto best_of = [&](const stream::ShardIngester::Options& options,
                       double* out_seconds) -> bool {
      double best = 0.0;
      for (int r = 0; r < kRepeats; ++r) {
        const auto started = std::chrono::steady_clock::now();
        auto total = stream::IngestShardBuffers(collector, shards,
                                                /*pool=*/nullptr, options);
        const double seconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          started)
                .count();
        if (!total.ok() || total.value().num_reports() != reports) {
          std::fprintf(stderr, "overhead sweep ingest failed\n");
          return false;
        }
        if (r == 0 || seconds < best) best = seconds;
      }
      *out_seconds = best;
      return true;
    };

    double off_seconds = 0.0, on_seconds = 0.0;
    if (!best_of(stream::ShardIngester::Options(), &off_seconds)) return 1;
    obs::MetricsRegistry registry;
    stream::ShardIngester::Options on_options;
    on_options.metrics = obs::IngestMetrics::ForRegistry(&registry);
    if (!best_of(on_options, &on_seconds)) return 1;
    if (on_options.metrics.accepted->Value() !=
        reports * static_cast<uint64_t>(kRepeats)) {
      std::fprintf(stderr, "metrics lost reports: counter %llu\n",
                   static_cast<unsigned long long>(
                       on_options.metrics.accepted->Value()));
      return 1;
    }
    const double overhead_pct =
        off_seconds > 0.0 ? (on_seconds - off_seconds) / off_seconds * 100.0
                          : 0.0;

    for (const bool metrics_on : {false, true}) {
      SweepResult result;
      result.kind = metrics_on ? "metrics_on" : "metrics_off";
      result.oracle = "OUE";
      result.shards = 1;
      result.threads = 1;
      result.bytes_per_report =
          static_cast<double>(total_bytes) / static_cast<double>(reports);
      result.seconds = metrics_on ? on_seconds : off_seconds;
      result.reports_per_sec = static_cast<double>(reports) / result.seconds;
      result.mib_per_sec = static_cast<double>(total_bytes) / result.seconds /
                           (1024.0 * 1024.0);
      if (metrics_on) result.overhead_pct = overhead_pct;
      results.push_back(result);
      std::printf("%-8s %8zu %8u %10.1f %10.3f %14.0f %10.1f\n",
                  metrics_on ? "OBS-ON" : "OBS-OFF", result.shards,
                  result.threads, result.bytes_per_report, result.seconds,
                  result.reports_per_sec, result.mib_per_sec);
    }
    std::printf("telemetry overhead: %+.2f%% (min of %d runs)\n",
                overhead_pct, kRepeats);
  }

  // Machine-readable trend line.
  FILE* json = std::fopen("BENCH_stream_ingest.json", "w");
  if (json != nullptr) {
    std::fprintf(json,
                 "{\n  \"benchmark\": \"stream_ingest\",\n"
                 "  \"build\": %s,\n"
                 "  \"reports\": %llu,\n  \"runs\": [\n",
                 BuildInfoJson().c_str(),
                 static_cast<unsigned long long>(reports));
    for (size_t i = 0; i < results.size(); ++i) {
      std::fprintf(
          json,
          "    {\"kind\": \"%s\", \"oracle\": \"%s\", \"shards\": %zu, "
          "\"threads\": %u, \"bytes_per_report\": %.1f, \"seconds\": %.6f, "
          "\"reports_per_sec\": %.0f, \"mib_per_sec\": %.1f, "
          "\"overhead_pct\": %.2f}%s\n",
          results[i].kind, results[i].oracle, results[i].shards,
          results[i].threads, results[i].bytes_per_report, results[i].seconds,
          results[i].reports_per_sec, results[i].mib_per_sec,
          results[i].overhead_pct, i + 1 < results.size() ? "," : "");
    }
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);
    std::printf("\nwrote BENCH_stream_ingest.json\n");
  }
  return 0;
}
