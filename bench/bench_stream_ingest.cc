// Streaming-ingestion throughput: how fast the server half decodes framed
// shard streams and folds reports into the aggregator, across worker counts.
// This is the paper's deployment story at scale — millions of users send one
// wire report each; the aggregator must keep up at line rate.
//
// Measures the full server path (frame scan → wire decode → validation →
// MixedAggregator::Add → ordered shard merge) over pre-encoded in-memory
// shards, so client-side perturbation cost is excluded.
//
//   LDP_BENCH_USERS   total reports across shards (default 1000000)
//   LDP_BENCH_FAST=1  shrink for smoke runs (100000)
//
// Emits BENCH_stream_ingest.json next to the binary for trend tracking.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "stream/parallel_ingest.h"
#include "stream/report_stream.h"
#include "util/random.h"
#include "util/threadpool.h"

namespace {

using namespace ldp;  // NOLINT: benchmark binary

// A census-like 8-attribute mixed schema.
MixedTupleCollector MakeCollector() {
  auto collector = MixedTupleCollector::Create(
      {MixedAttribute::Numeric(), MixedAttribute::Categorical(8),
       MixedAttribute::Numeric(), MixedAttribute::Categorical(16),
       MixedAttribute::Numeric(), MixedAttribute::Categorical(4),
       MixedAttribute::Numeric(), MixedAttribute::Categorical(32)},
      4.0);
  if (!collector.ok()) {
    std::fprintf(stderr, "%s\n", collector.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(collector).value();
}

std::vector<std::string> EncodeShards(const MixedTupleCollector& collector,
                                      uint64_t reports, size_t num_shards) {
  MixedTuple tuple(collector.dimension());
  for (uint32_t j = 0; j < collector.dimension(); ++j) {
    if (collector.schema()[j].type == AttributeType::kNumeric) {
      tuple[j] = AttributeValue::Numeric(0.25);
    } else {
      tuple[j] =
          AttributeValue::Categorical(j % collector.schema()[j].domain_size);
    }
  }
  std::vector<std::string> shards;
  const std::vector<IndexRange> ranges = SplitRange(reports, num_shards);
  for (size_t s = 0; s < ranges.size(); ++s) {
    std::ostringstream out;
    stream::ReportStreamWriter writer(
        &out, stream::MakeMixedStreamHeader(collector));
    Rng rng(1000 + s);
    for (uint64_t i = ranges[s].begin; i < ranges[s].end; ++i) {
      if (!writer.WriteMixedReport(collector.Perturb(tuple, &rng), collector)
               .ok()) {
        std::fprintf(stderr, "encode failed\n");
        std::exit(1);
      }
    }
    shards.push_back(out.str());
  }
  return shards;
}

struct IngestResult {
  unsigned threads = 0;
  double seconds = 0.0;
  double reports_per_sec = 0.0;
  double mib_per_sec = 0.0;
};

}  // namespace

int main() {
  bench::BenchConfig config = bench::ResolveConfig();
  // This harness defaults to paper scale: 1M reports even without
  // LDP_BENCH_USERS (the figure harnesses default to 50k).
  uint64_t reports = 1000000;
  if (std::getenv("LDP_BENCH_USERS") != nullptr) reports = config.users;
  if (const char* fast = std::getenv("LDP_BENCH_FAST");
      fast != nullptr && std::string(fast) == "1" &&
      std::getenv("LDP_BENCH_USERS") == nullptr) {
    reports = 100000;
  }

  const unsigned hardware = std::thread::hardware_concurrency();
  // Always at least 4 shards so the multi-shard reduce path is exercised
  // even on single-core runners.
  const size_t num_shards = hardware > 4 ? hardware : 4;
  const MixedTupleCollector collector = MakeCollector();

  std::printf("=== Streaming shard ingestion ===\n");
  std::printf("(reports: %llu, shards: %zu, schema: %u attributes, k = %u)\n",
              static_cast<unsigned long long>(reports), num_shards,
              collector.dimension(), collector.k());
  std::printf("encoding shards...\n");
  const std::vector<std::string> shards =
      EncodeShards(collector, reports, num_shards);
  uint64_t total_bytes = 0;
  for (const std::string& shard : shards) total_bytes += shard.size();
  std::printf("encoded %llu bytes (%.1f bytes/report)\n\n",
              static_cast<unsigned long long>(total_bytes),
              static_cast<double>(total_bytes) /
                  static_cast<double>(reports));

  std::vector<IngestResult> results;
  std::printf("%-10s %12s %16s %12s\n", "threads", "seconds", "reports/s",
              "MiB/s");
  std::vector<unsigned> thread_counts = {1, 2, 4};
  if (hardware > 4) thread_counts.push_back(hardware);
  for (const unsigned threads : thread_counts) {
    std::unique_ptr<ThreadPool> pool;
    if (threads > 1) pool = std::make_unique<ThreadPool>(threads);
    const auto started = std::chrono::steady_clock::now();
    auto total = stream::IngestShardBuffers(collector, shards, pool.get());
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      started)
            .count();
    if (!total.ok()) {
      std::fprintf(stderr, "ingest failed: %s\n",
                   total.status().ToString().c_str());
      return 1;
    }
    if (total.value().num_reports() != reports) {
      std::fprintf(stderr,
                   "ingest dropped reports: expected %llu, got %llu\n",
                   static_cast<unsigned long long>(reports),
                   static_cast<unsigned long long>(
                       total.value().num_reports()));
      return 1;
    }
    IngestResult result;
    result.threads = threads;
    result.seconds = seconds;
    result.reports_per_sec = static_cast<double>(reports) / seconds;
    result.mib_per_sec =
        static_cast<double>(total_bytes) / seconds / (1024.0 * 1024.0);
    results.push_back(result);
    std::printf("%-10u %12.3f %16.0f %12.1f\n", threads, seconds,
                result.reports_per_sec, result.mib_per_sec);
  }

  // Machine-readable trend line.
  FILE* json = std::fopen("BENCH_stream_ingest.json", "w");
  if (json != nullptr) {
    std::fprintf(json,
                 "{\n  \"benchmark\": \"stream_ingest\",\n"
                 "  \"reports\": %llu,\n  \"shards\": %zu,\n"
                 "  \"bytes\": %llu,\n  \"runs\": [\n",
                 static_cast<unsigned long long>(reports), num_shards,
                 static_cast<unsigned long long>(total_bytes));
    for (size_t i = 0; i < results.size(); ++i) {
      std::fprintf(json,
                   "    {\"threads\": %u, \"seconds\": %.6f, "
                   "\"reports_per_sec\": %.0f, \"mib_per_sec\": %.1f}%s\n",
                   results[i].threads, results[i].seconds,
                   results[i].reports_per_sec, results[i].mib_per_sec,
                   i + 1 < results.size() ? "," : "");
    }
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);
    std::printf("\nwrote BENCH_stream_ingest.json\n");
  }
  return 0;
}
