// Shared driver for the empirical-risk-minimisation experiments
// (Figs. 9–11): builds the design matrix from a census dataset (one-hot
// categorical expansion, income as the dependent variable), then for each
// privacy budget trains LDP-SGD with every gradient perturber and reports
// the cross-validated test metric.

#ifndef LDP_BENCH_ERM_BENCH_H_
#define LDP_BENCH_ERM_BENCH_H_

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "data/census.h"
#include "data/encode.h"
#include "ml/evaluate.h"
#include "ml/ldp_sgd.h"
#include "util/check.h"

namespace ldp::bench {

/// CV shape: the paper uses 10-fold CV repeated 5 times; the bench default
/// is 5-fold once, scaled by LDP_BENCH_REPS (reps >= 5 switches to the
/// paper's shape).
struct CvShape {
  uint32_t folds = 5;
  uint32_t repeats = 1;
};

inline CvShape ResolveCvShape(const BenchConfig& config) {
  CvShape shape;
  if (config.reps >= 5) {
    shape.folds = 10;
    shape.repeats = 5;
  }
  return shape;
}

/// Runs the full Fig. 9/10/11 panel for one dataset: rows are gradient
/// perturbers (Laplace, Duchi, PM, HM, non-private), columns the ε grid.
inline void RunErmPanel(const data::Dataset& census, ml::LossKind loss,
                        ml::EvalMetric metric, const BenchConfig& config) {
  const uint32_t label_col =
      census.schema().FindColumn(data::kIncomeColumn).value();
  auto features = data::EncodeFeatures(census, label_col);
  LDP_CHECK(features.ok());
  auto labels = metric == ml::EvalMetric::kMisclassification
                    ? data::EncodeBinaryLabel(census, label_col)
                    : data::EncodeNumericLabel(census, label_col);
  LDP_CHECK(labels.ok());
  std::printf("(encoded feature dimensionality: %u)\n",
              features.value().num_cols());

  const std::vector<double> epsilons = PaperEpsilons();
  const CvShape shape = ResolveCvShape(config);
  PrintColumns("method \\ eps", epsilons);

  const std::vector<std::pair<const char*, ml::GradientPerturber>> methods = {
      {"Laplace", ml::GradientPerturber::kLaplaceSplit},
      {"Duchi", ml::GradientPerturber::kDuchiMulti},
      {"PM", ml::GradientPerturber::kPiecewiseSampled},
      {"HM", ml::GradientPerturber::kHybridSampled},
      {"Non-private", ml::GradientPerturber::kNonPrivate}};
  uint64_t seed = 1;
  for (const auto& [name, perturber] : methods) {
    std::vector<double> row;
    for (const double eps : epsilons) {
      Rng cv_rng(seed);
      auto trainer = [&, perturber_copy = perturber](
                         const data::DesignMatrix& x,
                         const std::vector<double>& y)
          -> Result<std::vector<double>> {
        ml::LdpSgdOptions options;
        options.perturber = perturber_copy;
        options.epsilon = eps;
        options.lambda = 1e-4;
        options.seed = seed * 7919;
        return ml::TrainLdpSgd(x, y, loss, options);
      };
      auto result =
          ml::CrossValidate(features.value(), labels.value(), shape.folds,
                            shape.repeats, metric, trainer, &cv_rng);
      LDP_CHECK_MSG(result.ok(), result.status().message().c_str());
      row.push_back(result.value().mean);
      ++seed;
      // The non-private row is ε-independent; reuse the first cell.
      if (perturber == ml::GradientPerturber::kNonPrivate &&
          row.size() == 1) {
        while (row.size() < epsilons.size()) row.push_back(row[0]);
        break;
      }
    }
    PrintRow(name, row);
  }
}

}  // namespace ldp::bench

#endif  // LDP_BENCH_ERM_BENCH_H_
