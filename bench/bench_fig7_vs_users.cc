// Fig. 7: estimation MSE on the MX-like dataset as the number of users
// grows (ε = 1). Panel (a) sweeps the numeric methods over n ∈
// {0.25, 0.5, 1, 2, 4}·base; panel (b) sweeps OUE vs the proposed collector
// over n ∈ {1/16, 1/8, 1/4, 1/2, 1}·base. MSE should decay like 1/n for
// every method, preserving the method ordering.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "collection_bench.h"
#include "data/census.h"
#include "data/encode.h"

int main() {
  const ldp::bench::BenchConfig config = ldp::bench::ResolveConfig();
  ldp::bench::PrintHeader("Fig. 7: MSE vs number of users (MX, eps = 1)",
                          config);
  const double eps = 1.0;

  // Generate once at the largest size; subsets reuse the prefix.
  const uint64_t base = config.users;
  auto mx = ldp::data::MakeMexicoCensus(4 * base, 13);
  if (!mx.ok()) {
    std::fprintf(stderr, "census generation failed\n");
    return 1;
  }
  const ldp::data::Dataset normalized =
      ldp::data::NormalizeNumeric(mx.value());

  auto prefix = [&](uint64_t n) {
    std::vector<uint64_t> rows(n);
    for (uint64_t i = 0; i < n; ++i) rows[i] = i;
    return normalized.Take(rows);
  };

  std::printf("--- (a) numeric, n in {0.25, 0.5, 1, 2, 4} x %llu ---\n",
              static_cast<unsigned long long>(base));
  const std::vector<double> numeric_scales = {0.25, 0.5, 1.0, 2.0, 4.0};
  ldp::bench::PrintColumns("method \\ n/base", numeric_scales);
  std::vector<std::pair<const char*, ldp::api::NumericStrategy>>
      baselines = {{"Laplace", ldp::api::NumericStrategy::kLaplaceSplit},
                   {"SCDF", ldp::api::NumericStrategy::kScdfSplit},
                   {"Duchi", ldp::api::NumericStrategy::kDuchiMulti}};
  uint64_t seed = 100;
  for (const auto& [name, strategy] : baselines) {
    std::vector<double> row;
    for (const double scale : numeric_scales) {
      const ldp::data::Dataset subset =
          prefix(static_cast<uint64_t>(scale * base));
      row.push_back(ldp::bench::AverageBaseline(subset, eps, strategy,
                                                config.reps, seed)
                        .numeric);
      seed += 10;
    }
    ldp::bench::PrintRow(name, row);
  }
  for (const auto& [name, kind] :
       std::vector<std::pair<const char*, ldp::MechanismKind>>{
           {"PM", ldp::MechanismKind::kPiecewise},
           {"HM", ldp::MechanismKind::kHybrid}}) {
    std::vector<double> row;
    for (const double scale : numeric_scales) {
      const ldp::data::Dataset subset =
          prefix(static_cast<uint64_t>(scale * base));
      row.push_back(
          ldp::bench::AverageProposed(subset, eps, kind, config.reps, seed)
              .numeric);
      seed += 10;
    }
    ldp::bench::PrintRow(name, row);
  }

  std::printf("\n--- (b) categorical, n in {1/16 .. 1} x %llu ---\n",
              static_cast<unsigned long long>(base));
  const std::vector<double> categorical_scales = {1.0 / 16, 1.0 / 8, 1.0 / 4,
                                                  1.0 / 2, 1.0};
  ldp::bench::PrintColumns("method \\ n/base", categorical_scales);
  std::vector<double> oue_row, proposed_row;
  for (const double scale : categorical_scales) {
    const ldp::data::Dataset subset =
        prefix(static_cast<uint64_t>(scale * base));
    oue_row.push_back(
        ldp::bench::AverageBaseline(subset, eps,
                                    ldp::api::NumericStrategy::kDuchiMulti,
                                    config.reps, seed)
            .categorical);
    proposed_row.push_back(
        ldp::bench::AverageProposed(subset, eps, ldp::MechanismKind::kHybrid,
                                    config.reps, seed + 5)
            .categorical);
    seed += 10;
  }
  ldp::bench::PrintRow("OUE", oue_row);
  ldp::bench::PrintRow("Proposed", proposed_row);

  std::printf("\nexpected shape: every series decays ~1/n; orderings as in "
              "Fig. 4.\n");
  return 0;
}
