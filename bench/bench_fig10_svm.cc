// Fig. 10: misclassification rate of SVM (hinge loss) trained by LDP-SGD on
// the BR-like and MX-like census data, for ε ∈ {0.5, 1, 2, 4}.

#include <cstdio>

#include "erm_bench.h"

int main() {
  const ldp::bench::BenchConfig config = ldp::bench::ResolveConfig();
  ldp::bench::PrintHeader("Fig. 10: SVM misclassification rate", config);

  auto br = ldp::data::MakeBrazilCensus(config.users, 31);
  auto mx = ldp::data::MakeMexicoCensus(config.users, 32);
  if (!br.ok() || !mx.ok()) {
    std::fprintf(stderr, "census generation failed\n");
    return 1;
  }
  std::printf("--- (a) BR ---\n");
  ldp::bench::RunErmPanel(br.value(), ldp::ml::LossKind::kHinge,
                          ldp::ml::EvalMetric::kMisclassification, config);
  std::printf("\n--- (b) MX ---\n");
  ldp::bench::RunErmPanel(mx.value(), ldp::ml::LossKind::kHinge,
                          ldp::ml::EvalMetric::kMisclassification, config);
  std::printf(
      "\nexpected shape: as Fig. 9; at eps >= 2 PM/HM approach the "
      "non-private rate.\n");
  return 0;
}
