// Shared driver for the collection-accuracy experiments (Figs. 4–8): runs
// every competitor over a dataset at each budget, averaging MSE over
// repetitions, and prints one row per method. Competitors follow
// Section VI-A:
//   numeric  — Laplace / SCDF / Staircase (per-attribute split),
//              Duchi (Algorithm 3 on the numeric group), and the proposed
//              Algorithm 4 with PM and with HM;
//   categorical — OUE applied per attribute at ε/d (split baseline) vs the
//              proposed Section IV-C pipeline.

#ifndef LDP_BENCH_COLLECTION_BENCH_H_
#define LDP_BENCH_COLLECTION_BENCH_H_

#include <cstdio>
#include <thread>
#include <vector>

#include "aggregate/metrics.h"
#include "api/pipeline.h"
#include "bench_util.h"
#include "util/check.h"
#include "util/threadpool.h"

namespace ldp::bench {

inline ThreadPool* SharedPool() {
  static ThreadPool* pool =
      new ThreadPool(std::max(2u, std::thread::hardware_concurrency()));
  return pool;
}

/// Runs one seeded in-process collection through the session facade with the
/// benchmark's schema filled in from the dataset.
inline api::CollectionOutput CollectForBench(const data::Dataset& dataset,
                                             api::PipelineConfig config,
                                             uint64_t seed, ThreadPool* pool) {
  auto attributes = api::AttributesFromSchema(dataset.schema());
  LDP_CHECK_MSG(attributes.ok(), attributes.status().message().c_str());
  config.attributes = std::move(attributes).value();
  auto pipeline = api::Pipeline::Create(std::move(config));
  LDP_CHECK_MSG(pipeline.ok(), pipeline.status().message().c_str());
  auto output = pipeline.value().Collect(dataset, seed, pool);
  LDP_CHECK_MSG(output.ok(), output.status().message().c_str());
  return std::move(output).value();
}

/// Mean numeric and categorical MSE of the proposed pipeline over `reps`
/// seeded runs.
struct MsePair {
  double numeric = 0.0;
  double categorical = 0.0;
};

inline MsePair AverageProposed(const data::Dataset& dataset, double epsilon,
                               MechanismKind kind, int reps,
                               uint64_t seed_base) {
  MsePair total;
  for (int rep = 0; rep < reps; ++rep) {
    api::PipelineConfig config;
    config.epsilon = epsilon;
    config.mechanism = kind;
    config.oracle = FrequencyOracleKind::kOue;
    auto output =
        CollectForBench(dataset, std::move(config), seed_base + rep,
                        SharedPool());
    total.numeric += aggregate::NumericMse(output) / reps;
    total.categorical += aggregate::CategoricalMse(output) / reps;
  }
  return total;
}

inline MsePair AverageBaseline(const data::Dataset& dataset, double epsilon,
                               api::NumericStrategy strategy, int reps,
                               uint64_t seed_base) {
  MsePair total;
  for (int rep = 0; rep < reps; ++rep) {
    api::PipelineConfig config;
    config.epsilon = epsilon;
    config.oracle = FrequencyOracleKind::kOue;
    config.baseline = strategy;
    auto output =
        CollectForBench(dataset, std::move(config), seed_base + rep,
                        SharedPool());
    total.numeric += aggregate::NumericMse(output) / reps;
    total.categorical += aggregate::CategoricalMse(output) / reps;
  }
  return total;
}

/// Prints the numeric-MSE table (methods x epsilons) for `dataset`.
/// `include_staircase` matches the paper's per-figure method lists.
inline void PrintNumericComparison(const data::Dataset& dataset,
                                   const std::vector<double>& epsilons,
                                   const BenchConfig& config,
                                   bool include_staircase = false) {
  PrintColumns("method \\ eps", epsilons);
  std::vector<std::pair<const char*, api::NumericStrategy>> baselines =
      {{"Laplace", api::NumericStrategy::kLaplaceSplit},
       {"SCDF", api::NumericStrategy::kScdfSplit}};
  if (include_staircase) {
    baselines.emplace_back("Staircase",
                           api::NumericStrategy::kStaircaseSplit);
  }
  baselines.emplace_back("Duchi", api::NumericStrategy::kDuchiMulti);
  uint64_t seed = 1000;
  for (const auto& [name, strategy] : baselines) {
    std::vector<double> row;
    for (const double eps : epsilons) {
      row.push_back(
          AverageBaseline(dataset, eps, strategy, config.reps, seed).numeric);
      seed += 100;
    }
    PrintRow(name, row);
  }
  for (const auto& [name, kind] :
       std::vector<std::pair<const char*, MechanismKind>>{
           {"PM", MechanismKind::kPiecewise},
           {"HM", MechanismKind::kHybrid}}) {
    std::vector<double> row;
    for (const double eps : epsilons) {
      row.push_back(
          AverageProposed(dataset, eps, kind, config.reps, seed).numeric);
      seed += 100;
    }
    PrintRow(name, row);
  }
}

/// Prints the categorical-MSE table (OUE split vs proposed) for `dataset`.
inline void PrintCategoricalComparison(const data::Dataset& dataset,
                                       const std::vector<double>& epsilons,
                                       const BenchConfig& config) {
  PrintColumns("method \\ eps", epsilons);
  uint64_t seed = 5000;
  std::vector<double> oue_row, proposed_row;
  for (const double eps : epsilons) {
    oue_row.push_back(AverageBaseline(dataset, eps,
                                      api::NumericStrategy::kDuchiMulti,
                                      config.reps, seed)
                          .categorical);
    proposed_row.push_back(AverageProposed(dataset, eps,
                                           MechanismKind::kHybrid,
                                           config.reps, seed + 50)
                               .categorical);
    seed += 100;
  }
  PrintRow("OUE", oue_row);
  PrintRow("Proposed", proposed_row);
}

}  // namespace ldp::bench

#endif  // LDP_BENCH_COLLECTION_BENCH_H_
