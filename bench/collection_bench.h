// Shared driver for the collection-accuracy experiments (Figs. 4–8): runs
// every competitor over a dataset at each budget, averaging MSE over
// repetitions, and prints one row per method. Competitors follow
// Section VI-A:
//   numeric  — Laplace / SCDF / Staircase (per-attribute split),
//              Duchi (Algorithm 3 on the numeric group), and the proposed
//              Algorithm 4 with PM and with HM;
//   categorical — OUE applied per attribute at ε/d (split baseline) vs the
//              proposed Section IV-C pipeline.

#ifndef LDP_BENCH_COLLECTION_BENCH_H_
#define LDP_BENCH_COLLECTION_BENCH_H_

#include <cstdio>
#include <thread>
#include <vector>

#include "aggregate/collector.h"
#include "aggregate/metrics.h"
#include "bench_util.h"
#include "util/check.h"
#include "util/threadpool.h"

namespace ldp::bench {

inline ThreadPool* SharedPool() {
  static ThreadPool* pool =
      new ThreadPool(std::max(2u, std::thread::hardware_concurrency()));
  return pool;
}

/// Mean numeric and categorical MSE of the proposed pipeline over `reps`
/// seeded runs.
struct MsePair {
  double numeric = 0.0;
  double categorical = 0.0;
};

inline MsePair AverageProposed(const data::Dataset& dataset, double epsilon,
                               MechanismKind kind, int reps,
                               uint64_t seed_base) {
  MsePair total;
  for (int rep = 0; rep < reps; ++rep) {
    auto output = aggregate::CollectProposed(
        dataset, epsilon, seed_base + rep, kind, FrequencyOracleKind::kOue,
        SharedPool());
    LDP_CHECK_MSG(output.ok(), output.status().message().c_str());
    total.numeric += aggregate::NumericMse(output.value()) / reps;
    total.categorical += aggregate::CategoricalMse(output.value()) / reps;
  }
  return total;
}

inline MsePair AverageBaseline(const data::Dataset& dataset, double epsilon,
                               aggregate::NumericStrategy strategy, int reps,
                               uint64_t seed_base) {
  MsePair total;
  for (int rep = 0; rep < reps; ++rep) {
    auto output = aggregate::CollectBaseline(
        dataset, epsilon, seed_base + rep, strategy,
        FrequencyOracleKind::kOue, SharedPool());
    LDP_CHECK_MSG(output.ok(), output.status().message().c_str());
    total.numeric += aggregate::NumericMse(output.value()) / reps;
    total.categorical += aggregate::CategoricalMse(output.value()) / reps;
  }
  return total;
}

/// Prints the numeric-MSE table (methods x epsilons) for `dataset`.
/// `include_staircase` matches the paper's per-figure method lists.
inline void PrintNumericComparison(const data::Dataset& dataset,
                                   const std::vector<double>& epsilons,
                                   const BenchConfig& config,
                                   bool include_staircase = false) {
  PrintColumns("method \\ eps", epsilons);
  std::vector<std::pair<const char*, aggregate::NumericStrategy>> baselines =
      {{"Laplace", aggregate::NumericStrategy::kLaplaceSplit},
       {"SCDF", aggregate::NumericStrategy::kScdfSplit}};
  if (include_staircase) {
    baselines.emplace_back("Staircase",
                           aggregate::NumericStrategy::kStaircaseSplit);
  }
  baselines.emplace_back("Duchi", aggregate::NumericStrategy::kDuchiMulti);
  uint64_t seed = 1000;
  for (const auto& [name, strategy] : baselines) {
    std::vector<double> row;
    for (const double eps : epsilons) {
      row.push_back(
          AverageBaseline(dataset, eps, strategy, config.reps, seed).numeric);
      seed += 100;
    }
    PrintRow(name, row);
  }
  for (const auto& [name, kind] :
       std::vector<std::pair<const char*, MechanismKind>>{
           {"PM", MechanismKind::kPiecewise},
           {"HM", MechanismKind::kHybrid}}) {
    std::vector<double> row;
    for (const double eps : epsilons) {
      row.push_back(
          AverageProposed(dataset, eps, kind, config.reps, seed).numeric);
      seed += 100;
    }
    PrintRow(name, row);
  }
}

/// Prints the categorical-MSE table (OUE split vs proposed) for `dataset`.
inline void PrintCategoricalComparison(const data::Dataset& dataset,
                                       const std::vector<double>& epsilons,
                                       const BenchConfig& config) {
  PrintColumns("method \\ eps", epsilons);
  uint64_t seed = 5000;
  std::vector<double> oue_row, proposed_row;
  for (const double eps : epsilons) {
    oue_row.push_back(AverageBaseline(dataset, eps,
                                      aggregate::NumericStrategy::kDuchiMulti,
                                      config.reps, seed)
                          .categorical);
    proposed_row.push_back(AverageProposed(dataset, eps,
                                           MechanismKind::kHybrid,
                                           config.reps, seed + 50)
                               .categorical);
    seed += 100;
  }
  PrintRow("OUE", oue_row);
  PrintRow("Proposed", proposed_row);
}

}  // namespace ldp::bench

#endif  // LDP_BENCH_COLLECTION_BENCH_H_
