// Network ingest throughput: what the socket transport costs relative to
// feeding the same bytes into a ServerSession in process. Pre-encodes K
// shards of mixed OUE reports once, then sweeps three delivery paths over
// identical bytes:
//
//   inproc         ServerSession::Feed from K producer threads (no
//                  sockets) — the PR 4 session path, the upper bound;
//   uds            K CollectorClients over a loopback Unix-domain socket
//                  into a ReportServer (K acceptors) wrapping an identical
//                  session;
//   uds_auth       uds under a campaign key: every HELLO carries a
//                  reporter id and an HMAC-SHA256 tag the server verifies.
//                  Authentication touches only the one HELLO per shard, so
//                  this row's DATA-path latency quantiles should match the
//                  anonymous uds row — the proof that HMAC verification
//                  stays off the hot path. Checked against a file-based
//                  keyed reference (OpenShard per reporter id), ledger
//                  section included;
//   tcp            the same over TCP loopback (adds the kernel TCP stack);
//   uds_wal        uds with the write-ahead frame log on (--wal-dir): what
//                  crash durability costs on the accepted-frame path;
//   uds_relay      a 1-hop relay tier: the uds edge plus a RelayForwarder
//                  shipping the session to a root collector whose drain
//                  fold produces the final snapshot;
//   uds_relay_wal  the full distributed deployment, relay and WAL both on.
//
// Every path must ingest exactly `reports` reports and produce the same
// session snapshot — the bench doubles as a determinism check (for the
// relay paths this is the two-tier bit-identity guarantee). Emits
// BENCH_net_ingest.json next to the binary for trend tracking; WAL rows
// carry `wal_bytes`, the log volume the run appended.
//
//   LDP_BENCH_USERS   total reports across shards (default 1000000)
//   LDP_BENCH_FAST=1  shrink for smoke runs (100000)

#include <dirent.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/pipeline.h"
#include "api/server_session.h"
#include "net/client.h"
#include "net/report_server.h"
#include "net/socket.h"
#include "obs/metrics.h"
#include "relay/forwarder.h"
#include "relay/frame_wal.h"
#include "stream/report_stream.h"
#include "util/build_info.h"
#include "util/random.h"
#include "util/threadpool.h"

namespace {

using namespace ldp;  // NOLINT: benchmark binary

constexpr size_t kShards = 4;
constexpr size_t kChunkBytes = 256 * 1024;

// The census-like 8-attribute schema bench_stream_ingest sweeps, OUE only.
api::Pipeline MakePipeline() {
  api::PipelineConfig config;
  config.attributes = {
      MixedAttribute::Numeric(),         MixedAttribute::Categorical(8),
      MixedAttribute::Numeric(),         MixedAttribute::Categorical(16),
      MixedAttribute::Numeric(),         MixedAttribute::Categorical(4),
      MixedAttribute::Numeric(),         MixedAttribute::Categorical(32)};
  config.epsilon = 4.0;
  auto pipeline = api::Pipeline::Create(std::move(config));
  if (!pipeline.ok()) {
    std::fprintf(stderr, "%s\n", pipeline.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(pipeline).value();
}

// Frame bytes only (no stream header): connections negotiate the header in
// HELLO; the in-process path prepends it explicitly.
std::vector<std::string> EncodeShards(const api::Pipeline& pipeline,
                                      uint64_t reports,
                                      size_t num_shards = kShards) {
  auto client = pipeline.NewClient();
  if (!client.ok()) std::exit(1);
  MixedTuple tuple(8);
  for (uint32_t j = 0; j < 8; ++j) {
    tuple[j] = (j % 2 == 0)
                   ? AttributeValue::Numeric(0.25)
                   : AttributeValue::Categorical(j % 4);
  }
  std::vector<std::string> shards;
  const std::vector<IndexRange> ranges = SplitRange(reports, num_shards);
  for (size_t s = 0; s < ranges.size(); ++s) {
    std::string bytes;
    Rng rng(1000 + s);
    for (uint64_t i = ranges[s].begin; i < ranges[s].end; ++i) {
      auto payload = client.value().EncodeReport(tuple, &rng);
      if (!payload.ok() ||
          !stream::AppendFrame(payload.value(), &bytes).ok()) {
        std::fprintf(stderr, "encode failed\n");
        std::exit(1);
      }
    }
    shards.push_back(std::move(bytes));
  }
  return shards;
}

struct RunResult {
  const char* path = "";
  double seconds = 0.0;
  double reports_per_sec = 0.0;
  double mib_per_sec = 0.0;
  /// Networked paths only: per-DATA-message ingest latency (payload read +
  /// session Feed) from the server's ldp_net_data_read_us histogram; 0 for
  /// the in-process path, which has no DATA messages.
  double data_p50_us = 0.0;
  double data_p99_us = 0.0;
  /// WAL paths only: bytes the run appended to the frame log.
  uint64_t wal_bytes = 0;
  bool has_wal = false;
};

// Empties (or implicitly creates, via FrameWal::Open) the bench WAL dir so
// a run never replays the previous path's log.
void CleanWalDir(const std::string& dir) {
  DIR* handle = ::opendir(dir.c_str());
  if (handle == nullptr) return;
  while (dirent* entry = ::readdir(handle)) {
    const std::string file = entry->d_name;
    if (file == "." || file == "..") continue;
    ::unlink((dir + "/" + file).c_str());
  }
  ::closedir(handle);
}

uint64_t TotalBytes(const std::vector<std::string>& shards) {
  uint64_t total = 0;
  for (const std::string& shard : shards) total += shard.size();
  return total;
}

// K producer threads feeding one concurrent session directly.
double RunInProcess(const api::Pipeline& pipeline,
                    const std::vector<std::string>& shards,
                    std::string* snapshot) {
  api::ServerSessionOptions options;
  options.ingest_threads = 2;
  auto server = pipeline.NewServer(options);
  if (!server.ok()) std::exit(1);
  api::ServerSession& session = server.value();
  const std::string header = stream::EncodeStreamHeader(pipeline.header());

  const auto started = std::chrono::steady_clock::now();
  std::vector<std::thread> producers;
  std::vector<size_t> ids(shards.size());
  for (size_t s = 0; s < shards.size(); ++s) ids[s] = session.OpenShard();
  for (size_t s = 0; s < shards.size(); ++s) {
    producers.emplace_back([&, s] {
      if (!session.Feed(ids[s], header).ok()) std::exit(1);
      const std::string& bytes = shards[s];
      for (size_t offset = 0; offset < bytes.size(); offset += kChunkBytes) {
        const size_t take = std::min(kChunkBytes, bytes.size() - offset);
        if (!session.Feed(ids[s], bytes.data() + offset, take).ok()) {
          std::exit(1);
        }
      }
    });
  }
  for (std::thread& producer : producers) producer.join();
  for (const size_t id : ids) {
    if (!session.CloseShard(id).ok()) std::exit(1);
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    started)
          .count();
  *snapshot = session.Snapshot();
  return seconds;
}

// K CollectorClients through a loopback ReportServer; `wal` adds the
// frame log to the accepted-frame path and `relay` interposes a full
// second tier (forwarder + root collector, whose folded session is the
// result). `registry` collects the edge server's telemetry (DATA-message
// latency histogram); since the snapshot is compared against the
// uninstrumented in-process run, this also re-checks that metrics never
// perturb the estimates.
// Campaign key for the authenticated row and its per-shard reporter ids.
constexpr const char* kBenchCampaignKey = "bench-net-ingest-key";

std::string BenchReporterId(size_t shard) {
  return "bench-reporter-" + std::to_string(shard);
}

// The file-based reference for the authenticated row: the same shard bytes
// opened under the same reporter ids, so the snapshot's ledger section is
// part of the equality check.
std::string AuthReferenceSnapshot(const api::Pipeline& pipeline,
                                  const std::vector<std::string>& shards) {
  auto session = pipeline.NewServer();
  if (!session.ok()) std::exit(1);
  const std::string header = stream::EncodeStreamHeader(pipeline.header());
  for (size_t s = 0; s < shards.size(); ++s) {
    auto shard = session.value().OpenShard(BenchReporterId(s));
    if (!shard.ok() ||
        !session.value().Feed(shard.value(), header).ok() ||
        !session.value().Feed(shard.value(), shards[s]).ok() ||
        !session.value().CloseShard(shard.value()).ok()) {
      std::exit(1);
    }
  }
  return session.value().Snapshot();
}

double RunNetworked(const api::Pipeline& pipeline,
                    const std::vector<std::string>& shards,
                    const net::Endpoint& endpoint, bool wal, bool relay,
                    bool auth, obs::MetricsRegistry* registry,
                    std::string* snapshot, uint64_t* wal_bytes) {
  api::ServerSessionOptions session_options;
  session_options.ingest_threads = 2;
  auto server_session = pipeline.NewServer(session_options);
  if (!server_session.ok()) std::exit(1);

  const std::string wal_dir =
      "/tmp/ldp_bench_net_wal_" + std::to_string(::getpid());
  std::unique_ptr<relay::FrameWal> frame_wal;
  if (wal) {
    CleanWalDir(wal_dir);
    relay::FrameWal::Options wal_options;
    wal_options.metrics = registry;
    auto opened = relay::FrameWal::Open(wal_dir, &server_session.value(),
                                        wal_options, nullptr);
    if (!opened.ok()) {
      std::fprintf(stderr, "%s\n", opened.status().ToString().c_str());
      std::exit(1);
    }
    frame_wal = std::move(opened).value();
  }

  // The optional upstream tier: a root collector the edge relays to.
  auto root_session = pipeline.NewServer();
  if (!root_session.ok()) std::exit(1);
  std::unique_ptr<net::ReportServer> root;
  if (relay) {
    net::ReportServerOptions root_options;
    root_options.accept_snapshots = true;
    net::Endpoint root_endpoint;
    root_endpoint.kind = net::Endpoint::Kind::kUnix;
    root_endpoint.path = "/tmp/ldp_bench_net_root_" +
                         std::to_string(::getpid()) + ".sock";
    auto started_root = net::ReportServer::Start(&root_session.value(),
                                                 pipeline.header(),
                                                 root_endpoint, root_options);
    if (!started_root.ok()) {
      std::fprintf(stderr, "%s\n",
                   started_root.status().ToString().c_str());
      std::exit(1);
    }
    root = std::move(started_root).value();
  }

  net::ReportServerOptions server_options;
  server_options.metrics = registry;
  server_options.acceptors = static_cast<unsigned>(shards.size());
  // Strict ordinal barrier: the cross-path snapshot-equality check relies
  // on merge order being independent of which reporter finishes first.
  server_options.expected_shards = shards.size();
  server_options.wal = frame_wal.get();
  if (auth) server_options.campaign_key = kBenchCampaignKey;
  auto server = net::ReportServer::Start(
      &server_session.value(), pipeline.header(), endpoint, server_options);
  if (!server.ok()) {
    std::fprintf(stderr, "%s\n", server.status().ToString().c_str());
    std::exit(1);
  }
  const net::Endpoint resolved = server.value()->endpoint();

  const auto started = std::chrono::steady_clock::now();
  std::unique_ptr<relay::RelayForwarder> forwarder;
  if (relay) {
    relay::RelayForwarderOptions forward_options;
    // Quiet cadence: only the synchronous drain flush ships, so the relay
    // rows measure the deterministic cost of the tier, not timer jitter.
    forward_options.interval_ms = 60000;
    forward_options.metrics = registry;
    auto started_forwarder = relay::RelayForwarder::Start(
        &server_session.value(), root->endpoint(), forward_options);
    if (!started_forwarder.ok()) std::exit(1);
    forwarder = std::move(started_forwarder).value();
  }
  std::vector<std::thread> reporters;
  for (size_t s = 0; s < shards.size(); ++s) {
    reporters.emplace_back([&, s] {
      net::CollectorClientOptions client_options;
      if (auth) {
        client_options.reporter_id = BenchReporterId(s);
        client_options.campaign_key = kBenchCampaignKey;
      }
      auto connection = net::CollectorClient::Connect(
          resolved, pipeline.header(), /*ordinal=*/s, client_options);
      if (!connection.ok()) {
        std::fprintf(stderr, "%s\n", connection.status().ToString().c_str());
        std::exit(1);
      }
      if (!connection.value().Send(shards[s]).ok()) std::exit(1);
      auto summary = connection.value().Close();
      if (!summary.ok() || !summary.value().status.ok()) std::exit(1);
    });
  }
  for (std::thread& reporter : reporters) reporter.join();
  server.value()->Stop(/*drain=*/true);
  if (relay) {
    // The drain sequence the tools run: final flush upstream, then the
    // root drains and folds. The fold is part of what the tier costs.
    if (!forwarder->Stop(/*final_flush=*/true).ok()) std::exit(1);
    root->Stop(/*drain=*/true);
    if (!root->FoldRelaySnapshots().ok()) std::exit(1);
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    started)
          .count();
  if (wal && registry != nullptr) {
    *wal_bytes = obs::WalMetrics::ForRegistry(registry).bytes->Value();
  }
  *snapshot = relay ? root_session.value().Snapshot()
                    : server_session.value().Snapshot();
  return seconds;
}

// --- reporter sweep --------------------------------------------------------
//
// How the event-driven edge scales with the number of logical reporters:
// R shards multiplexed as channels over kSweepConnections real
// connections (ordinal s rides connection s % kSweepConnections), closes
// pipelined so the strict merge barrier never idles a connection. Each
// row records aggregate throughput and the p99 shard-admission latency
// (HELLO -> HELLO_OK round trip as the reporter sees it, while the
// connection's other channels keep streaming).

constexpr size_t kSweepConnections = 16;

struct SweepResult {
  size_t reporters = 0;
  double seconds = 0.0;
  double reports_per_sec = 0.0;
  double accept_p99_us = 0.0;
};

// The file-based reference for one sweep split: the same R shard streams
// fed into a session in ordinal order.
std::string SweepReferenceSnapshot(const api::Pipeline& pipeline,
                                   const std::vector<std::string>& shards) {
  auto session = pipeline.NewServer();
  if (!session.ok()) std::exit(1);
  const std::string header = stream::EncodeStreamHeader(pipeline.header());
  for (const std::string& bytes : shards) {
    const size_t shard = session.value().OpenShard();
    if (!session.value().Feed(shard, header).ok() ||
        !session.value().Feed(shard, bytes).ok() ||
        !session.value().CloseShard(shard).ok()) {
      std::exit(1);
    }
  }
  return session.value().Snapshot();
}

SweepResult RunReporterSweep(const api::Pipeline& pipeline,
                             const net::Endpoint& endpoint,
                             const std::vector<std::string>& shards,
                             uint64_t reports, std::string* snapshot) {
  const size_t reporters = shards.size();
  api::ServerSessionOptions session_options;
  session_options.ingest_threads = 2;
  auto session = pipeline.NewServer(session_options);
  if (!session.ok()) std::exit(1);
  net::ReportServerOptions server_options;
  server_options.acceptors = 4;
  server_options.expected_shards = reporters;
  auto server = net::ReportServer::Start(&session.value(), pipeline.header(),
                                         endpoint, server_options);
  if (!server.ok()) {
    std::fprintf(stderr, "%s\n", server.status().ToString().c_str());
    std::exit(1);
  }
  const net::Endpoint resolved = server.value()->endpoint();

  const size_t connections = std::min(kSweepConnections, reporters);
  std::vector<std::vector<double>> admit_us(connections);
  const auto started = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (size_t c = 0; c < connections; ++c) {
    threads.emplace_back([&, c] {
      // Connect negotiates this connection's first reporter (ordinal c);
      // every later reporter is one more channel on the same socket.
      auto admit_started = std::chrono::steady_clock::now();
      auto client = net::CollectorClient::Connect(resolved, pipeline.header(),
                                                  /*ordinal=*/c);
      if (!client.ok()) {
        std::fprintf(stderr, "%s\n", client.status().ToString().c_str());
        std::exit(1);
      }
      auto record = [&] {
        admit_us[c].push_back(
            std::chrono::duration<double, std::micro>(
                std::chrono::steady_clock::now() - admit_started)
                .count());
      };
      record();
      std::vector<uint32_t> channels = {0};
      for (size_t ordinal = c;; ) {
        const uint32_t channel = channels.back();
        const std::string& bytes = shards[ordinal];
        if (!client.value().Send(channel, bytes.data(), bytes.size()).ok() ||
            !client.value().CloseShardBegin(channel).ok()) {
          std::exit(1);
        }
        ordinal += connections;
        if (ordinal >= reporters) break;
        admit_started = std::chrono::steady_clock::now();
        auto next = client.value().OpenShard(pipeline.header(), ordinal);
        if (!next.ok()) {
          std::fprintf(stderr, "%s\n", next.status().ToString().c_str());
          std::exit(1);
        }
        record();
        channels.push_back(next.value());
      }
      for (const uint32_t channel : channels) {
        auto summary = client.value().AwaitShardClosed(channel);
        if (!summary.ok() || !summary.value().status.ok()) std::exit(1);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  server.value()->Stop(/*drain=*/true);
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    started)
          .count();

  std::vector<double> all;
  for (const std::vector<double>& per_conn : admit_us) {
    all.insert(all.end(), per_conn.begin(), per_conn.end());
  }
  std::sort(all.begin(), all.end());
  SweepResult result;
  result.reporters = reporters;
  result.seconds = seconds;
  result.reports_per_sec = static_cast<double>(reports) / seconds;
  result.accept_p99_us =
      all.empty() ? 0.0
                  : all[std::min(all.size() - 1, (all.size() * 99) / 100)];
  *snapshot = session.value().Snapshot();
  return result;
}

}  // namespace

int main() {
  uint64_t reports = 1000000;
  if (const char* users = std::getenv("LDP_BENCH_USERS"); users != nullptr) {
    reports = std::strtoull(users, nullptr, 10);
  } else if (const char* fast = std::getenv("LDP_BENCH_FAST");
             fast != nullptr && std::string(fast) == "1") {
    reports = 100000;
  }

  const api::Pipeline pipeline = MakePipeline();
  const std::vector<std::string> shards = EncodeShards(pipeline, reports);
  const uint64_t total_bytes = TotalBytes(shards);

  std::printf("=== Network ingest: loopback transport vs in-process ===\n");
  std::printf("(reports: %llu across %zu shards, schema: 8 attributes, "
              "eps = 4, OUE)\n\n",
              static_cast<unsigned long long>(reports), kShards);
  std::printf("%-14s %10s %14s %10s %10s %10s\n", "path", "seconds",
              "reports/s", "MiB/s", "p50(us)", "p99(us)");

  const net::Endpoint uds = {net::Endpoint::Kind::kUnix, "", 0,
                             "/tmp/ldp_bench_net_" +
                                 std::to_string(::getpid()) + ".sock"};
  const net::Endpoint tcp = {net::Endpoint::Kind::kTcp, "127.0.0.1", 0, ""};

  std::string reference;
  // The authenticated row carries per-reporter ledgers in its snapshot, so
  // it has its own keyed file-based reference rather than the anonymous one.
  const std::string auth_reference = AuthReferenceSnapshot(pipeline, shards);
  std::vector<RunResult> results;
  const struct {
    const char* name;
    const net::Endpoint* endpoint;  // null = in-process
    bool wal;
    bool relay;
    bool auth;
  } kPaths[] = {{"inproc", nullptr, false, false, false},
                {"uds", &uds, false, false, false},
                {"uds_auth", &uds, false, false, true},
                {"tcp", &tcp, false, false, false},
                {"uds_wal", &uds, true, false, false},
                {"uds_relay", &uds, false, true, false},
                {"uds_relay_wal", &uds, true, true, false}};
  for (const auto& path : kPaths) {
    std::string snapshot;
    obs::MetricsRegistry registry;
    uint64_t wal_bytes = 0;
    const double seconds =
        path.endpoint == nullptr
            ? RunInProcess(pipeline, shards, &snapshot)
            : RunNetworked(pipeline, shards, *path.endpoint, path.wal,
                           path.relay, path.auth, &registry, &snapshot,
                           &wal_bytes);
    if (path.auth) {
      if (snapshot != auth_reference) {
        std::fprintf(stderr, "%s: session diverged from keyed file-based "
                             "run\n",
                     path.name);
        return 1;
      }
    } else if (reference.empty()) {
      reference = snapshot;
    } else if (snapshot != reference) {
      std::fprintf(stderr, "%s: session diverged from in-process run\n",
                   path.name);
      return 1;
    }
    RunResult result;
    result.path = path.name;
    result.seconds = seconds;
    result.reports_per_sec = static_cast<double>(reports) / seconds;
    result.mib_per_sec =
        static_cast<double>(total_bytes) / seconds / (1024.0 * 1024.0);
    if (path.endpoint != nullptr) {
      const obs::Histogram* data_read_us =
          obs::NetServerMetrics::ForRegistry(&registry).data_read_us;
      result.data_p50_us = data_read_us->Quantile(0.5);
      result.data_p99_us = data_read_us->Quantile(0.99);
    }
    result.wal_bytes = wal_bytes;
    result.has_wal = path.wal;
    results.push_back(result);
    std::printf("%-14s %10.3f %14.0f %10.1f %10.0f %10.0f\n", result.path,
                result.seconds, result.reports_per_sec, result.mib_per_sec,
                result.data_p50_us, result.data_p99_us);
  }

  // Reporter sweep: C100K-style fan-in, R logical reporters multiplexed
  // over kSweepConnections sockets. Every sweep point re-checks
  // bit-identity against a file-based run of the same R-way split (the
  // split changes the shard contents, so each point has its own
  // reference).
  std::printf("\n=== Reporter sweep: %zu connections, R multiplexed "
              "shards ===\n",
              kSweepConnections);
  std::printf("%-14s %10s %14s %12s\n", "reporters", "seconds", "reports/s",
              "admit p99(us)");
  std::vector<SweepResult> sweeps;
  for (const size_t reporters : {size_t{100}, size_t{1000}, size_t{10000}}) {
    const std::vector<std::string> sweep_shards =
        EncodeShards(pipeline, reports, reporters);
    const std::string sweep_reference =
        SweepReferenceSnapshot(pipeline, sweep_shards);
    std::string snapshot;
    const net::Endpoint sweep_uds = {
        net::Endpoint::Kind::kUnix, "", 0,
        "/tmp/ldp_bench_net_sweep_" + std::to_string(::getpid()) + ".sock"};
    const SweepResult sweep =
        RunReporterSweep(pipeline, sweep_uds, sweep_shards, reports,
                         &snapshot);
    if (snapshot != sweep_reference) {
      std::fprintf(stderr,
                   "reporters=%zu: session diverged from file-based run\n",
                   reporters);
      return 1;
    }
    sweeps.push_back(sweep);
    std::printf("%-14zu %10.3f %14.0f %12.0f\n", sweep.reporters,
                sweep.seconds, sweep.reports_per_sec, sweep.accept_p99_us);
  }

  FILE* json = std::fopen("BENCH_net_ingest.json", "w");
  if (json != nullptr) {
    std::fprintf(json,
                 "{\n  \"benchmark\": \"net_ingest\",\n"
                 "  \"build\": %s,\n"
                 "  \"reports\": %llu,\n  \"shards\": %zu,\n  \"runs\": [\n",
                 BuildInfoJson().c_str(),
                 static_cast<unsigned long long>(reports), kShards);
    for (size_t i = 0; i < results.size(); ++i) {
      std::fprintf(json,
                   "    {\"path\": \"%s\", \"seconds\": %.6f, "
                   "\"reports_per_sec\": %.0f, \"mib_per_sec\": %.1f, "
                   "\"data_p50_us\": %.1f, \"data_p99_us\": %.1f",
                   results[i].path, results[i].seconds,
                   results[i].reports_per_sec, results[i].mib_per_sec,
                   results[i].data_p50_us, results[i].data_p99_us);
      if (results[i].has_wal) {
        std::fprintf(json, ", \"wal_bytes\": %llu",
                     static_cast<unsigned long long>(results[i].wal_bytes));
      }
      std::fprintf(json, "},\n");
    }
    for (size_t i = 0; i < sweeps.size(); ++i) {
      std::fprintf(json,
                   "    {\"path\": \"reporters_%zu\", \"reporters\": %zu, "
                   "\"seconds\": %.6f, \"reports_per_sec\": %.0f, "
                   "\"accept_p99_us\": %.1f}%s\n",
                   sweeps[i].reporters, sweeps[i].reporters,
                   sweeps[i].seconds, sweeps[i].reports_per_sec,
                   sweeps[i].accept_p99_us,
                   i + 1 < sweeps.size() ? "," : "");
    }
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);
    std::printf("\nwrote BENCH_net_ingest.json\n");
  }
  return 0;
}
