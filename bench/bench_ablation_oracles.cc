// Ablation A4 — the frequency oracle behind Section IV-C: the paper plugs
// OUE into the mixed collector as "the current state of the art". This
// harness sweeps all six oracles (GRR, SUE, OUE, OLH, HE, THE) across domain
// sizes and budgets, printing the analytic small-frequency estimate variance
// and the measured frequency-estimation MSE on a Zipf-distributed attribute.
// GRR should win only while k < e^ε + 2; OUE/OLH should be the flat
// state-of-the-art beyond that, justifying the paper's choice.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "frequency/frequency_oracle.h"
#include "frequency/histogram.h"
#include "util/check.h"
#include "util/random.h"

namespace {

using namespace ldp;  // NOLINT: experiment binary

std::vector<double> ZipfTruth(uint32_t domain) {
  std::vector<double> truth(domain);
  double total = 0.0;
  for (uint32_t v = 0; v < domain; ++v) {
    truth[v] = 1.0 / (v + 1.0);
    total += truth[v];
  }
  for (double& f : truth) f /= total;
  return truth;
}

uint32_t SampleFrom(const std::vector<double>& truth, Rng* rng) {
  double u = rng->Uniform01();
  for (uint32_t v = 0; v + 1 < truth.size(); ++v) {
    if (u < truth[v]) return v;
    u -= truth[v];
  }
  return static_cast<uint32_t>(truth.size() - 1);
}

double MeasuredMse(const FrequencyOracle& oracle,
                   const std::vector<double>& truth, uint64_t n, int reps,
                   Rng* rng) {
  double total = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    FrequencyEstimator estimator(&oracle);
    for (uint64_t i = 0; i < n; ++i) {
      estimator.Add(oracle.Perturb(SampleFrom(truth, rng), rng));
    }
    const std::vector<double> est = estimator.RawEstimate();
    double mse = 0.0;
    for (size_t v = 0; v < truth.size(); ++v) {
      mse += (est[v] - truth[v]) * (est[v] - truth[v]) / truth.size();
    }
    total += mse / reps;
  }
  return total;
}

}  // namespace

int main() {
  const ldp::bench::BenchConfig config = ldp::bench::ResolveConfig();
  ldp::bench::PrintHeader(
      "Ablation: frequency oracle choice (Zipf attribute)", config);

  const std::vector<FrequencyOracleKind> kinds = {
      FrequencyOracleKind::kGrr, FrequencyOracleKind::kSue,
      FrequencyOracleKind::kOue, FrequencyOracleKind::kOlh,
      FrequencyOracleKind::kHe,  FrequencyOracleKind::kThe};

  Rng rng(1);
  for (const double eps : {0.5, 1.0, 2.0}) {
    for (const uint32_t domain : {2u, 8u, 32u, 128u}) {
      std::printf("--- eps = %.1f, domain = %u ---\n", eps, domain);
      std::printf("%-6s %22s %14s\n", "oracle", "analytic var (f=0, n)",
                  "measured MSE");
      const std::vector<double> truth = ZipfTruth(domain);
      for (const FrequencyOracleKind kind : kinds) {
        auto oracle = MakeFrequencyOracle(kind, eps, domain);
        LDP_CHECK(oracle.ok());
        const double analytic =
            oracle.value()->EstimateVariance(0.0, config.users);
        const double measured = MeasuredMse(*oracle.value(), truth,
                                            config.users, config.reps, &rng);
        std::printf("%-6s %22.3e %14.3e\n", oracle.value()->name(), analytic,
                    measured);
      }
      std::printf("\n");
    }
  }
  std::printf(
      "expected: GRR best only at tiny domains (k < e^eps + 2); OUE/OLH "
      "flat in k and best beyond;\nHE strictly worse than THE; OUE at least "
      "as good as both — the Section IV-C choice.\n");
  return 0;
}
