// Fig. 1: worst-case noise variance of the one-dimensional mechanisms
// (Laplace, Duchi et al., PM, HM — plus the SCDF/Staircase variants) as a
// function of the privacy budget ε. Prints one series per mechanism over a
// dense ε grid; the crossings at ε* and ε# reproduce the figure's shape.

#include <cstdio>
#include <vector>

#include "baselines/scdf.h"
#include "baselines/staircase.h"
#include "bench_util.h"
#include "core/variance.h"
#include "util/math.h"

int main() {
  const ldp::bench::BenchConfig config = ldp::bench::ResolveConfig();
  ldp::bench::PrintHeader(
      "Fig. 1: worst-case noise variance vs privacy budget (d = 1)", config);

  std::vector<double> grid;
  for (double eps = 0.25; eps <= 8.0001; eps += 0.25) grid.push_back(eps);

  std::printf("%-8s %12s %12s %12s %12s %12s %12s\n", "eps", "Laplace",
              "SCDF", "Staircase", "Duchi", "PM", "HM");
  for (const double eps : grid) {
    std::printf("%-8.2f %12.5f %12.5f %12.5f %12.5f %12.5f %12.5f\n", eps,
                ldp::LaplaceVariance(eps),
                ldp::ScdfMechanism(eps).WorstCaseVariance(),
                ldp::StaircaseMechanism(eps).WorstCaseVariance(),
                ldp::DuchiWorstCaseVariance(eps),
                ldp::PiecewiseWorstCaseVariance(eps),
                ldp::HybridWorstCaseVariance(eps));
  }

  std::printf(
      "\nexpected shape: Duchi flat-ish (> 1 always); Laplace/SCDF/Staircase "
      "~ 1/eps^2;\nPM crosses Duchi at eps# = %.4f; HM <= min(PM, Duchi) "
      "everywhere (equal to Duchi below eps* = %.4f).\n",
      ldp::EpsilonSharp(), ldp::EpsilonStar());
  return 0;
}
