// Fig. 2: the Piecewise Mechanism's output density pdf(t* | t) for
// t ∈ {0, 0.5, 1} at ε = 1. Prints the closed-form density alongside an
// empirical histogram of mechanism outputs, confirming the three-piece shape
// (centre piece [ℓ(t), r(t)] at density p, side pieces at p/e^ε) and how the
// right piece vanishes as t → 1.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/piecewise.h"
#include "util/random.h"

int main() {
  const ldp::bench::BenchConfig config = ldp::bench::ResolveConfig();
  ldp::bench::PrintHeader(
      "Fig. 2: PM output density for t = 0, 0.5, 1 (eps = 1)", config);

  const double eps = 1.0;
  const ldp::PiecewiseMechanism mech(eps);
  std::printf("C = %.5f, high density p = %.5f, low density p/e^eps = %.5f\n",
              mech.c(), mech.OutputPdf(0.0, 0.0),
              mech.OutputPdf(0.0, mech.c()));

  const int bins = 24;
  ldp::Rng rng(1);
  for (const double t : {0.0, 0.5, 1.0}) {
    std::printf("\n--- t = %.1f: centre piece [%.4f, %.4f] ---\n", t,
                mech.CenterLeft(t), mech.CenterRight(t));
    std::printf("%-22s %12s %12s\n", "bin", "pdf(closed)", "pdf(empirical)");
    std::vector<uint64_t> counts(bins, 0);
    const double width = 2.0 * mech.c() / bins;
    const uint64_t samples = config.users * 10;
    for (uint64_t i = 0; i < samples; ++i) {
      const double x = mech.Perturb(t, &rng);
      int bin = static_cast<int>((x + mech.c()) / width);
      if (bin < 0) bin = 0;
      if (bin >= bins) bin = bins - 1;
      ++counts[bin];
    }
    for (int b = 0; b < bins; ++b) {
      const double lo = -mech.c() + b * width;
      const double mid = lo + width / 2.0;
      const double empirical =
          static_cast<double>(counts[b]) / static_cast<double>(samples) /
          width;
      std::printf("[%8.4f, %8.4f) %12.5f %12.5f\n", lo, lo + width,
                  mech.OutputPdf(t, mid), empirical);
    }
  }
  return 0;
}
