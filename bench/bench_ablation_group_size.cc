// Ablation A5 — the LDP-SGD group size |G| (Section V): the paper argues
// |G| = Ω(d log d / ε²) keeps the averaged-gradient noise acceptable, while
// larger groups waste users (fewer iterations). This harness sweeps |G| on a
// census classification task at several budgets and prints the resulting
// test error, marking the library's AutoGroupSize choice. Small groups
// drown each step in noise, large groups starve the iteration count; the
// trade-off's sweet spot sharpens with the population size.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "data/census.h"
#include "data/encode.h"
#include "data/split.h"
#include "ml/evaluate.h"
#include "ml/ldp_sgd.h"
#include "util/check.h"

namespace {

using namespace ldp;  // NOLINT: experiment binary

}  // namespace

int main() {
  const ldp::bench::BenchConfig config = ldp::bench::ResolveConfig();
  ldp::bench::PrintHeader(
      "Ablation: LDP-SGD group size |G| vs the Theta(d log d / eps^2) rule",
      config);

  auto census = data::MakeBrazilCensus(config.users, 77);
  LDP_CHECK(census.ok());
  const uint32_t label_col =
      census.value().schema().FindColumn(data::kIncomeColumn).value();
  auto features = data::EncodeFeatures(census.value(), label_col);
  auto labels = data::EncodeBinaryLabel(census.value(), label_col);
  LDP_CHECK(features.ok());
  LDP_CHECK(labels.ok());
  const uint32_t d = features.value().num_cols();

  Rng split_rng(1);
  auto split = data::TrainTestSplit(features.value().num_rows(), 0.2,
                                    &split_rng);
  LDP_CHECK(split.ok());
  const data::DesignMatrix train_x = ml::TakeRows(features.value(),
                                                  split.value().train);
  const std::vector<double> train_y =
      ml::TakeLabels(labels.value(), split.value().train);
  const data::DesignMatrix test_x = ml::TakeRows(features.value(),
                                                 split.value().test);
  const std::vector<double> test_y =
      ml::TakeLabels(labels.value(), split.value().test);

  std::printf("(BR logistic task, %llu training users, d = %u)\n\n",
              static_cast<unsigned long long>(train_x.num_rows()), d);
  const std::vector<uint32_t> group_sizes = {16, 50, 150, 400, 1200, 4000};
  for (const double eps : {0.5, 1.0, 4.0}) {
    const uint32_t automatic =
        ml::AutoGroupSize(train_x.num_rows(), d, eps);
    std::printf("--- eps = %.1f (AutoGroupSize picks |G| = %u) ---\n", eps,
                automatic);
    std::printf("%-10s %14s %14s\n", "|G|", "iterations", "test error");
    auto run = [&](uint32_t group) {
      double total = 0.0;
      for (int rep = 0; rep < config.reps; ++rep) {
        ml::LdpSgdOptions options;
        options.perturber = ml::GradientPerturber::kHybridSampled;
        options.epsilon = eps;
        options.group_size = group;
        options.seed = 100 + rep;
        auto beta = ml::TrainLdpSgd(train_x, train_y,
                                    ml::LossKind::kLogistic, options);
        LDP_CHECK(beta.ok());
        total += ml::MisclassificationRate(test_x, test_y, beta.value()) /
                 config.reps;
      }
      return total;
    };
    for (const uint32_t group : group_sizes) {
      if (group > train_x.num_rows()) continue;
      std::printf("%-10u %14llu %14.4f\n", group,
                  static_cast<unsigned long long>(train_x.num_rows() / group),
                  run(group));
    }
    std::printf("%-10s %14llu %14.4f   <= AutoGroupSize\n",
                std::to_string(automatic).c_str(),
                static_cast<unsigned long long>(train_x.num_rows() /
                                                automatic),
                run(automatic));
    std::printf("\n");
  }
  std::printf(
      "expected: larger |G| averages away gradient noise but starves the\n"
      "iteration count; the Theta(d log d / eps^2) rule keeps the per-step\n"
      "noise bounded, and its sweet spot sharpens as the population grows\n"
      "(rerun with LDP_BENCH_USERS=500000 for paper-like populations, where\n"
      "the automatic choice tracks the sweep minimum).\n");
  return 0;
}
