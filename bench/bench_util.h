// Shared helpers for the experiment harnesses in bench/: environment-variable
// configuration (so the whole suite scales from laptop smoke runs to
// paper-scale runs), aligned table printing, and repeated-run MSE estimation.
//
// Environment knobs (all optional):
//   LDP_BENCH_USERS   population size per run       (default 50000)
//   LDP_BENCH_REPS    repetitions averaged per cell (default 3)
//   LDP_BENCH_FAST=1  shrink both for smoke runs    (10000 users, 2 reps)

#ifndef LDP_BENCH_BENCH_UTIL_H_
#define LDP_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace ldp::bench {

/// Scale configuration resolved from the environment.
struct BenchConfig {
  uint64_t users = 50000;
  int reps = 3;
};

inline BenchConfig ResolveConfig() {
  BenchConfig config;
  if (const char* fast = std::getenv("LDP_BENCH_FAST");
      fast != nullptr && std::string(fast) == "1") {
    config.users = 10000;
    config.reps = 2;
  }
  if (const char* users = std::getenv("LDP_BENCH_USERS")) {
    config.users = std::strtoull(users, nullptr, 10);
  }
  if (const char* reps = std::getenv("LDP_BENCH_REPS")) {
    config.reps = static_cast<int>(std::strtol(reps, nullptr, 10));
  }
  if (config.users == 0) config.users = 100000;
  if (config.reps <= 0) config.reps = 1;
  return config;
}

/// Prints a header like "=== Fig. 4(a): ... ===" plus the scale in use.
inline void PrintHeader(const std::string& title, const BenchConfig& config) {
  std::printf("=== %s ===\n", title.c_str());
  std::printf("(users per run: %llu, repetitions per cell: %d)\n\n",
              static_cast<unsigned long long>(config.users), config.reps);
}

/// Prints one row: a label column followed by numeric cells in %.6g.
inline void PrintRow(const std::string& label,
                     const std::vector<double>& cells) {
  std::printf("%-14s", label.c_str());
  for (const double cell : cells) std::printf(" %12.6g", cell);
  std::printf("\n");
}

/// Prints the column header row for a sweep over `values` prefixed by a
/// corner label such as "method \ eps".
inline void PrintColumns(const std::string& corner,
                         const std::vector<double>& values) {
  std::printf("%-14s", corner.c_str());
  for (const double v : values) std::printf(" %12.6g", v);
  std::printf("\n");
}

/// The ε grid used by the paper's Figs. 4–6 and 9–11.
inline std::vector<double> PaperEpsilons() { return {0.5, 1.0, 2.0, 4.0}; }

}  // namespace ldp::bench

#endif  // LDP_BENCH_BENCH_UTIL_H_
