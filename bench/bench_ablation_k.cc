// Ablation A1 — the Eq.-12 sampling parameter k = max(1, min(d, ⌊ε/2.5⌋)):
// sweeps every k ∈ [1, d] at several budgets and dimensions, printing both
// the analytic worst-case per-coordinate variance and the measured MSE of
// mean estimation on uniform data, and marks the k Eq. 12 picks. The chosen
// k should sit at (or within noise of) the sweep minimum.

#include <cstdio>
#include <vector>

#include "aggregate/estimators.h"
#include "bench_util.h"
#include "core/sampled_numeric.h"
#include "core/variance.h"
#include "data/generators.h"
#include "util/check.h"
#include "util/stats.h"

namespace {

using namespace ldp;  // NOLINT: experiment binary

double MeasuredMse(const data::Dataset& dataset,
                   const SampledNumericMechanism& mech, uint64_t seed) {
  const uint32_t d = mech.dimension();
  aggregate::VectorMeanEstimator estimator(d);
  Rng rng(seed);
  std::vector<double> tuple(d);
  for (uint64_t row = 0; row < dataset.num_rows(); ++row) {
    for (uint32_t j = 0; j < d; ++j) tuple[j] = dataset.numeric(row, j);
    estimator.AddSparse(mech.Perturb(tuple, &rng));
  }
  const std::vector<double> estimates = estimator.Estimate();
  double mse = 0.0;
  for (uint32_t j = 0; j < d; ++j) {
    const double truth = dataset.ColumnMean(j).value();
    mse += (estimates[j] - truth) * (estimates[j] - truth) / d;
  }
  return mse;
}

}  // namespace

int main() {
  const ldp::bench::BenchConfig config = ldp::bench::ResolveConfig();
  ldp::bench::PrintHeader(
      "Ablation: sampling parameter k vs Eq. 12's choice (PM, uniform data)",
      config);

  for (const uint32_t d : {8u, 16u}) {
    Rng data_rng(500 + d);
    auto dataset = data::MakeUniform(d, config.users, &data_rng);
    LDP_CHECK(dataset.ok());
    for (const double eps : {2.0, 5.0, 10.0, 20.0}) {
      const uint32_t chosen = AttributeSampleCount(eps, d);
      std::printf("--- d = %u, eps = %.1f (Eq. 12 picks k = %u) ---\n", d,
                  eps, chosen);
      std::printf("%-6s %18s %14s\n", "k", "analytic worst var",
                  "measured MSE");
      double best_var = 1e300;
      uint32_t best_k = 0;
      for (uint32_t k = 1; k <= d; ++k) {
        auto mech = SampledNumericMechanism::CreateWithSampleCount(
            MechanismKind::kPiecewise, eps, d, k);
        LDP_CHECK(mech.ok());
        const double worst = mech.value().WorstCaseCoordinateVariance();
        double mse = 0.0;
        for (int rep = 0; rep < config.reps; ++rep) {
          mse += MeasuredMse(dataset.value(), mech.value(),
                             1000 + k * 17 + rep) /
                 config.reps;
        }
        if (worst < best_var) {
          best_var = worst;
          best_k = k;
        }
        std::printf("%-6u %18.5f %14.3e%s\n", k, worst, mse,
                    k == chosen ? "   <= Eq. 12" : "");
      }
      std::printf("analytic optimum at k = %u; Eq. 12 chose k = %u\n\n",
                  best_k, chosen);
    }
  }
  return 0;
}
