// Fig. 6: numeric-attribute MSE on 16-dimensional synthetic data drawn from
// (a) Uniform[-1, 1] and (b) the shifted power law pdf ∝ (x+2)^{-10}, for
// ε ∈ {0.5, 1, 2, 4}. Conclusions match the Gaussian panels of Fig. 5.

#include <cstdio>

#include "bench_util.h"
#include "collection_bench.h"
#include "data/generators.h"

int main() {
  const ldp::bench::BenchConfig config = ldp::bench::ResolveConfig();
  ldp::bench::PrintHeader(
      "Fig. 6: MSE on uniform and power-law distributed data (16-dim)",
      config);
  const std::vector<double> epsilons = ldp::bench::PaperEpsilons();

  ldp::Rng uniform_rng(300);
  auto uniform = ldp::data::MakeUniform(16, config.users, &uniform_rng);
  ldp::Rng power_rng(301);
  auto power =
      ldp::data::MakePowerLaw(16, config.users, 2.0, 10.0, &power_rng);
  if (!uniform.ok() || !power.ok()) {
    std::fprintf(stderr, "generation failed\n");
    return 1;
  }

  std::printf("--- (a) uniform distribution ---\n");
  ldp::bench::PrintNumericComparison(uniform.value(), epsilons, config);
  std::printf("\n--- (b) power law distribution ---\n");
  ldp::bench::PrintNumericComparison(power.value(), epsilons, config);
  std::printf(
      "\nexpected shape: same ordering as Fig. 5 (PM/HM < Duchi < "
      "Laplace/SCDF).\n");
  return 0;
}
