// Fig. 8: estimation MSE on the MX-like dataset as the tuple dimensionality
// grows, d ∈ {5, 10, 15, 19} (ε = 1). Subsets keep the numeric/categorical
// mix proportional to the full 5/14 split. Error grows with d for every
// method; the proposed methods stay below their baselines throughout.

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "collection_bench.h"
#include "data/census.h"
#include "data/encode.h"

namespace {

// First `num_numeric` numeric and first `num_categorical` categorical
// columns of `dataset`, preserving schema order within each group.
ldp::data::Dataset ProportionalSubset(const ldp::data::Dataset& dataset,
                                      uint32_t d) {
  const auto numeric = dataset.schema().NumericColumnIndices();
  const auto categorical = dataset.schema().CategoricalColumnIndices();
  const uint32_t total = static_cast<uint32_t>(numeric.size() +
                                               categorical.size());
  uint32_t take_numeric = static_cast<uint32_t>(
      std::lround(static_cast<double>(numeric.size()) * d / total));
  take_numeric = std::max(1u, std::min<uint32_t>(
                                  take_numeric,
                                  static_cast<uint32_t>(numeric.size())));
  const uint32_t take_categorical = d - take_numeric;
  std::vector<uint32_t> cols;
  for (uint32_t j = 0; j < take_numeric; ++j) cols.push_back(numeric[j]);
  for (uint32_t j = 0; j < take_categorical; ++j) {
    cols.push_back(categorical[j]);
  }
  auto subset = dataset.SelectColumns(cols);
  LDP_CHECK(subset.ok());
  return std::move(subset).value();
}

}  // namespace

int main() {
  const ldp::bench::BenchConfig config = ldp::bench::ResolveConfig();
  ldp::bench::PrintHeader("Fig. 8: MSE vs dimensionality (MX, eps = 1)",
                          config);
  const double eps = 1.0;
  const std::vector<double> dims = {5, 10, 15, 19};

  auto mx = ldp::data::MakeMexicoCensus(config.users, 14);
  if (!mx.ok()) {
    std::fprintf(stderr, "census generation failed\n");
    return 1;
  }
  const ldp::data::Dataset normalized =
      ldp::data::NormalizeNumeric(mx.value());

  std::printf("--- (a) numeric ---\n");
  ldp::bench::PrintColumns("method \\ d", dims);
  uint64_t seed = 100;
  std::vector<std::pair<const char*, ldp::api::NumericStrategy>>
      baselines = {{"Laplace", ldp::api::NumericStrategy::kLaplaceSplit},
                   {"SCDF", ldp::api::NumericStrategy::kScdfSplit},
                   {"Duchi", ldp::api::NumericStrategy::kDuchiMulti}};
  for (const auto& [name, strategy] : baselines) {
    std::vector<double> row;
    for (const double d : dims) {
      const ldp::data::Dataset subset =
          ProportionalSubset(normalized, static_cast<uint32_t>(d));
      row.push_back(ldp::bench::AverageBaseline(subset, eps, strategy,
                                                config.reps, seed)
                        .numeric);
      seed += 10;
    }
    ldp::bench::PrintRow(name, row);
  }
  for (const auto& [name, kind] :
       std::vector<std::pair<const char*, ldp::MechanismKind>>{
           {"PM", ldp::MechanismKind::kPiecewise},
           {"HM", ldp::MechanismKind::kHybrid}}) {
    std::vector<double> row;
    for (const double d : dims) {
      const ldp::data::Dataset subset =
          ProportionalSubset(normalized, static_cast<uint32_t>(d));
      row.push_back(
          ldp::bench::AverageProposed(subset, eps, kind, config.reps, seed)
              .numeric);
      seed += 10;
    }
    ldp::bench::PrintRow(name, row);
  }

  std::printf("\n--- (b) categorical ---\n");
  ldp::bench::PrintColumns("method \\ d", dims);
  std::vector<double> oue_row, proposed_row;
  for (const double d : dims) {
    const ldp::data::Dataset subset =
        ProportionalSubset(normalized, static_cast<uint32_t>(d));
    oue_row.push_back(
        ldp::bench::AverageBaseline(subset, eps,
                                    ldp::api::NumericStrategy::kDuchiMulti,
                                    config.reps, seed)
            .categorical);
    proposed_row.push_back(
        ldp::bench::AverageProposed(subset, eps, ldp::MechanismKind::kHybrid,
                                    config.reps, seed + 5)
            .categorical);
    seed += 10;
  }
  ldp::bench::PrintRow("OUE", oue_row);
  ldp::bench::PrintRow("Proposed", proposed_row);

  std::printf("\nexpected shape: error grows with d; proposed methods stay "
              "below the split-budget baselines at every d.\n");
  return 0;
}
