// Throughput microbenchmarks (google-benchmark): perturbation cost of every
// scalar mechanism, the multidimensional collectors, the frequency oracles,
// and the end-to-end aggregation path. These quantify the "simple and easy
// to implement" claim of Section IV — Algorithm 4 does O(k) work per user
// versus Algorithm 3's O(d).

#include <benchmark/benchmark.h>

#include <cstring>
#include <vector>

#include "baselines/duchi_multi_dim.h"
#include "core/mechanism.h"
#include "core/mixed_collector.h"
#include "core/sampled_numeric.h"
#include "frequency/frequency_oracle.h"
#include "frequency/histogram.h"
#include "util/random.h"

namespace {

using namespace ldp;  // NOLINT: benchmark binary

void BM_ScalarPerturb(benchmark::State& state) {
  const auto kind = static_cast<MechanismKind>(state.range(0));
  auto mech = MakeScalarMechanism(kind, 1.0);
  Rng rng(1);
  double t = 0.25;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mech.value()->Perturb(t, &rng));
    t = -t;
  }
  state.SetLabel(MechanismKindToString(kind));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ScalarPerturb)
    ->Arg(static_cast<int>(MechanismKind::kLaplace))
    ->Arg(static_cast<int>(MechanismKind::kScdf))
    ->Arg(static_cast<int>(MechanismKind::kStaircase))
    ->Arg(static_cast<int>(MechanismKind::kDuchi))
    ->Arg(static_cast<int>(MechanismKind::kPiecewise))
    ->Arg(static_cast<int>(MechanismKind::kHybrid));

void BM_DuchiMultiPerturb(benchmark::State& state) {
  const uint32_t d = static_cast<uint32_t>(state.range(0));
  const DuchiMultiDimMechanism mech(1.0, d);
  Rng rng(2);
  std::vector<double> tuple(d, 0.25);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mech.Perturb(tuple, &rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DuchiMultiPerturb)->Arg(8)->Arg(32)->Arg(128);

void BM_SampledNumericPerturb(benchmark::State& state) {
  const uint32_t d = static_cast<uint32_t>(state.range(0));
  auto mech = SampledNumericMechanism::Create(MechanismKind::kHybrid, 1.0, d);
  Rng rng(3);
  std::vector<double> tuple(d, 0.25);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mech.value().Perturb(tuple, &rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SampledNumericPerturb)->Arg(8)->Arg(32)->Arg(128);

void BM_MixedCollectorPerturb(benchmark::State& state) {
  const uint32_t d = static_cast<uint32_t>(state.range(0));
  std::vector<MixedAttribute> schema;
  MixedTuple tuple;
  for (uint32_t j = 0; j < d; ++j) {
    if (j % 2 == 0) {
      schema.push_back(MixedAttribute::Numeric());
      tuple.push_back(AttributeValue::Numeric(0.25));
    } else {
      schema.push_back(MixedAttribute::Categorical(8));
      tuple.push_back(AttributeValue::Categorical(j % 8));
    }
  }
  auto collector = MixedTupleCollector::Create(schema, 1.0);
  Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(collector.value().Perturb(tuple, &rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MixedCollectorPerturb)->Arg(8)->Arg(32);

void BM_FrequencyOraclePerturb(benchmark::State& state) {
  const auto kind = static_cast<FrequencyOracleKind>(state.range(0));
  const uint32_t domain = static_cast<uint32_t>(state.range(1));
  auto oracle = MakeFrequencyOracle(kind, 1.0, domain);
  Rng rng(5);
  uint32_t v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(oracle.value()->Perturb(v, &rng));
    v = (v + 1) % domain;
  }
  state.SetLabel(FrequencyOracleKindToString(kind));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FrequencyOraclePerturb)
    ->Args({static_cast<int>(FrequencyOracleKind::kGrr), 32})
    ->Args({static_cast<int>(FrequencyOracleKind::kSue), 32})
    ->Args({static_cast<int>(FrequencyOracleKind::kOue), 32})
    ->Args({static_cast<int>(FrequencyOracleKind::kOlh), 32});

void BM_OueAggregate(benchmark::State& state) {
  auto oracle = MakeFrequencyOracle(FrequencyOracleKind::kOue, 1.0, 32);
  Rng rng(6);
  // Pre-generate reports so only the server half is timed.
  std::vector<FrequencyOracle::Report> reports;
  for (int i = 0; i < 4096; ++i) {
    reports.push_back(oracle.value()->Perturb(i % 32, &rng));
  }
  size_t next = 0;
  FrequencyEstimator estimator(oracle.value().get());
  for (auto _ : state) {
    estimator.Add(reports[next]);
    next = (next + 1) % reports.size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OueAggregate);

}  // namespace

// Like BENCHMARK_MAIN(), but defaults --benchmark_out to
// BENCH_perf_mechanisms.json (JSON format) so every run leaves a
// machine-readable record for performance-trend tracking; explicit
// --benchmark_out flags still win.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_out", 15) == 0) has_out = true;
  }
  static char out_flag[] = "--benchmark_out=BENCH_perf_mechanisms.json";
  static char format_flag[] = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag);
    args.push_back(format_flag);
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
