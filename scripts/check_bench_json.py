#!/usr/bin/env python3
"""Guards against silently-empty bench artifacts: every BENCH_*.json passed
must parse, carry at least one run, and report nonzero reports/s per row.
Used by the build-test and bench-release CI jobs."""
import json
import sys

failed = False
for name in sys.argv[1:]:
    with open(name) as artifact:
        data = json.load(artifact)
    rows = data["runs"]
    if not rows:
        print(f"{name}: no bench rows")
        failed = True
        continue
    for row in rows:
        if not row["reports_per_sec"] > 0:
            print(f"{name}: zero-throughput row {row}")
            failed = True
    print(f"{name}: {len(rows)} rows checked")
if not sys.argv[1:]:
    print("usage: check_bench_json.py BENCH_*.json", file=sys.stderr)
    failed = True
sys.exit(1 if failed else 0)
