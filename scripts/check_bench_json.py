#!/usr/bin/env python3
"""Guards against silently-empty or silently-degraded bench artifacts:
every BENCH_*.json passed must parse, carry a build stamp attributing the
numbers to an exact revision/compiler, hold at least one run, and report
nonzero reports/s per row. Telemetry fields, where present, must be sane:
overhead_pct bounded (metrics off the hot path stay cheap), the DATA
latency quantiles ordered (p50 <= p99, networked paths nonzero), and WAL
rows carrying a nonzero wal_bytes (a durable run that logged nothing is a
wiring bug, not a fast run).
Used by the build-test and bench-release CI jobs."""
import json
import sys

# A wide gate, not a perf target: CI machines are noisy, but a 25% swing
# means the delta-flush instrumentation landed on the hot path.
OVERHEAD_GATE_PCT = 25.0

# bench_net_ingest rows that ran a real ReportServer (so the DATA latency
# histogram must be populated).
NETWORKED_PATHS = ("uds", "tcp", "uds_wal", "uds_relay", "uds_relay_wal")

failed = False


def complain(name, message):
    global failed
    print(f"{name}: {message}")
    failed = True


for name in sys.argv[1:]:
    with open(name) as artifact:
        data = json.load(artifact)

    build = data.get("build")
    if not isinstance(build, dict):
        complain(name, "missing build stamp")
    else:
        for key in ("git_hash", "compiler", "build_type"):
            if not build.get(key):
                complain(name, f"build stamp missing {key!r}")

    rows = data["runs"]
    if not rows:
        complain(name, "no bench rows")
        continue
    for row in rows:
        if not row["reports_per_sec"] > 0:
            complain(name, f"zero-throughput row {row}")
        if "overhead_pct" in row and abs(row["overhead_pct"]) > OVERHEAD_GATE_PCT:
            complain(name, f"telemetry overhead out of gate: {row}")
        if "data_p50_us" in row or "data_p99_us" in row:
            p50 = row.get("data_p50_us", 0.0)
            p99 = row.get("data_p99_us", 0.0)
            if p50 < 0 or p99 < 0 or p50 > p99:
                complain(name, f"inconsistent DATA latency quantiles: {row}")
            # Networked paths must have observed real DATA messages.
            if row.get("path") in NETWORKED_PATHS and not p99 > 0:
                complain(name, f"empty DATA latency histogram: {row}")
        if "wal_bytes" in row and not row["wal_bytes"] > 0:
            complain(name, f"WAL row logged zero bytes: {row}")
        if "reporters" in row:
            # Reporter-sweep rows: a real fan-in with a measured admission
            # latency; a zero p99 means no HELLO round trip was timed.
            if not row["reporters"] > 0:
                complain(name, f"sweep row with no reporters: {row}")
            if not row.get("accept_p99_us", 0) > 0:
                complain(name, f"sweep row missing admission latency: {row}")

    if data.get("benchmark") == "net_ingest":
        swept = {row.get("reporters") for row in rows if "reporters" in row}
        if not {100, 1000, 10000} <= swept:
            complain(name, f"reporter sweep incomplete: got {sorted(swept)}")
    print(f"{name}: {len(rows)} rows checked")

if not sys.argv[1:]:
    print("usage: check_bench_json.py BENCH_*.json", file=sys.stderr)
    failed = True
sys.exit(1 if failed else 0)
