// Census analytics: the paper's Section VI-A experiment as an application.
//
// An agency holds nothing; 300k simulated residents each hold one census
// record (the BR-like synthetic microdata). Every resident privatizes her
// record locally with the Section IV-C collector, and the agency publishes
// mean ages/incomes and marginal distributions — then compares against the
// best-effort baseline that splits the budget across attributes
// (Duchi's Algorithm 3 for the numeric group + per-attribute OUE). Both
// runs go through the same config-driven entry point, api::Pipeline::Collect
// — the baseline is just a one-field change to the config.
//
// Build and run:   ./build/examples/census_analytics

#include <cstdio>

#include "aggregate/metrics.h"
#include "api/pipeline.h"
#include "core/variance.h"
#include "data/census.h"
#include "data/encode.h"

int main() {
  const uint64_t population = 300000;
  const double epsilon = 1.0;
  std::printf("census analytics: %llu residents, eps = %g\n\n",
              static_cast<unsigned long long>(population), epsilon);

  auto census = ldp::data::MakeBrazilCensus(population, 2024);
  if (!census.ok()) {
    std::fprintf(stderr, "%s\n", census.status().ToString().c_str());
    return 1;
  }
  const ldp::data::Dataset normalized =
      ldp::data::NormalizeNumeric(census.value());

  auto config =
      ldp::api::PipelineConfig::FromSchema(normalized.schema(), epsilon);
  if (!config.ok()) {
    std::fprintf(stderr, "%s\n", config.status().ToString().c_str());
    return 1;
  }
  auto proposed_pipeline = ldp::api::Pipeline::Create(config.value());
  config.value().baseline = ldp::api::NumericStrategy::kDuchiMulti;
  auto baseline_pipeline = ldp::api::Pipeline::Create(config.value());
  if (!proposed_pipeline.ok() || !baseline_pipeline.ok()) {
    std::fprintf(stderr, "pipeline setup failed\n");
    return 1;
  }
  auto proposed = proposed_pipeline.value().Collect(normalized, 1);
  auto baseline = baseline_pipeline.value().Collect(normalized, 2);
  if (!proposed.ok() || !baseline.ok()) {
    std::fprintf(stderr, "collection failed\n");
    return 1;
  }

  // Report a few headline statistics in native units.
  const ldp::data::Schema& raw_schema = census.value().schema();
  std::printf("%-18s %12s %12s %12s\n", "numeric mean", "true",
              "proposed", "baseline");
  for (size_t j = 0; j < proposed.value().numeric_columns.size(); ++j) {
    const uint32_t col = proposed.value().numeric_columns[j];
    const ldp::data::ColumnSpec& spec = raw_schema.column(col);
    const double mid = (spec.hi + spec.lo) / 2.0;
    const double half = (spec.hi - spec.lo) / 2.0;
    std::printf("%-18s %12.2f %12.2f %12.2f\n", spec.name.c_str(),
                mid + half * proposed.value().true_means[j],
                mid + half * proposed.value().estimated_means[j],
                mid + half * baseline.value().estimated_means[j]);
  }

  std::printf("\nmarginal of 'employment_status' (frequencies):\n");
  const uint32_t employment =
      raw_schema.FindColumn("employment_status").value();
  for (size_t c = 0; c < proposed.value().categorical_columns.size(); ++c) {
    if (proposed.value().categorical_columns[c] != employment) continue;
    const char* levels[] = {"employed", "self-employed", "unemployed",
                            "inactive"};
    std::printf("%-18s %12s %12s %12s\n", "level", "true", "proposed",
                "baseline");
    for (size_t v = 0; v < proposed.value().true_frequencies[c].size(); ++v) {
      std::printf("%-18s %11.2f%% %11.2f%% %11.2f%%\n", levels[v],
                  100.0 * proposed.value().true_frequencies[c][v],
                  100.0 * proposed.value().estimated_frequencies[c][v],
                  100.0 * baseline.value().estimated_frequencies[c][v]);
    }
  }

  std::printf("\naggregate error (MSE across all attributes):\n");
  std::printf("  numeric     proposed %.3e   baseline %.3e\n",
              ldp::aggregate::NumericMse(proposed.value()),
              ldp::aggregate::NumericMse(baseline.value()));
  std::printf("  categorical proposed %.3e   baseline %.3e\n",
              ldp::aggregate::CategoricalMse(proposed.value()),
              ldp::aggregate::CategoricalMse(baseline.value()));
  std::printf(
      "\nthe proposed collector spends the whole budget on %u sampled "
      "attribute(s) per user\ninstead of splitting it %u ways — that is the "
      "paper's Fig. 4 advantage.\n",
      ldp::AttributeSampleCount(epsilon, raw_schema.num_columns()),
      raw_schema.num_columns());
  return 0;
}
