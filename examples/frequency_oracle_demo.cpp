// Frequency oracle shoot-out: GRR vs SUE vs OUE vs OLH on one categorical
// attribute, across domain sizes — the substrate behind the categorical half
// of the paper's Section IV-C. Shows (i) why the paper picks OUE (best
// variance at small frequencies once the domain outgrows e^ε + 2), (ii) GRR
// winning on tiny domains, and (iii) OLH matching OUE with constant-size
// reports. Also demonstrates the post-processing options on a sparse
// histogram.
//
// Build and run:   ./build/examples/frequency_oracle_demo

#include <cstdio>
#include <vector>

#include "frequency/frequency_oracle.h"
#include "frequency/histogram.h"
#include "util/random.h"

namespace {

using namespace ldp;  // NOLINT: example binary

// Zipf-ish truth: frequency of value v proportional to 1/(v+1).
std::vector<double> ZipfTruth(uint32_t domain) {
  std::vector<double> truth(domain);
  double total = 0.0;
  for (uint32_t v = 0; v < domain; ++v) {
    truth[v] = 1.0 / (v + 1.0);
    total += truth[v];
  }
  for (double& f : truth) f /= total;
  return truth;
}

uint32_t SampleFrom(const std::vector<double>& truth, Rng* rng) {
  double u = rng->Uniform01();
  for (uint32_t v = 0; v + 1 < truth.size(); ++v) {
    if (u < truth[v]) return v;
    u -= truth[v];
  }
  return static_cast<uint32_t>(truth.size() - 1);
}

double OracleMse(const FrequencyOracle& oracle,
                 const std::vector<double>& truth, uint64_t n, Rng* rng) {
  FrequencyEstimator estimator(&oracle);
  for (uint64_t i = 0; i < n; ++i) {
    estimator.Add(oracle.Perturb(SampleFrom(truth, rng), rng));
  }
  const std::vector<double> estimate = estimator.RawEstimate();
  double mse = 0.0;
  for (size_t v = 0; v < truth.size(); ++v) {
    mse += (estimate[v] - truth[v]) * (estimate[v] - truth[v]) /
           static_cast<double>(truth.size());
  }
  return mse;
}

}  // namespace

int main() {
  const double epsilon = 1.0;
  const uint64_t users = 100000;
  std::printf("frequency oracle comparison: eps = %g, %llu users, Zipf "
              "truth\n\n",
              epsilon, static_cast<unsigned long long>(users));

  std::printf("%-8s %12s %12s %12s %12s\n", "domain", "GRR", "SUE", "OUE",
              "OLH");
  Rng rng(1);
  for (const uint32_t domain : {2u, 4u, 16u, 64u}) {
    const std::vector<double> truth = ZipfTruth(domain);
    std::vector<double> row;
    for (const auto kind :
         {FrequencyOracleKind::kGrr, FrequencyOracleKind::kSue,
          FrequencyOracleKind::kOue, FrequencyOracleKind::kOlh}) {
      auto oracle = MakeFrequencyOracle(kind, epsilon, domain);
      row.push_back(OracleMse(*oracle.value(), truth, users, &rng));
    }
    std::printf("%-8u %12.3e %12.3e %12.3e %12.3e\n", domain, row[0], row[1],
                row[2], row[3]);
  }
  std::printf("\nexpected: GRR best at domain 2, degrading linearly with "
              "domain size; OUE/OLH flat and close.\n\n");

  // Post-processing demo on a tiny report count.
  const uint32_t domain = 8;
  auto oracle = MakeFrequencyOracle(FrequencyOracleKind::kOue, epsilon,
                                    domain);
  FrequencyEstimator estimator(oracle.value().get());
  const std::vector<double> truth = ZipfTruth(domain);
  for (int i = 0; i < 300; ++i) {
    estimator.Add(oracle.value()->Perturb(SampleFrom(truth, &rng), &rng));
  }
  std::printf("post-processing with only 300 reports (OUE, domain 8):\n");
  std::printf("%-6s %10s %10s %10s %10s\n", "value", "true", "raw",
              "clamped", "projected");
  const auto raw = estimator.RawEstimate();
  const auto clamped = estimator.ClampedEstimate();
  const auto projected = estimator.ProjectedEstimate();
  for (uint32_t v = 0; v < domain; ++v) {
    std::printf("%-6u %10.3f %10.3f %10.3f %10.3f\n", v, truth[v], raw[v],
                clamped[v], projected[v]);
  }
  std::printf("\nraw is unbiased but strays outside [0,1]; the simplex "
              "projection restores a true distribution.\n");
  return 0;
}
