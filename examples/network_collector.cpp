// Network collector example: the full deployment loop of the paper's
// collection model in one process — an ldp::net::ReportServer listening on
// a loopback Unix-domain socket, three concurrent "device fleets" streaming
// privatized reports at it through ldp::net::CollectorClient, and the
// determinism contract checked at the end: the networked session is
// byte-identical to a session fed the same shards directly through
// ServerSession::Feed, because shards merge in client ordinal order
// regardless of which connection finishes first.
//
// Run: ./network_collector   (also registered as a ctest smoke test)

#include <unistd.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "ldp.h"
#include "net/client.h"
#include "net/report_server.h"
#include "net/socket.h"

using namespace ldp;  // NOLINT: example binary

namespace {

constexpr uint64_t kUsers = 3000;
constexpr size_t kFleets = 3;
constexpr uint64_t kSeed = 2026;

// One device fleet's shard: every user's row perturbed on-device and
// framed, exactly the bytes ldp_report would ship.
std::string EncodeFleetShard(const api::ClientSession& client,
                             const IndexRange& range) {
  std::string bytes;
  for (uint64_t row = range.begin; row < range.end; ++row) {
    MixedTuple tuple(3);
    tuple[0] = AttributeValue::Numeric((row % 200) / 100.0 - 1.0);  // usage
    tuple[1] = AttributeValue::Categorical(row % 5);                // platform
    tuple[2] = AttributeValue::Numeric((row % 50) / 25.0 - 1.0);    // battery
    Rng rng = api::UserRng(kSeed, row);
    auto payload = client.EncodeReport(tuple, &rng);
    if (!payload.ok() ||
        !stream::AppendFrame(payload.value(), &bytes).ok()) {
      std::fprintf(stderr, "encode failed\n");
      std::exit(1);
    }
  }
  return bytes;
}

}  // namespace

int main() {
  // The protocol: 3 attributes, ε = 2 per user.
  api::PipelineConfig config;
  config.attributes = {MixedAttribute::Numeric(), MixedAttribute::Categorical(5),
                       MixedAttribute::Numeric()};
  config.epsilon = 2.0;
  auto pipeline = api::Pipeline::Create(config);
  if (!pipeline.ok()) {
    std::fprintf(stderr, "%s\n", pipeline.status().ToString().c_str());
    return 1;
  }
  auto client = pipeline.value().NewClient();
  auto networked = pipeline.value().NewServer();
  auto direct = pipeline.value().NewServer();
  if (!client.ok() || !networked.ok() || !direct.ok()) {
    std::fprintf(stderr, "session setup failed\n");
    return 1;
  }

  // Every fleet's bytes, encoded once so both sessions see the same wire.
  const std::vector<IndexRange> ranges = SplitRange(kUsers, kFleets);
  std::vector<std::string> shards;
  for (const IndexRange& range : ranges) {
    shards.push_back(EncodeFleetShard(client.value(), range));
  }

  // The collector: one UDS listener, one acceptor per fleet.
  const net::Endpoint endpoint = {net::Endpoint::Kind::kUnix, "", 0,
                                  "/tmp/ldp_network_collector_" +
                                      std::to_string(::getpid()) + ".sock"};
  net::ReportServerOptions options;
  options.acceptors = static_cast<unsigned>(kFleets);
  // The fleet size makes ordinal-ordered merging a strict barrier: the
  // byte-equality check below holds no matter how the threads race.
  options.expected_shards = kFleets;
  auto server = net::ReportServer::Start(
      &networked.value(), pipeline.value().header(), endpoint, options);
  if (!server.ok()) {
    std::fprintf(stderr, "%s\n", server.status().ToString().c_str());
    return 1;
  }
  std::printf("collector listening on %s\n",
              server.value()->endpoint().ToString().c_str());

  // Three concurrent reporters, deliberately racing: fleet f HELLOs
  // ordinal f, so merge order is deterministic anyway.
  std::vector<std::thread> fleets;
  for (size_t f = 0; f < kFleets; ++f) {
    fleets.emplace_back([&, f] {
      auto connection = net::CollectorClient::Connect(
          endpoint, pipeline.value().header(), /*ordinal=*/f);
      if (!connection.ok()) {
        std::fprintf(stderr, "fleet %zu: %s\n", f,
                     connection.status().ToString().c_str());
        std::exit(1);
      }
      // The HELLO already negotiated the stream header; ship only frames.
      if (!connection.value().Send(shards[f]).ok()) {
        std::fprintf(stderr, "fleet %zu: send failed\n", f);
        std::exit(1);
      }
      auto summary = connection.value().Close();
      if (!summary.ok() || !summary.value().status.ok()) {
        std::fprintf(stderr, "fleet %zu: close failed\n", f);
        std::exit(1);
      }
      std::printf("fleet %zu: %llu reports accepted\n", f,
                  static_cast<unsigned long long>(
                      summary.value().stats.accepted));
    });
  }
  for (std::thread& fleet : fleets) fleet.join();
  server.value()->Stop(/*drain=*/true);

  // The reference: the same shard bytes fed straight into a session (with
  // the header prepended, as a file shard would carry it).
  for (const std::string& bytes : shards) {
    const size_t shard = direct.value().OpenShard();
    if (!direct.value().Feed(shard, client.value().EncodeHeader()).ok() ||
        !direct.value().Feed(shard, bytes).ok() ||
        !direct.value().CloseShard(shard).ok()) {
      std::fprintf(stderr, "direct feed failed\n");
      return 1;
    }
  }

  if (networked.value().Snapshot() != direct.value().Snapshot()) {
    std::fprintf(stderr,
                 "networked session diverged from the direct session\n");
    return 1;
  }
  std::printf("networked session == direct session (byte-identical)\n");

  auto estimates = networked.value().Estimate(0);
  if (!estimates.ok()) {
    std::fprintf(stderr, "%s\n", estimates.status().ToString().c_str());
    return 1;
  }
  std::printf("collected %llu reports; mean(usage) = %.4f, "
              "mean(battery) = %.4f\nplatform frequencies:",
              static_cast<unsigned long long>(estimates.value().num_reports),
              estimates.value().means[0], estimates.value().means[1]);
  for (const double f : estimates.value().frequencies[0]) {
    std::printf(" %.4f", f);
  }
  std::printf("\n");
  return 0;
}
