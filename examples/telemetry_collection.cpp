// Telemetry collection: the motivating scenario of the paper's introduction.
//
// A software vendor wants daily telemetry from an install base — session
// length, memory usage, crash count (numeric) plus OS and channel
// (categorical) — without ever seeing any individual's true values. Each
// simulated device perturbs its own record with the Section IV-C collector
// under a per-day budget ε, and the vendor reconstructs population
// statistics. The demo prints true vs estimated dashboards at three budget
// levels to show the privacy/utility dial.
//
// Build and run:   ./build/examples/telemetry_collection

#include <cstdio>
#include <string>
#include <vector>

#include "core/mixed_collector.h"
#include "core/scaler.h"
#include "util/random.h"

namespace {

struct DeviceRecord {
  double session_minutes;  // [0, 720]
  double memory_mb;        // [0, 4096]
  double crash_count;      // [0, 20]
  uint32_t os;             // 0..3: Windows/macOS/Linux/Other
  uint32_t channel;        // 0..2: stable/beta/dev
};

DeviceRecord SimulateDevice(ldp::Rng* rng) {
  DeviceRecord record;
  // Session length: most sessions short, a long tail of all-day users.
  record.session_minutes = std::min(720.0, rng->Exponential(1.0 / 90.0));
  record.memory_mb = std::min(4096.0, 350.0 + rng->Exponential(1.0 / 400.0));
  record.crash_count =
      std::min(20.0, static_cast<double>(rng->Geometric(0.7)));
  const double os_draw = rng->Uniform01();
  record.os = os_draw < 0.68 ? 0 : os_draw < 0.88 ? 1 : os_draw < 0.97 ? 2 : 3;
  const double channel_draw = rng->Uniform01();
  record.channel = channel_draw < 0.9 ? 0 : channel_draw < 0.97 ? 1 : 2;
  return record;
}

}  // namespace

int main() {
  const int num_devices = 200000;
  std::printf("telemetry demo: %d devices, 3 numeric + 2 categorical "
              "attributes per report\n\n",
              num_devices);

  // Native domains for the numeric attributes; devices scale to [-1, 1]
  // before perturbing and the vendor scales estimates back.
  const ldp::DomainScaler session_scale =
      ldp::DomainScaler::Create(0.0, 720.0).value();
  const ldp::DomainScaler memory_scale =
      ldp::DomainScaler::Create(0.0, 4096.0).value();
  const ldp::DomainScaler crash_scale =
      ldp::DomainScaler::Create(0.0, 20.0).value();

  for (const double epsilon : {0.5, 1.0, 4.0}) {
    auto collector = ldp::MixedTupleCollector::Create(
        {ldp::MixedAttribute::Numeric(), ldp::MixedAttribute::Numeric(),
         ldp::MixedAttribute::Numeric(), ldp::MixedAttribute::Categorical(4),
         ldp::MixedAttribute::Categorical(3)},
        epsilon);
    if (!collector.ok()) {
      std::fprintf(stderr, "%s\n", collector.status().ToString().c_str());
      return 1;
    }
    ldp::MixedAggregator aggregator(&collector.value());

    ldp::Rng rng(7);  // same population at every budget
    double true_session = 0.0, true_memory = 0.0, true_crashes = 0.0;
    std::vector<double> true_os(4, 0.0), true_channel(3, 0.0);
    for (int i = 0; i < num_devices; ++i) {
      const DeviceRecord record = SimulateDevice(&rng);
      true_session += record.session_minutes / num_devices;
      true_memory += record.memory_mb / num_devices;
      true_crashes += record.crash_count / num_devices;
      true_os[record.os] += 1.0 / num_devices;
      true_channel[record.channel] += 1.0 / num_devices;

      ldp::MixedTuple tuple(5);
      tuple[0] = ldp::AttributeValue::Numeric(
          session_scale.ToCanonical(record.session_minutes));
      tuple[1] = ldp::AttributeValue::Numeric(
          memory_scale.ToCanonical(record.memory_mb));
      tuple[2] = ldp::AttributeValue::Numeric(
          crash_scale.ToCanonical(record.crash_count));
      tuple[3] = ldp::AttributeValue::Categorical(record.os);
      tuple[4] = ldp::AttributeValue::Categorical(record.channel);
      aggregator.Add(collector.value().Perturb(tuple, &rng));
    }

    std::printf("--- eps = %.1f (each device reports %u of 5 attributes) ---\n",
                epsilon, collector.value().k());
    std::printf("  %-18s %10s %10s\n", "metric", "true", "estimated");
    std::printf("  %-18s %10.1f %10.1f\n", "session (min)", true_session,
                session_scale.FromCanonical(
                    aggregator.EstimateMean(0).value()));
    std::printf("  %-18s %10.1f %10.1f\n", "memory (MB)", true_memory,
                memory_scale.FromCanonical(aggregator.EstimateMean(1).value()));
    std::printf("  %-18s %10.2f %10.2f\n", "crashes", true_crashes,
                crash_scale.FromCanonical(aggregator.EstimateMean(2).value()));
    const char* os_names[] = {"Windows", "macOS", "Linux", "Other"};
    const std::vector<double> os_est =
        aggregator.EstimateFrequencies(3).value();
    for (int v = 0; v < 4; ++v) {
      std::printf("  %-18s %9.1f%% %9.1f%%\n", os_names[v],
                  100.0 * true_os[v], 100.0 * os_est[v]);
    }
    const char* channel_names[] = {"stable", "beta", "dev"};
    const std::vector<double> channel_est =
        aggregator.EstimateFrequencies(4).value();
    for (int v = 0; v < 3; ++v) {
      std::printf("  %-18s %9.1f%% %9.1f%%\n", channel_names[v],
                  100.0 * true_channel[v], 100.0 * channel_est[v]);
    }
    std::printf("\n");
  }
  std::printf("note how estimates tighten as eps grows — the privacy/utility "
              "dial in action.\n");
  return 0;
}
