// Telemetry collection: the motivating scenario of the paper's introduction,
// run the way a deployed service actually runs — as a multi-day CAMPAIGN
// against one accounted privacy budget.
//
// A software vendor wants daily telemetry from an install base — session
// length, memory usage, crash count (numeric) plus OS and channel
// (categorical) — without ever seeing any individual's true values. One
// api::Pipeline config drives the whole deployment: every day is one
// ServerSession epoch at budget ε per user, devices perturb their records
// through a ClientSession (only wire frames reach the vendor), and the
// session's PrivacyAccountant enforces the campaign plan — when the lifetime
// budget is spent, the next epoch is refused, no matter how much the product
// team would like another day of data.
//
// Build and run:   ./build/examples/telemetry_collection

#include <cstdio>
#include <string>
#include <vector>

#include "api/pipeline.h"
#include "api/server_session.h"
#include "core/scaler.h"
#include "stream/report_stream.h"
#include "util/random.h"

namespace {

struct DeviceRecord {
  double session_minutes;  // [0, 720]
  double memory_mb;        // [0, 4096]
  double crash_count;      // [0, 20]
  uint32_t os;             // 0..3: Windows/macOS/Linux/Other
  uint32_t channel;        // 0..2: stable/beta/dev
};

// Day `day` shifts usage slightly so the per-epoch dashboards move.
DeviceRecord SimulateDevice(int day, ldp::Rng* rng) {
  DeviceRecord record;
  // Session length: most sessions short, a long tail of all-day users.
  record.session_minutes =
      std::min(720.0, rng->Exponential(1.0 / (90.0 + 10.0 * day)));
  record.memory_mb = std::min(4096.0, 350.0 + rng->Exponential(1.0 / 400.0));
  record.crash_count =
      std::min(20.0, static_cast<double>(rng->Geometric(0.7)));
  const double os_draw = rng->Uniform01();
  record.os = os_draw < 0.68 ? 0 : os_draw < 0.88 ? 1 : os_draw < 0.97 ? 2 : 3;
  const double channel_draw = rng->Uniform01();
  record.channel = channel_draw < 0.9 ? 0 : channel_draw < 0.97 ? 1 : 2;
  return record;
}

}  // namespace

int main() {
  const int num_devices = 100000;
  const int num_days = 3;
  const double epsilon = 1.0;  // per-user budget per day

  // One config describes the whole campaign: the record schema, the daily
  // budget, and the plan the accountant will enforce.
  ldp::api::PipelineConfig config;
  config.attributes = {ldp::MixedAttribute::Numeric(),
                       ldp::MixedAttribute::Numeric(),
                       ldp::MixedAttribute::Numeric(),
                       ldp::MixedAttribute::Categorical(4),
                       ldp::MixedAttribute::Categorical(3)};
  config.epsilon = epsilon;
  config.plan.epochs = num_days;
  auto pipeline = ldp::api::Pipeline::Create(config);
  if (!pipeline.ok()) {
    std::fprintf(stderr, "%s\n", pipeline.status().ToString().c_str());
    return 1;
  }
  auto client = pipeline.value().NewClient();
  auto server = pipeline.value().NewServer();
  if (!client.ok() || !server.ok()) {
    std::fprintf(stderr, "session setup failed\n");
    return 1;
  }
  ldp::api::ServerSession& session = server.value();

  std::printf("telemetry campaign: %d devices/day, %d days, eps = %g per "
              "day, lifetime budget %g per user\n\n",
              num_devices, num_days, epsilon,
              session.accountant().lifetime_budget());

  // Native domains for the numeric attributes; devices scale to [-1, 1]
  // before perturbing and the vendor scales estimates back.
  const ldp::DomainScaler session_scale =
      ldp::DomainScaler::Create(0.0, 720.0).value();
  const ldp::DomainScaler memory_scale =
      ldp::DomainScaler::Create(0.0, 4096.0).value();
  const ldp::DomainScaler crash_scale =
      ldp::DomainScaler::Create(0.0, 20.0).value();

  ldp::Rng rng(7);
  for (int day = 0; day < num_days; ++day) {
    if (day > 0) {
      const ldp::Status advanced = session.AdvanceEpoch();
      if (!advanced.ok()) {
        std::fprintf(stderr, "day %d refused: %s\n", day,
                     advanced.ToString().c_str());
        return 1;
      }
    }
    const size_t shard = session.OpenShard();
    if (!session.Feed(shard, client.value().EncodeHeader()).ok()) {
      std::fprintf(stderr, "header rejected\n");
      return 1;
    }
    double true_session = 0.0, true_crashes = 0.0;
    std::vector<double> true_os(4, 0.0);
    for (int i = 0; i < num_devices; ++i) {
      const DeviceRecord record = SimulateDevice(day, &rng);
      true_session += record.session_minutes / num_devices;
      true_crashes += record.crash_count / num_devices;
      true_os[record.os] += 1.0 / num_devices;

      ldp::MixedTuple tuple(5);
      tuple[0] = ldp::AttributeValue::Numeric(
          session_scale.ToCanonical(record.session_minutes));
      tuple[1] = ldp::AttributeValue::Numeric(
          memory_scale.ToCanonical(record.memory_mb));
      tuple[2] = ldp::AttributeValue::Numeric(
          crash_scale.ToCanonical(record.crash_count));
      tuple[3] = ldp::AttributeValue::Categorical(record.os);
      tuple[4] = ldp::AttributeValue::Categorical(record.channel);
      // Only this perturbed frame leaves the device.
      auto payload = client.value().EncodeReport(tuple, &rng);
      std::string frame;
      if (!payload.ok() ||
          !ldp::stream::AppendFrame(payload.value(), &frame).ok() ||
          !session.Feed(shard, frame).ok()) {
        std::fprintf(stderr, "report rejected\n");
        return 1;
      }
    }
    if (!session.CloseShard(shard).ok()) {
      std::fprintf(stderr, "shard close failed\n");
      return 1;
    }

    const uint32_t epoch = session.current_epoch();
    std::printf("--- day %d (epoch %u; per-user eps spent so far: %g) ---\n",
                day + 1, epoch, session.epsilon_spent());
    std::printf("  %-18s %10s %10s\n", "metric", "true", "estimated");
    std::printf("  %-18s %10.1f %10.1f\n", "session (min)", true_session,
                session_scale.FromCanonical(
                    session.EstimateMean(0, epoch).value()));
    std::printf("  %-18s %10.2f %10.2f\n", "crashes", true_crashes,
                crash_scale.FromCanonical(
                    session.EstimateMean(2, epoch).value()));
    const char* os_names[] = {"Windows", "macOS", "Linux", "Other"};
    const std::vector<double> os_est =
        session.EstimateFrequencies(3, epoch).value();
    for (int v = 0; v < 4; ++v) {
      std::printf("  %-18s %9.1f%% %9.1f%%\n", os_names[v],
                  100.0 * true_os[v], 100.0 * os_est[v]);
    }
    std::printf("\n");
  }

  // The plan is spent: the accountant refuses a fourth day.
  const ldp::Status extra_day = session.AdvanceEpoch();
  std::printf("day %d request: %s\n", num_days + 1,
              extra_day.ok() ? "granted (bug!)"
                             : extra_day.ToString().c_str());
  std::printf("total per-user eps spent across the campaign: %g of %g\n",
              session.epsilon_spent(),
              session.accountant().lifetime_budget());
  return extra_day.ok() ? 1 : 0;
}
