// Quickstart: the 60-second tour of the library.
//
// Three scenarios on simulated users:
//   1. one numeric value per user  → estimate its mean with the Hybrid
//      Mechanism (the paper's headline primitive);
//   2. one categorical value per user → estimate value frequencies with the
//      OUE frequency oracle;
//   3. a mixed multidimensional tuple per user → estimate everything at once
//      with the api::Pipeline session facade (Algorithm 4 + OUE) under ONE
//      budget, reports crossing a real wire between a ClientSession and a
//      ServerSession.
//
// Build and run:   ./build/examples/quickstart

#include <cstdio>
#include <vector>

#include "api/pipeline.h"
#include "api/server_session.h"
#include "core/mechanism.h"
#include "frequency/histogram.h"
#include "frequency/oue.h"
#include "stream/report_stream.h"
#include "util/random.h"

int main() {
  const double epsilon = 1.0;  // the privacy budget every user enjoys
  const int num_users = 100000;
  ldp::Rng rng(42);  // all randomness is seeded → reproducible output

  // ------------------------------------------------------------------
  // 1. Mean of a numeric value in [-1, 1] under ε-LDP.
  // ------------------------------------------------------------------
  auto mechanism =
      ldp::MakeScalarMechanism(ldp::MechanismKind::kHybrid, epsilon);
  if (!mechanism.ok()) {
    std::fprintf(stderr, "%s\n", mechanism.status().ToString().c_str());
    return 1;
  }
  double true_sum = 0.0, noisy_sum = 0.0;
  for (int i = 0; i < num_users; ++i) {
    const double secret = rng.Uniform(-0.2, 0.8);  // this user's true value
    // Everything before this line happens on the user's device; only the
    // perturbed value crosses the wire.
    const double report = mechanism.value()->Perturb(secret, &rng);
    true_sum += secret;
    noisy_sum += report;
  }
  std::printf("1) numeric mean:   true %+.4f   estimated %+.4f   (HM, eps=%g)\n",
              true_sum / num_users, noisy_sum / num_users, epsilon);

  // ------------------------------------------------------------------
  // 2. Frequencies of a categorical value under ε-LDP.
  // ------------------------------------------------------------------
  const uint32_t domain = 4;  // e.g. {Chrome, Firefox, Safari, Other}
  const ldp::OueOracle oracle(epsilon, domain);
  ldp::FrequencyEstimator estimator(&oracle);
  std::vector<double> true_counts(domain, 0.0);
  for (int i = 0; i < num_users; ++i) {
    const auto secret = static_cast<uint32_t>(rng.Bernoulli(0.55)  ? 0
                                              : rng.Bernoulli(0.6) ? 1
                                              : rng.Bernoulli(0.5) ? 2
                                                                   : 3);
    true_counts[secret] += 1.0;
    estimator.Add(oracle.Perturb(secret, &rng));
  }
  const std::vector<double> frequencies = estimator.ProjectedEstimate();
  std::printf("2) frequencies:  ");
  for (uint32_t v = 0; v < domain; ++v) {
    std::printf("  v%u true %.3f est %.3f", v, true_counts[v] / num_users,
                frequencies[v]);
  }
  std::printf("   (OUE, eps=%g)\n", epsilon);

  // ------------------------------------------------------------------
  // 3. A whole tuple — 2 numeric + 1 categorical — under ONE budget,
  //    through the Pipeline session API (reports cross a real wire).
  // ------------------------------------------------------------------
  ldp::api::PipelineConfig config;
  config.attributes = {ldp::MixedAttribute::Numeric(),
                       ldp::MixedAttribute::Numeric(),
                       ldp::MixedAttribute::Categorical(3)};
  config.epsilon = epsilon;
  auto pipeline = ldp::api::Pipeline::Create(config);
  if (!pipeline.ok()) {
    std::fprintf(stderr, "%s\n", pipeline.status().ToString().c_str());
    return 1;
  }
  auto client = pipeline.value().NewClient();   // runs on each device
  auto server = pipeline.value().NewServer();   // runs at the aggregator
  if (!client.ok() || !server.ok()) {
    std::fprintf(stderr, "session setup failed\n");
    return 1;
  }
  const size_t shard = server.value().OpenShard();
  if (!server.value().Feed(shard, client.value().EncodeHeader()).ok()) {
    std::fprintf(stderr, "header rejected\n");
    return 1;
  }
  double true_mean0 = 0.0;
  for (int i = 0; i < num_users; ++i) {
    ldp::MixedTuple tuple(3);
    tuple[0] = ldp::AttributeValue::Numeric(rng.Uniform(-1.0, 0.0));
    tuple[1] = ldp::AttributeValue::Numeric(rng.Uniform(0.0, 0.5));
    tuple[2] = ldp::AttributeValue::Categorical(
        static_cast<uint32_t>(rng.UniformIndex(3)));
    true_mean0 += tuple[0].numeric / num_users;
    // Everything above happens on the device; only this frame crosses the
    // wire to the server.
    auto payload = client.value().EncodeReport(tuple, &rng);
    std::string frame;
    if (!payload.ok() ||
        !ldp::stream::AppendFrame(payload.value(), &frame).ok() ||
        !server.value().Feed(shard, frame).ok()) {
      std::fprintf(stderr, "report rejected\n");
      return 1;
    }
  }
  if (!server.value().CloseShard(shard).ok()) {
    std::fprintf(stderr, "shard close failed\n");
    return 1;
  }
  std::printf(
      "3) mixed tuple:    attr0 true %+.4f estimated %+.4f;   "
      "attr2 frequencies:",
      true_mean0, server.value().EstimateMean(0, /*epoch=*/0).value());
  const std::vector<double> attr2_frequencies =
      server.value().EstimateFrequencies(2, /*epoch=*/0).value();
  for (const double f : attr2_frequencies) {
    std::printf(" %.3f", f);
  }
  std::printf("\n   (each user reported only %u of 3 attributes at eps/%u; "
              "eps spent this epoch: %g)\n",
              pipeline.value().k(), pipeline.value().k(),
              server.value().epsilon_spent());
  return 0;
}
