// LDP-SGD training: the paper's Section V case study end to end.
//
// Train an income classifier (logistic regression) and an income regressor
// (linear regression) on MX-like census microdata where every training
// example belongs to a different user and only ε-LDP gradients ever reach
// the trainer. Compares the four gradient channels of Figs. 9–11 and the
// non-private reference on a held-out test set.
//
// Build and run:   ./build/examples/ldp_sgd_training

#include <cstdio>
#include <vector>

#include "data/census.h"
#include "data/encode.h"
#include "data/split.h"
#include "ml/evaluate.h"
#include "ml/ldp_sgd.h"

namespace {

using namespace ldp;  // NOLINT: example binary

void RunTask(const data::DesignMatrix& features,
             const std::vector<double>& labels, ml::LossKind loss,
             ml::EvalMetric metric, double epsilon) {
  Rng rng(99);
  auto split = data::TrainTestSplit(features.num_rows(), 0.2, &rng);
  LDP_CHECK(split.ok());
  const data::DesignMatrix train_x = ml::TakeRows(features,
                                                  split.value().train);
  const std::vector<double> train_y =
      ml::TakeLabels(labels, split.value().train);
  const data::DesignMatrix test_x = ml::TakeRows(features,
                                                 split.value().test);
  const std::vector<double> test_y =
      ml::TakeLabels(labels, split.value().test);

  const std::vector<std::pair<const char*, ml::GradientPerturber>> channels =
      {{"Laplace", ml::GradientPerturber::kLaplaceSplit},
       {"Duchi", ml::GradientPerturber::kDuchiMulti},
       {"PM", ml::GradientPerturber::kPiecewiseSampled},
       {"HM", ml::GradientPerturber::kHybridSampled},
       {"Non-private", ml::GradientPerturber::kNonPrivate}};
  std::printf("  %-14s %12s\n", "channel",
              metric == ml::EvalMetric::kMisclassification ? "test error"
                                                           : "test MSE");
  for (const auto& [name, perturber] : channels) {
    ml::LdpSgdOptions options;
    options.perturber = perturber;
    options.epsilon = epsilon;
    options.seed = 7;
    auto beta = ml::TrainLdpSgd(train_x, train_y, loss, options);
    LDP_CHECK(beta.ok());
    const double value =
        metric == ml::EvalMetric::kMisclassification
            ? ml::MisclassificationRate(test_x, test_y, beta.value())
            : ml::RegressionMse(test_x, test_y, beta.value());
    std::printf("  %-14s %12.4f\n", name, value);
  }
}

}  // namespace

int main() {
  const uint64_t population = 120000;
  const double epsilon = 2.0;
  std::printf("LDP-SGD on MX-like census data: %llu users, eps = %g\n",
              static_cast<unsigned long long>(population), epsilon);

  auto census = data::MakeMexicoCensus(population, 555);
  if (!census.ok()) {
    std::fprintf(stderr, "%s\n", census.status().ToString().c_str());
    return 1;
  }
  const uint32_t label_col =
      census.value().schema().FindColumn(data::kIncomeColumn).value();
  auto features = data::EncodeFeatures(census.value(), label_col);
  LDP_CHECK(features.ok());
  std::printf("(one-hot encoded feature dimensionality: %u)\n\n",
              features.value().num_cols());

  std::printf("task 1: logistic regression — income above the mean?\n");
  auto binary_labels = data::EncodeBinaryLabel(census.value(), label_col);
  LDP_CHECK(binary_labels.ok());
  RunTask(features.value(), binary_labels.value(), ml::LossKind::kLogistic,
          ml::EvalMetric::kMisclassification, epsilon);

  std::printf("\ntask 2: SVM — same label, hinge loss\n");
  RunTask(features.value(), binary_labels.value(), ml::LossKind::kHinge,
          ml::EvalMetric::kMisclassification, epsilon);

  std::printf("\ntask 3: linear regression — normalised income\n");
  auto numeric_labels = data::EncodeNumericLabel(census.value(), label_col);
  LDP_CHECK(numeric_labels.ok());
  RunTask(features.value(), numeric_labels.value(), ml::LossKind::kSquared,
          ml::EvalMetric::kMse, epsilon);

  std::printf(
      "\neach user contributed one clipped, perturbed gradient to exactly "
      "one iteration —\nno budget splitting across iterations "
      "(Section V).\n");
  return 0;
}
